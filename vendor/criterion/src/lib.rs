//! Offline stand-in for the `criterion` crate.
//!
//! The build image has no crates.io access, so the workspace patches
//! `criterion` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It keeps the subset of the Criterion API the
//! `dpm-bench` benches use — groups, throughput annotation,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched` —
//! and reports median wall-clock time per iteration (plus derived
//! throughput) on stdout. No statistics machinery, no plotting, no
//! `target/criterion` reports: just honest numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching criterion's `black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup. The shim runs one setup per
/// measured routine call regardless of the hint.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Per-iteration inputs of unknown size.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 30,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let mut g = self.benchmark_group(name.to_owned());
        g.bench_function("", f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing a name and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Annotates per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Benches a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (reporting already happened per bench).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        let per_iter = b.median_ns();
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>12.3} Kelem/s", n as f64 / per_iter * 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:>12.3} MiB/s", n as f64 / per_iter * 1e9 / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("bench: {label:<48} {:>12.1} ns/iter{thr}", per_iter);
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<f64>, // ns per iteration
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        s[s.len() / 2]
    }

    /// Calibrates an iteration count targeting ~20ms per sample, then
    /// collects `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up & calibration.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let el = t.elapsed();
            if el > Duration::from_millis(5) || iters > 1 << 24 {
                let per = el.as_nanos() as f64 / iters as f64;
                let target = (20e6 / per.max(0.1)).clamp(1.0, 1e7) as u64;
                iters = target.max(1);
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Runs `setup` outside the timed section, `routine` inside it.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size.max(10) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Builds the `benches` harness entry, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// `main` for a bench binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        g.throughput(Throughput::Elements(10));
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        g.bench_with_input(BenchmarkId::new("sum", 3), &vec![1u64, 2, 3], |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
