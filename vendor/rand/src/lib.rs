//! Offline stand-in for the `rand` crate.
//!
//! The build image has no crates.io access, so the workspace patches
//! `rand` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It provides the subset the repository uses:
//! [`Rng::gen_range`] over half-open and inclusive integer ranges,
//! [`Rng::gen_bool`], [`Rng::gen`] for primitive ints/bools, and
//! [`SeedableRng::seed_from_u64`] for [`rngs::StdRng`].
//!
//! The generator is xoshiro256** seeded by SplitMix64 — a different
//! stream than upstream rand's ChaCha12 `StdRng`, but the workspace
//! only relies on determinism for a fixed seed, never on the exact
//! stream.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// A uniformly random value of a primitive type.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(1..100);
            assert!((1..100).contains(&v));
            let w: i32 = r.gen_range(-200..=200);
            assert!((-200..=200).contains(&w));
            let u: u64 = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
