//! Offline stand-in for the `parking_lot` crate.
//!
//! The build image has no access to crates.io, so the workspace patches
//! `parking_lot` to this tiny shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It reproduces the subset of the parking_lot API this
//! repository uses — `Mutex`, `RwLock`, and `Condvar` with
//! poison-free, non-`Result` lock methods — on top of `std::sync`.
//! Poisoning is deliberately swallowed: like real parking_lot, a
//! panicking lock holder does not poison the lock for everyone else.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutex whose `lock` never returns a `Result` (parking_lot API).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the inner guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A readers-writer lock with parking_lot's non-`Result` API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable pairing with [`Mutex`] (parking_lot API:
/// `wait` takes `&mut MutexGuard`).
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().expect("waiter exits");
    }
}
