//! Offline stand-in for the `proptest` crate.
//!
//! The build image has no crates.io access, so the workspace patches
//! `proptest` to this shim (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It keeps the subset of the API the workspace's
//! property tests use — the `proptest!` macro, `Strategy` with
//! `prop_map` / `prop_filter` / `boxed`, `any::<T>()`, `Just`,
//! `prop_oneof!`, integer range strategies, tuples, `collection::vec`,
//! `option::of`, and `[class]{m,n}`-style string strategies — and runs
//! each test as a fixed number of deterministic random cases seeded
//! from the test name. There is no shrinking: a failing case reports
//! its inputs via the `prop_assert*` message and the case index.

pub mod test_runner {
    //! Deterministic case runner and failure plumbing.

    use std::fmt;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion; the test as a whole fails.
        Fail(String),
        /// The case was rejected (e.g. `prop_assume!`); retried.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            }
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (deterministic across
        /// runs; independent of other tests).
        pub fn seed_from_name(name: &str) -> TestRng {
            // FNV-1a, then scramble so short names diverge.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// How many cases each property runs (override with
    /// `PROPTEST_CASES`).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runs `f` for [`case_count`] accepted cases, panicking on the
    /// first failure. Rejected cases are retried with a global cap so
    /// over-restrictive filters surface as errors rather than loops.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let cases = case_count();
        let mut rng = TestRng::seed_from_name(name);
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        while accepted < cases {
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > cases.saturating_mul(16).max(1024) {
                        panic!(
                            "proptest stub: `{name}` rejected too many cases \
                             ({rejected}) — last reason: {reason}"
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest stub: `{name}` failed at case {accepted}: {reason}\n\
                         (deterministic seed — rerun reproduces; no shrinking)"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree and no
    /// shrinking: `draw` produces one concrete value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn draw(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        /// Keeps only values `f` accepts, retrying locally.
        fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: std::fmt::Display,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                reason: reason.to_string(),
                f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn draw(&self, rng: &mut TestRng) -> S::Value {
            (**self).draw(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn draw(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone, Copy)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn draw(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.draw(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn draw(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.draw(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest stub: prop_filter({:?}) rejected 1000 draws in a row",
                self.reason
            );
        }
    }

    /// Uniformly (or weight-proportionally) picks one of several
    /// strategies per draw. Built by [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Equal-weight arms.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        /// Weight-annotated arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn draw(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total_weight);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.draw(rng);
                }
                pick -= w;
            }
            unreachable!("weights were exhausted before the arms")
        }
    }

    /// Types [`any`] can generate.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy produced by [`any`]. `Copy` so one binding can seed
    /// many tuple slots.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    /// An arbitrary value of `T`, biased toward edge cases.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn draw(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // ~1/4 of draws are boundary values: generated
                    // protocol fields hit 0 / 1 / MIN / MAX often.
                    match rng.below(16) {
                        0 => 0,
                        1 => 1,
                        2 => <$t>::MAX,
                        3 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn draw(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample empty range strategy"
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128
                        + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn draw(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn draw(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.draw(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    /// `&'static str` patterns act as string strategies. Only the
    /// regex subset the workspace uses is supported — `[class]{m,n}`,
    /// `\PC{m,n}` (printable ASCII), literal characters and escapes,
    /// and non-capturing repetition groups `(…){m,n}`; anything else
    /// panics loudly.
    impl Strategy for &'static str {
        type Value = String;

        fn draw(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            gen_pattern(self, self, rng, &mut out);
            out
        }
    }

    /// Walks `pattern` left to right, appending generated text to
    /// `out`. `whole` is only for error messages.
    fn gen_pattern(whole: &str, pattern: &str, rng: &mut TestRng, out: &mut String) {
        let unsupported = || -> ! {
            panic!(
                "proptest stub: unsupported string pattern {whole:?} \
                 (only `[class]{{m,n}}`, `\\PC{{m,n}}`, literals and \
                 `(…){{m,n}}` groups are implemented)"
            )
        };
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '(' => {
                    // Find the matching `)` (no nesting needed).
                    let close = pattern[i + 1..]
                        .find(')')
                        .map(|k| i + 1 + k)
                        .unwrap_or_else(|| unsupported());
                    let inner = &pattern[i + 1..close];
                    let (lo, hi, after) = parse_counts(pattern, close + 1)
                        .unwrap_or_else(|| unsupported());
                    let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
                    for _ in 0..reps {
                        gen_pattern(whole, inner, rng, out);
                    }
                    i = after;
                }
                '[' => {
                    let close = pattern[i + 1..]
                        .find(']')
                        .map(|k| i + 1 + k)
                        .unwrap_or_else(|| unsupported());
                    let alphabet = expand_class(&pattern[i + 1..close])
                        .unwrap_or_else(|| unsupported());
                    let (lo, hi, after) = parse_counts(pattern, close + 1)
                        .unwrap_or_else(|| unsupported());
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    out.extend(
                        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]),
                    );
                    i = after;
                }
                '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' && chars[i + 2] == 'C' => {
                    // `\PC`: any printable char; the stub draws ASCII.
                    let (lo, hi, after) = parse_counts(pattern, i + 3)
                        .unwrap_or((1, 1, i + 3));
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    out.extend((0..len).map(|_| (b' ' + rng.below(95) as u8) as char));
                    i = after;
                }
                '\\' if i + 1 < chars.len() => {
                    out.push(match chars[i + 1] {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        c @ ('\\' | '.' | '(' | ')' | '[' | ']' | '{' | '}') => c,
                        _ => unsupported(),
                    });
                    i += 2;
                }
                c @ (')' | ']' | '{' | '}' | '*' | '+' | '?' | '|') => {
                    let _ = c;
                    unsupported()
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
    }

    /// Parses a `{m,n}` / `{n}` suffix starting at byte `at`; returns
    /// `(lo, hi, index_after)`.
    fn parse_counts(pattern: &str, at: usize) -> Option<(usize, usize, usize)> {
        let rest = pattern.get(at..)?;
        let rest = rest.strip_prefix('{')?;
        let close = rest.find('}')?;
        let counts = &rest[..close];
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n: usize = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((lo, hi, at + 1 + close + 1))
    }

    /// Expands a character class body (`a-z0-9_`) into its alphabet.
    fn expand_class(class: &str) -> Option<Vec<char>> {
        let class: Vec<char> = class.chars().collect();
        if class.is_empty() {
            return None;
        }
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                if a > b {
                    return None;
                }
                alphabet.extend(a..=b);
                i += 3;
            } else if i + 2 == class.len() && class[i + 1] == '-' {
                // `x-` at the very end: literal char then literal dash.
                alphabet.push(class[i]);
                alphabet.push('-');
                i += 2;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        Some(alphabet)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn class_pattern_parses() {
            let chars = expand_class("a-z/._-").expect("class");
            assert!(chars.contains(&'a') && chars.contains(&'z'));
            assert!(chars.contains(&'-') && chars.contains(&'/'));
            assert!(!chars.contains(&'A'));
            assert_eq!(parse_counts("x{1,14}", 1), Some((1, 14, 7)));
        }

        #[test]
        fn grouped_pattern_generates_lines() {
            let mut rng = TestRng::seed_from_name("lines");
            for _ in 0..100 {
                let s = "(\\PC{0,40}\n){0,20}".draw(&mut rng);
                assert!(s.is_empty() || s.ends_with('\n'));
                for line in s.lines() {
                    assert!(line.len() <= 40);
                    assert!(line.chars().all(|c| (' '..='~').contains(&c)));
                }
                assert!(s.lines().count() <= 20);
            }
        }

        #[test]
        fn string_strategy_respects_bounds() {
            let mut rng = TestRng::seed_from_name("bounds");
            for _ in 0..200 {
                let s = "[a-zA-Z0-9/._-]{0,40}".draw(&mut rng);
                assert!(s.len() <= 40);
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "/._-".contains(c)));
            }
        }

        #[test]
        fn union_and_filter_compose() {
            let mut rng = TestRng::seed_from_name("union");
            let s = crate::prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)]
                .prop_filter("even", |v| *v % 2 == 0);
            for _ in 0..100 {
                let v = s.draw(&mut rng);
                assert!(v % 2 == 0 && v < 40);
            }
        }

        #[test]
        fn tuples_and_ranges_draw() {
            let mut rng = TestRng::seed_from_name("tuple");
            let u = any::<u32>();
            let s = (u, u, 1u32..=2).prop_map(|(a, b, c)| (a, b, c));
            let (_, _, c) = s.draw(&mut rng);
            assert!((1..=2).contains(&c));
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec` only).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values drawn from `element`, with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn draw(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.draw(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (`of` only).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of a drawn value three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn draw(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.draw(rng))
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    /// `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs [`test_runner::case_count`] deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                |rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::draw(&($strat), rng);
                    )+
                    let case = || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                },
            );
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Picks one of several strategies per draw; arms may optionally be
/// weighted with `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` that fails the current generated case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!(
            $cond,
            concat!("assertion failed: ", stringify!($cond))
        )
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for generated cases; reports both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), lhs, rhs
        );
    }};
}

/// `assert_ne!` for generated cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
}

/// Skips the current generated case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(
                    concat!("assumption failed: ", stringify!($cond)),
                ),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn drawn_values_obey_strategies(
            a in any::<u32>(),
            v in prop::collection::vec(1u64..10, 0..5),
            s in "[a-z]{1,4}",
            o in prop::option::of(Just(7u8)),
        ) {
            prop_assert!(u64::from(a) <= u64::from(u32::MAX));
            prop_assert!(v.len() < 5);
            for x in &v {
                prop_assert!((1..10).contains(x));
            }
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(o.is_none() || o == Some(7));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run("always_fails", |_rng| {
            crate::test_runner::TestCaseResult::Err(
                crate::test_runner::TestCaseError::fail("boom"),
            )
        });
    }
}
