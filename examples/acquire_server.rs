//! Acquiring a running system server, with selection rules.
//!
//! "The acquire command provides the user with the ability to meter a
//! process that is already executing. … a user may be interested only
//! in monitoring a system server to better understand its behavior."
//! (§4.3)
//!
//! A forking server is started *outside* any job (like a system
//! daemon). Clients hammer it; we acquire the server mid-flight, and
//! use a selection-rules template (Fig. 3.3/3.4 style) so the filter
//! keeps only send events of at least 64 bytes and discards the `pc`
//! field from every saved record.
//!
//! ```text
//! cargo run --example acquire_server
//! ```

use dpm::crates::workloads::client_server::{self, SERVER_PORT};
use dpm::{Analysis, Simulation, Uid};

fn main() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(3)
        .build();

    // The "system server", started outside the measurement system.
    let server_pid = sim
        .cluster()
        .spawn_user("red", "server", Uid(100), |p| {
            client_server::server_main(p, vec![])
        })
        .expect("server starts");

    let mut control = sim.controller("yellow").expect("controller starts");

    // A selection-rules template on the controller's machine: keep
    // sends of >= 64 bytes (discarding pc), accepts, and forks.
    sim.cluster().machine("yellow").unwrap().fs().write(
        "templates",
        "type=1, size>=64, pc=#*\ntype=8, pc=#*\ntype=7, pc=#*\n"
            .as_bytes()
            .to_vec(),
    );

    control.exec("filter f1 blue /bin/filter descriptions templates");
    control.exec("newjob watch");
    control.exec("setflags watch all");
    control.exec(&format!("acquire watch red {server_pid}"));

    // Clients in their own job, unmetered (we are watching the server).
    control.exec("newjob load");
    for (machine, size) in [("green", 64), ("blue", 128)] {
        control.exec(&format!(
            "addprocess load {machine} /bin/client red {SERVER_PORT} 5 {size}"
        ));
    }
    control.exec("startjob load");
    assert!(control.wait_job("load", 60_000), "clients completed");

    control.exec("jobs watch load");
    control.exec("removejob load");
    control.exec("removejob watch"); // releases the acquired server

    println!("=== session transcript =========================================");
    print!("{}", control.transcript());

    let analysis: Analysis = sim.analyze_log(&mut control, "f1");
    println!("=== filtered trace =============================================");
    print!("{}", analysis.summary());
    // Every kept send is >= 64 bytes and carries no pc field.
    for e in &analysis.trace.events {
        if let dpm::crates::analysis::EventKind::Send { len, .. } = e.kind {
            assert!(len >= 64, "selection rule admitted a short send");
        }
    }

    // The acquired server must still be running after removejob.
    let red = sim.cluster().machine("red").unwrap();
    assert!(
        !red.proc_state(server_pid).expect("server exists").is_dead(),
        "acquired process keeps executing after its job is removed"
    );
    println!("server still running after removejob: yes");

    control.exec("die");
    control.exec("die"); // confirm: the server is still active
    sim.shutdown();
}
