//! Monitoring the distributed traveling-salesman computation.
//!
//! The paper's §5 reports that "a multiprocess computation was
//! developed and debugged using the tool" — the Lai & Miller
//! traveling-salesman program. This example measures it: a master on
//! `red` and one worker on each of `green` and `blue`, all metered
//! through a filter on `yellow`, then the three analyses the paper
//! names (§3.3): communication statistics, measurement of parallelism,
//! and structural studies.
//!
//! ```text
//! cargo run --example tsp
//! ```

use dpm::crates::workloads::tsp;
use dpm::{Analysis, Simulation};

fn main() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(7)
        .build();
    let mut control = sim.controller("yellow").expect("controller starts");

    let cities = 10;
    let seed = 11;
    control.exec("filter f1 yellow");
    control.exec("newjob tsp");
    control.exec(&format!(
        "addprocess tsp red /bin/tsp-master {} {cities} 2 {seed}",
        tsp::TSP_PORT
    ));
    control.exec(&format!(
        "addprocess tsp green /bin/tsp-worker red {}",
        tsp::TSP_PORT
    ));
    control.exec(&format!(
        "addprocess tsp blue /bin/tsp-worker red {}",
        tsp::TSP_PORT
    ));
    control.exec("setflags tsp all");
    control.exec("startjob tsp");
    assert!(control.wait_job("tsp", 120_000), "tsp job completed");
    control.exec("removejob tsp");

    println!("=== session transcript =========================================");
    print!("{}", control.transcript());

    // Cross-check the distributed answer against the sequential
    // baseline (the comparison the original study made).
    let dist = tsp::distance_matrix(cities, seed);
    let (best, nodes) = tsp::solve_sequential(&dist);
    println!("sequential baseline: best tour {best} ({nodes} nodes explored)");
    let master_line = control
        .transcript()
        .lines()
        .find(|l| l.contains("best "))
        .map(str::to_owned);
    if let Some(line) = master_line {
        println!("distributed answer : {}", line.trim());
    }

    let analysis: Analysis = sim.analyze_log(&mut control, "f1");
    println!("=== trace analysis =============================================");
    print!("{}", analysis.summary());
    println!("=== who talks to whom ==========================================");
    print!("{}", analysis.structure);
    println!("=== graphviz ===================================================");
    print!("{}", analysis.structure.to_dot());

    control.exec("die");
    sim.shutdown();
}
