//! Byzantine agreement with one traitor, unmasked by the trace.
//!
//! Four generals run the oral-messages algorithm OM(1): the commander
//! (general 0) sends an order, every lieutenant relays what it heard
//! to every other, and each loyal lieutenant decides by majority.
//! General 2 is a traitor and relays the *opposite* of what it
//! received. The job runs fully metered, and the checker recovers
//! agreement, validity, the exact (N-1) + (N-1)(N-2) message
//! complexity, and the traitor's identity — purely from the monitor's
//! log, by noticing that 2's relay beacons contradict the order the
//! commander's round-1 beacons demonstrate.
//!
//! ```text
//! cargo run --example byzantine
//! ```

use dpm::crates::analysis::{ByzReport, Trace};
use dpm::{NetConfig, Simulation};

const HOSTS: [&str; 4] = ["yellow", "red", "green", "blue"];
const ORDER: u32 = 1;
const TRAITOR: usize = 2;

fn main() {
    let sim = Simulation::builder()
        .machines(HOSTS)
        .net(NetConfig::ideal())
        .seed(19)
        .build();
    let mut control = sim.controller("yellow").expect("controller starts");
    control.exec("filter f1 red log=store");

    control.exec("newjob byz f1");
    for (i, m) in HOSTS.iter().enumerate() {
        control.exec(&format!(
            "addprocess byz {m} /bin/byz {i} {} {ORDER} {TRAITOR} {}",
            HOSTS.len(),
            HOSTS.join(" ")
        ));
    }
    control.exec("setflags byz send receive");
    control.exec("startjob byz");
    assert!(control.wait_job("byz", 120_000), "job never converged");

    let text = sim.stable_log(&mut control, "f1");
    let report = ByzReport::check(&Trace::parse(&text));
    println!("{report}");
    assert!(report.agreement_ok(), "loyal generals disagreed");
    assert!(report.validity_ok(), "loyal commander's order was lost");
    assert_eq!(
        report.suspected,
        vec![TRAITOR as u32],
        "the trace should name exactly the planted traitor"
    );

    let out = control.exec("check f1 byzantine");
    assert!(out.contains("traitors detected from trace"), "{out}");

    control.exec("bye");
    sim.shutdown();
}
