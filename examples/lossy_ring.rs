//! Monitoring a datagram token ring on a lossy network.
//!
//! Datagram "delivery … is not guaranteed, though it is likely"
//! (§3.1). This example runs the retransmitting token ring over a
//! hostile network, meters only `send` and `receive` (plus `socket`,
//! so analysis can tell datagram sockets apart), and shows the
//! analysis detecting exactly the message loss the ring protocol had
//! to survive — unmatched send events and skew evidence, the two
//! artifacts of distribution the paper's measurement model is built
//! around.
//!
//! ```text
//! cargo run --example lossy_ring
//! ```

use dpm::{Analysis, NetConfig, Simulation};

fn main() {
    let sim = Simulation::builder()
        .machines(["yellow", "a", "b", "c"])
        .net(NetConfig {
            datagram_loss: 0.15,
            datagram_reorder: 0.1,
            ..NetConfig::lan()
        })
        .seed(17)
        .build();
    let mut control = sim.controller("yellow").expect("controller starts");

    control.exec("filter f1 yellow");
    control.exec("newjob ring");
    let hosts = ["a", "b", "c"];
    for (i, host) in hosts.iter().enumerate() {
        let next = hosts[(i + 1) % hosts.len()];
        let starter = if i == 0 { "start" } else { "no" };
        control.exec(&format!(
            "addprocess ring {host} /bin/ring {i} {} {next} 3 {starter}",
            hosts.len()
        ));
    }
    control.exec("setflags ring send receive socket termproc");
    control.exec("startjob ring");
    assert!(control.wait_job("ring", 120_000), "ring completed");
    control.exec("removejob ring");

    println!("=== session transcript =========================================");
    print!("{}", control.transcript());

    let analysis: Analysis = sim.analyze_log(&mut control, "f1");
    println!("=== trace analysis =============================================");
    print!("{}", analysis.summary());

    let sends = analysis
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, dpm::crates::analysis::EventKind::Send { .. }))
        .count();
    let lost = analysis.pairing.unmatched_sends.len();
    println!(
        "datagram sends: {sends}; never received: {lost} ({:.1}% — the loss the ring retransmitted through)",
        100.0 * lost as f64 / sends.max(1) as f64
    );
    let skews = analysis
        .hb
        .skew_evidence(&analysis.trace, &analysis.pairing);
    println!(
        "messages whose receive is stamped before its send (clock skew): {}",
        skews.len()
    );
    println!(
        "deducible global order covers {:.0}% of event pairs",
        analysis.hb.ordered_fraction() * 100.0
    );

    control.exec("die");
    sim.shutdown();
}
