//! Chaos in one page: a monitored session under a scripted fault plan.
//!
//! A `ChaosSpec` names the weather — here 10% datagram loss, meter
//! flushes duplicated a quarter of the time, and a controller↔red
//! partition that heals at 2 s virtual — and a seed pins the exact
//! schedule. The monitor has to ride it out: RPCs fail fast and retry
//! rather than hang, the filter's sequence dedup absorbs duplicate
//! flush delivery, and the stored trace holds no duplicated record.
//!
//! ```text
//! cargo run --example chaos_demo
//! ```
//!
//! Run it twice: same seed, same plan, same outcome — a failing chaos
//! run replays from the plan banner alone.

use dpm::crates::chaos::{self, ChaosSpec, FaultPlan};
use dpm::crates::filter::SimFsBackend;
use dpm::crates::logstore::StoreReader;
use dpm::Simulation;

fn main() {
    let spec = ChaosSpec::new()
        .drop(0.10)
        .meter_dup(0.25)
        .partition("yellow", "red", 0, 2_000_000);
    let plan = FaultPlan::new(42, spec, &["yellow", "red", "green", "blue"]);
    println!("{}", plan.describe());
    let injector = plan.injector();

    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(42)
        .fault_injector(injector.clone())
        .build();
    let mut control = sim.controller("yellow").expect("controller starts");
    control.exec("filter f1 blue log=store");
    control.exec("newjob foo");

    // Inside the partition window RPCs to red fail visibly (bounded
    // retry, never a hang); keep retrying until the window heals.
    let mut attempts = 0;
    loop {
        attempts += 1;
        let out = control.exec("addprocess foo red /bin/A green");
        if out.contains("created") {
            break;
        }
        println!("attempt {attempts}: {out}");
    }
    println!("partition healed after {attempts} attempt(s)");

    control.exec("addprocess foo green /bin/B");
    control.exec("setflags foo send receive fork accept connect");
    control.exec("startjob foo");
    assert!(control.wait_job("foo", 120_000), "job never converged");
    control.exec("removejob foo");
    let _ = sim.stable_log(&mut control, "f1");

    // Read the store back off blue and check the chaos invariant:
    // duplicated flush delivery must never become a duplicated record.
    let blue = sim.cluster().machine("blue").expect("blue");
    let reader = StoreReader::load(&SimFsBackend::new(blue), "/usr/tmp/log.f1");
    match chaos::invariants::check_no_duplicates(&reader) {
        Ok(census) => println!(
            "invariants hold: {} stored records, no duplicates",
            census.frames
        ),
        Err(why) => panic!("{why} [{}]", plan.describe()),
    }

    let t = injector.tally();
    println!(
        "injected: {} drops, {} duplicate flushes, {} blocked connects",
        t.drops(),
        t.meter_dups(),
        t.blocked_connects()
    );
    control.exec("die");
    sim.shutdown();
}
