//! Reproduction of the paper's example session (§4.4, Appendix B).
//!
//! "The programmer first creates a filter process by issuing the
//! filter command, specifying the machine on which the filter is to
//! run. … After creating a filter, the programmer requests the
//! creation of a job with the newjob command. … the programmer issues
//! an addprocess command to add a process to the job…"
//!
//! The controller runs on `yellow`; the filter `f1` on `blue`;
//! processes `A` and `B` on `red` and `green` — the colours of
//! Figs. 4.3–4.6. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dpm::{Analysis, Simulation};

fn main() {
    let sim = Simulation::builder()
        .machines(["yellow", "red", "green", "blue"])
        .seed(42)
        .build();
    let mut control = sim.controller("yellow").expect("controller starts");

    // The script of Appendix B, line for line.
    control.exec("filter f1 blue"); // create a filter process on machine blue
    control.exec("newjob foo"); // create a job; name it foo
    control.exec("addprocess foo red /bin/A green"); // add process A to the job foo
    control.exec("addprocess foo green /bin/B"); // add process B to the job foo
    control.exec("setflags foo send receive fork accept connect");
    control.exec("startjob foo"); // start the execution of the job

    // DONE: process … terminated: reason: normal
    assert!(control.wait_job("foo", 60_000), "job foo completed");

    control.exec("removejob foo");
    control.exec("getlog f1 trace"); // get the trace file for filter f1

    println!("=== session transcript =========================================");
    print!("{}", control.transcript());

    // What the user would then do with the trace: analyze it. (The
    // helper re-fetches until the asynchronously-written log settles.)
    let analysis: Analysis = sim.analyze_log(&mut control, "f1");

    println!("=== trace analysis =============================================");
    print!("{}", analysis.summary());
    println!("=== communication structure ====================================");
    print!("{}", analysis.structure);

    control.exec("bye");
    assert!(control.is_done());
    sim.shutdown();
}
