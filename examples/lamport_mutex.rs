//! Lamport's distributed mutual exclusion, verified from the log.
//!
//! Four machines each run `/bin/lmutex` and take the critical section
//! twice using Lamport's 1978 algorithm — logical clocks, a totally
//! ordered request queue, REQUEST/REPLY/RELEASE datagrams. The job
//! runs fully metered into a store-backed filter, and the trace
//! checker then proves, from the monitor's own records alone, that no
//! two critical sections overlapped, that entry order followed the
//! Lamport timestamps, and that exactly 3(N-1) messages paid for each
//! entry.
//!
//! ```text
//! cargo run --example lamport_mutex
//! ```

use dpm::crates::analysis::{MutexReport, Trace};
use dpm::{NetConfig, Simulation};

const HOSTS: [&str; 4] = ["yellow", "red", "green", "blue"];
const ROUNDS: u32 = 2;

fn main() {
    // An ideal network: the protocol deliberately never retransmits
    // (losses must stay visible to the checker), so a lossy run would
    // stall some rounds. `tests/chaos.rs` is where the faults live.
    let sim = Simulation::builder()
        .machines(HOSTS)
        .net(NetConfig::ideal())
        .seed(7)
        .build();
    let mut control = sim.controller("yellow").expect("controller starts");
    control.exec("filter f1 blue log=store");

    control.exec("newjob mx f1");
    for (i, m) in HOSTS.iter().enumerate() {
        control.exec(&format!(
            "addprocess mx {m} /bin/lmutex {i} {} {ROUNDS} {}",
            HOSTS.len(),
            HOSTS.join(" ")
        ));
    }
    control.exec("setflags mx send receive");
    control.exec("startjob mx");
    assert!(control.wait_job("mx", 120_000), "job never converged");

    // Everything below comes from the log, not the processes: getlog
    // fetches the store segments and renders them to trace text.
    let text = sim.stable_log(&mut control, "f1");
    let report = MutexReport::check(&Trace::parse(&text));
    println!("{report}");
    assert!(report.mutual_exclusion_ok(), "critical sections overlapped");
    assert!(report.order_ok, "entries defied the timestamp order");

    // The controller can render the same verdict as a session command.
    let out = control.exec("check f1 mutex");
    assert!(out.contains("mutual exclusion: OK"), "{out}");

    control.exec("bye");
    sim.shutdown();
}
