//! Binary log-store glue: the simulated file system as a store
//! [`Backend`].
//!
//! The log store (crate `dpm-logstore`) is substrate-agnostic: it
//! talks to storage through the [`Backend`] trait. This module adapts
//! a simulated machine's [`SimFs`](dpm_simos::SimFs) to that trait, so a filter process
//! started with `log=store` keeps its segments in the same per-machine
//! file system that holds text logs — visible to `ls`-style listing,
//! fetchable over the control connection's `GetFile` RPC, and subject
//! to the same crash semantics the simulation models.

use dpm_logstore::Backend;
use dpm_simos::Machine;
use std::sync::Arc;

/// A store [`Backend`] over one simulated machine's file system.
///
/// [`SimFs`](dpm_simos::SimFs) appends are atomic per call (one lock
/// acquisition covers the whole extend), which is exactly the
/// atomicity the store's group-commit writer requires: a flush lands
/// as one append, so a concurrent reader sees whole frames or nothing.
#[derive(Clone)]
pub struct SimFsBackend {
    machine: Arc<Machine>,
}

impl SimFsBackend {
    /// A backend over `machine`'s file system.
    pub fn new(machine: Arc<Machine>) -> SimFsBackend {
        SimFsBackend { machine }
    }
}

impl std::fmt::Debug for SimFsBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFsBackend")
            .field("machine", &self.machine.name())
            .finish()
    }
}

impl Backend for SimFsBackend {
    fn append(&self, name: &str, data: &[u8]) {
        self.machine.fs().append(name, data);
    }

    fn write(&self, name: &str, data: &[u8]) {
        self.machine.fs().write(name, data.to_vec());
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.machine.fs().read(name)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.machine.fs().list(prefix)
    }

    // `sync` keeps the default no-op: the simulated fs is always
    // "durable" — there is no page cache between it and the store.
}
