//! The edge pre-filter: selection *before* the network.
//!
//! The paper funnels every meter record point-to-point into a central
//! filter, so the whole metering volume crosses the network before the
//! selection templates ever see it. Following DCM's "each node filters
//! its own slice" layering, an edge pre-filter is a filter process
//! co-located with a meterdaemon (`role=edge`): local metered
//! processes connect to it instead of the remote filter, it applies
//! the same selection-template DSL ([`crate::rules`]), and only the
//! *accepted* records are forwarded upstream — over the exact meter
//! record framing the upstream filter already speaks, so the parent
//! (a leaf or an aggregate) cannot tell an edge from a meter.
//!
//! Edges keep no log of their own: their job is byte reduction at the
//! source, and the authoritative log lives at the tree's root.

use crate::args::FilterArgs;
use crate::desc::Descriptions;
use crate::engine::FilterEngine;
use crate::rules::Rules;
use dpm_simos::{connect_backoff, Backoff, BindTo, Domain, Proc, SockType, SysError, SysResult};

/// The backoff an edge uses to reach its parent: generous, because a
/// partition between edge and root must be outwaited, not given up on
/// (a failed connect would silently drop every record of that meter
/// connection).
fn upstream_backoff() -> Backoff {
    Backoff::new(100, 5, 160)
}

/// Runs a `role=edge` filter: accept meter connections, select, and
/// forward accepted records to `upstream`.
///
/// Each accepted meter connection gets its own forked reader *and its
/// own upstream connection*, so one metered process maps to one
/// ordered record stream end to end — per-process ordering (and the
/// engine's per-connection sequence dedup) survive the extra hop.
///
/// # Errors
///
/// `EINVAL` when `args` has no upstream; socket errors propagate;
/// runs until killed.
pub fn run_edge(p: &Proc, args: &FilterArgs, desc: Descriptions, rules: Rules) -> SysResult<()> {
    let (up_host, up_port) = args.upstream_addr().ok_or(SysError::Einval)?;

    let listener = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(listener, BindTo::Port(args.port))?;
    p.listen(listener, 32)?;

    loop {
        let (conn, _peer) = p.accept(listener)?;
        let desc = desc.clone();
        let rules = rules.clone();
        let host = up_host.clone();
        p.fork_with(move |c| {
            let up = connect_backoff(&c, &host, up_port, upstream_backoff())?;
            let mut engine = FilterEngine::new(desc, rules);
            let mut batch = Vec::new();
            let machine = c.machine().clone();
            let r = dpm_telemetry::registry();
            let accepted = r.counter("edge", "accepted", machine.name());
            let rejected = r.counter("edge", "rejected", machine.name());
            let staleness = r.histogram("e2e", "emit_to_ingest_ms", machine.name());
            let mut last = engine.stats();
            loop {
                let data = c.read(conn, 4096)?;
                if data.is_empty() {
                    break;
                }
                batch.clear();
                engine.feed_records(&data, &mut |view, _rec| {
                    // Edge and meter share one machine, so its clock is
                    // the right "now" for the emit→ingest readout.
                    staleness.record(u64::from(
                        machine.clock().now_ms().saturating_sub(view.cpu_time()),
                    ));
                    batch.extend_from_slice(view.bytes());
                });
                let stats = engine.stats();
                accepted.add(stats.kept.saturating_sub(last.kept));
                rejected.add(stats.rejected.saturating_sub(last.rejected));
                last = stats;
                if !batch.is_empty() {
                    // One write per input chunk: whole records only,
                    // so the upstream sees clean record framing.
                    c.write(up, &batch)?;
                }
            }
            // EOF: the metered process is done; closing the upstream
            // connection propagates the end-of-stream to the parent.
            c.close(up)?;
            c.close(conn)?;
            Ok(())
        })?;
        // The parent's reference to the connection is the child's now.
        p.close(conn)?;
    }
}
