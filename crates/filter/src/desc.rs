//! Event record descriptions — the filter's message-format DSL.
//!
//! "The event record descriptions define the message formats. These
//! descriptions are stored in a file with there being a description
//! for each type of event. A description is a list of fields within an
//! event record. … The digits next to a field specify the position of
//! the field within the message. For example, the field sock … starts
//! on the eighth byte …, is four bytes long and is displayed in base
//! ten." (§3.4, Fig. 3.2)
//!
//! Format of a description file, exactly as in Fig. 3.2:
//!
//! ```text
//! HEADER size machine cpuTime procTime traceType
//! SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10 destNameLen,16,4,10 destName,20,16,16
//! ```
//!
//! Each event line is the event name, its trace-type number followed
//! by a comma, then `name,offset,length,base` tuples. Offsets are
//! within the event *body* (after the standard 24-byte header). Base
//! 10 fields are little-endian integers; base 16 fields are raw bytes
//! (socket names).

use dpm_meter::{SockName, NAME_LEN};
use std::collections::HashMap;
use std::fmt;

/// One field of an event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDesc {
    /// Field name, e.g. `msgLength`.
    pub name: String,
    /// Byte offset within the event body.
    pub offset: usize,
    /// Byte length (2, 4, or 16).
    pub len: usize,
    /// Display base: 10 for integers, 16 for raw byte fields.
    pub base: u32,
}

/// The description of one event type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDesc {
    /// Event name as written in the file, lower-cased (`send`).
    pub name: String,
    /// The `traceType` value identifying this event on the wire.
    pub trace_type: u32,
    /// Body fields in file order.
    pub fields: Vec<FieldDesc>,
}

/// A parsed descriptions file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Descriptions {
    header_fields: Vec<String>,
    by_type: HashMap<u32, EventDesc>,
    by_name: HashMap<String, u32>,
}

/// A value extracted from a record field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An integer (base-10 field).
    Int(u64),
    /// Raw bytes (base-16 field, i.e. a socket name).
    Bytes(Vec<u8>),
}

impl fmt::Display for FieldValue {
    /// Integers print in decimal. Byte fields print as a decoded
    /// socket name when possible (`inet:1:1701`), otherwise as hex.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::Bytes(b) => {
                if b.iter().all(|&x| x == 0) {
                    return f.write_str("-");
                }
                if b.len() == NAME_LEN {
                    if let Ok(name) = SockName::decode(b) {
                        return write!(f, "{name}");
                    }
                }
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
        }
    }
}

/// Error parsing a descriptions file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DescParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "descriptions line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DescParseError {}

/// Standard header layout (24 bytes): field name, offset, length.
/// `dummy` is not listed — the paper's Fig. 3.2 header omits it too.
const HEADER_LAYOUT: &[(&str, usize, usize)] = &[
    ("size", 0, 4),
    ("machine", 4, 2),
    ("cpuTime", 8, 4),
    ("procTime", 16, 4),
    ("traceType", 20, 4),
];

/// Length of the standard header on the wire (re-exported from the
/// meter crate so the two layouts can never drift apart).
pub use dpm_meter::HEADER_LEN;

impl Descriptions {
    /// Parses a descriptions file.
    ///
    /// # Errors
    ///
    /// Returns [`DescParseError`] naming the offending line for any
    /// syntax problem: malformed tuples, duplicate event names or
    /// types, or a missing `HEADER` line.
    pub fn parse(text: &str) -> Result<Descriptions, DescParseError> {
        let mut out = Descriptions::default();
        let err = |line: usize, message: &str| DescParseError {
            line,
            message: message.to_owned(),
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let head = tokens.next().expect("nonempty line");
            if head.eq_ignore_ascii_case("HEADER") {
                out.header_fields = tokens.map(str::to_owned).collect();
                continue;
            }
            // Event line: NAME <type>, field,off,len,base ...
            let name = head.to_ascii_lowercase();
            let type_tok = tokens
                .next()
                .ok_or_else(|| err(lineno, "missing trace type"))?;
            let type_tok = type_tok.trim_end_matches(',');
            let trace_type: u32 = type_tok
                .parse()
                .map_err(|_| err(lineno, &format!("bad trace type `{type_tok}`")))?;
            let mut fields = Vec::new();
            for tuple in tokens {
                let parts: Vec<&str> = tuple.trim_end_matches(',').split(',').collect();
                if parts.len() != 4 {
                    return Err(err(lineno, &format!("bad field tuple `{tuple}`")));
                }
                let parse_num = |s: &str| -> Result<usize, DescParseError> {
                    s.parse()
                        .map_err(|_| err(lineno, &format!("bad number `{s}`")))
                };
                fields.push(FieldDesc {
                    name: parts[0].to_owned(),
                    offset: parse_num(parts[1])?,
                    len: parse_num(parts[2])?,
                    base: parse_num(parts[3])? as u32,
                });
            }
            if out.by_name.contains_key(&name) {
                return Err(err(lineno, &format!("duplicate event `{name}`")));
            }
            if out.by_type.contains_key(&trace_type) {
                return Err(err(lineno, &format!("duplicate trace type {trace_type}")));
            }
            out.by_name.insert(name.clone(), trace_type);
            out.by_type.insert(
                trace_type,
                EventDesc {
                    name,
                    trace_type,
                    fields,
                },
            );
        }
        if out.header_fields.is_empty() {
            return Err(err(0, "missing HEADER line"));
        }
        Ok(out)
    }

    /// The descriptions of the standard meter message formats — the
    /// file the measurement tool ships ("standard filenames …
    /// `descriptions`", §4.3). Covers every event of Appendix A.
    pub fn standard_text() -> &'static str {
        "\
HEADER size machine cpuTime procTime traceType
SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10 destNameLen,16,4,10 destName,20,16,16
RECEIVECALL 2, pid,0,4,10 pc,4,4,10 sock,8,4,10
RECEIVE 3, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10 sourceNameLen,16,4,10 sourceName,20,16,16
SOCKET 4, pid,0,4,10 pc,4,4,10 sock,8,4,10 domain,12,4,10 type,16,4,10 protocol,20,4,10
DUP 5, pid,0,4,10 pc,4,4,10 sock,8,4,10 newSock,12,4,10
DESTSOCKET 6, pid,0,4,10 pc,4,4,10 sock,8,4,10
FORK 7, pid,0,4,10 pc,4,4,10 newPid,8,4,10
ACCEPT 8, pid,0,4,10 pc,4,4,10 sock,8,4,10 newSock,12,4,10 sockNameLen,16,4,10 peerNameLen,20,4,10 sockName,24,16,16 peerName,40,16,16
CONNECT 9, pid,0,4,10 pc,4,4,10 sock,8,4,10 sockNameLen,12,4,10 peerNameLen,16,4,10 sockName,20,16,16 peerName,36,16,16
TERMPROC 10, pid,0,4,10 pc,4,4,10 reason,8,4,10
"
    }

    /// Parses [`Descriptions::standard_text`]; never fails.
    pub fn standard() -> Descriptions {
        Descriptions::parse(Descriptions::standard_text()).expect("standard descriptions parse")
    }

    /// The event description for a trace type.
    pub fn event(&self, trace_type: u32) -> Option<&EventDesc> {
        self.by_type.get(&trace_type)
    }

    /// The trace type for an event name (lower-case).
    pub fn type_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// All described events, ordered by trace type.
    pub fn events(&self) -> Vec<&EventDesc> {
        let mut v: Vec<&EventDesc> = self.by_type.values().collect();
        v.sort_by_key(|e| e.trace_type);
        v
    }

    /// Extracts the trace type from a raw record.
    pub fn record_type(record: &[u8]) -> Option<u32> {
        read_int(record, 20, 4).map(|v| v as u32)
    }

    /// Extracts a named field from a raw record, consulting the header
    /// layout first and then the event body fields. The pseudo-field
    /// `type` resolves to `traceType`, and an event name can be used
    /// as a `type` value by the rules layer.
    pub fn field(&self, record: &[u8], name: &str) -> Option<FieldValue> {
        let name = if name == "type" { "traceType" } else { name };
        for &(hname, off, len) in HEADER_LAYOUT {
            if hname == name {
                return read_int(record, off, len).map(FieldValue::Int);
            }
        }
        let trace = Self::record_type(record)?;
        let event = self.event(trace)?;
        let field = event.fields.iter().find(|f| f.name == name)?;
        let body = record.get(HEADER_LEN..)?;
        if field.base == 16 {
            body.get(field.offset..field.offset + field.len)
                .map(|b| FieldValue::Bytes(b.to_vec()))
        } else {
            read_int(body, field.offset, field.len).map(FieldValue::Int)
        }
    }

    /// All fields of a record (header then body), in layout order,
    /// with the `size` and `*Len` bookkeeping fields skipped — the
    /// shape written to the trace log.
    pub fn all_fields(&self, record: &[u8]) -> Vec<(String, FieldValue)> {
        let mut out = Vec::new();
        for &(hname, off, len) in HEADER_LAYOUT {
            if hname == "size" {
                continue;
            }
            if let Some(v) = read_int(record, off, len) {
                out.push((hname.to_owned(), FieldValue::Int(v)));
            }
        }
        if let Some(trace) = Self::record_type(record) {
            if let Some(event) = self.event(trace) {
                for f in &event.fields {
                    if f.name.ends_with("Len") {
                        continue;
                    }
                    if let Some(v) = self.field(record, &f.name) {
                        out.push((f.name.clone(), v));
                    }
                }
            }
        }
        out
    }
}

fn read_int(buf: &[u8], off: usize, len: usize) -> Option<u64> {
    let slice = buf.get(off..off + len)?;
    let mut v: u64 = 0;
    for (i, b) in slice.iter().enumerate().take(8) {
        v |= (*b as u64) << (8 * i);
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg};

    fn send_record() -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine: 5,
                cpu_time: 9_999,
                seq: 0,
                proc_time: 40,
                trace_type: dpm_meter::trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid: 2120,
                pc: 7,
                sock: 4,
                msg_length: 612,
                dest_name: Some(SockName::inet(1, 1701)),
            }),
        }
        .encode()
    }

    #[test]
    fn figure_3_2_line_parses() {
        // The exact description of Fig. 3.2.
        let text = "HEADER size machine cpuTime procTime traceType\n\
                    SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10 destNameLen,16,4,10 destName,20,16,16\n";
        let d = Descriptions::parse(text).unwrap();
        let e = d.event(1).unwrap();
        assert_eq!(e.name, "send");
        assert_eq!(e.fields.len(), 6);
        assert_eq!(e.fields[2].name, "sock");
        assert_eq!(
            (e.fields[2].offset, e.fields[2].len, e.fields[2].base),
            (8, 4, 10)
        );
        assert_eq!(e.fields[5].name, "destName");
        assert_eq!(
            (e.fields[5].offset, e.fields[5].len, e.fields[5].base),
            (20, 16, 16)
        );
    }

    #[test]
    fn standard_descriptions_cover_all_ten_events() {
        let d = Descriptions::standard();
        assert_eq!(d.events().len(), 10);
        for t in 1..=10 {
            assert!(d.event(t).is_some(), "trace type {t} missing");
        }
        assert_eq!(d.type_of("send"), Some(1));
        assert_eq!(d.type_of("ACCEPT"), Some(8));
        assert_eq!(d.type_of("nothing"), None);
    }

    #[test]
    fn field_extraction_from_a_real_record() {
        let d = Descriptions::standard();
        let r = send_record();
        assert_eq!(d.field(&r, "machine"), Some(FieldValue::Int(5)));
        assert_eq!(d.field(&r, "cpuTime"), Some(FieldValue::Int(9_999)));
        assert_eq!(d.field(&r, "type"), Some(FieldValue::Int(1)));
        assert_eq!(d.field(&r, "pid"), Some(FieldValue::Int(2120)));
        assert_eq!(d.field(&r, "msgLength"), Some(FieldValue::Int(612)));
        let dest = d.field(&r, "destName").unwrap();
        assert_eq!(dest.to_string(), "inet:1:1701");
        assert_eq!(d.field(&r, "nonexistent"), None);
    }

    #[test]
    fn all_fields_skips_bookkeeping() {
        let d = Descriptions::standard();
        let r = send_record();
        let fields = d.all_fields(&r);
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "machine",
                "cpuTime",
                "procTime",
                "traceType",
                "pid",
                "pc",
                "sock",
                "msgLength",
                "destName"
            ]
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = Descriptions::parse("HEADER size\nSEND x, pid,0,4,10\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bad trace type"));

        let e = Descriptions::parse("HEADER a\nSEND 1, pid,0,4\n").unwrap_err();
        assert!(e.message.contains("bad field tuple"));

        let e = Descriptions::parse("SEND 1, pid,0,4,10\n").unwrap_err();
        assert!(e.message.contains("missing HEADER"));

        let e = Descriptions::parse("HEADER a\nSEND 1,\nSEND 2,\n").unwrap_err();
        assert!(e.message.contains("duplicate event"));

        let e = Descriptions::parse("HEADER a\nSEND 1,\nRECV 1,\n").unwrap_err();
        assert!(e.message.contains("duplicate trace type"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let d = Descriptions::parse(
            "# comment\n\nHEADER size machine cpuTime procTime traceType\n\nSEND 1, pid,0,4,10\n",
        )
        .unwrap();
        assert!(d.event(1).is_some());
    }

    #[test]
    fn zero_name_field_displays_as_dash() {
        let d = Descriptions::standard();
        let r = MeterMsg {
            header: MeterHeader {
                size: 0,
                machine: 0,
                cpu_time: 0,
                seq: 0,
                proc_time: 0,
                trace_type: dpm_meter::trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid: 1,
                pc: 1,
                sock: 1,
                msg_length: 1,
                dest_name: None,
            }),
        }
        .encode();
        assert_eq!(d.field(&r, "destName").unwrap().to_string(), "-");
    }
}
