//! The aggregate filter: a tree node merging child record streams.
//!
//! A `role=aggregate` filter is the interior (usually the root) of a
//! filter tree. Its inputs are live record streams from children —
//! edge pre-filters forwarding their accepted records, leaf filters,
//! or raw meter connections; all of them speak the same record
//! framing. It merges everything it accepts by `(machine, pid, seq)`
//! into **one deterministic log**: records are buffered and written in
//! canonical key order once the tree goes quiet, so
//! `Trace::from_store` and the session's `check`/`getlog` commands
//! work unchanged at the root, and two trees fed the same records
//! produce byte-identical logs regardless of network arrival order.
//!
//! Duplicate suppression happens at two levels. Each child stream gets
//! its own [`FilterEngine`], whose per-connection sequence dedup
//! absorbs at-least-once retransmission of meter flushes; the merge
//! itself then drops any sequenced record it has already accepted —
//! that is what catches a child reconnecting after a partition and
//! replaying records the root already holds.

use crate::args::FilterArgs;
use crate::desc::Descriptions;
use crate::engine::FilterEngine;
use crate::rules::Rules;
use crate::store::SimFsBackend;
use dpm_logstore::{seal_manifest_hook, Backend, LogStore, SegmentWriter, StoreConfig};
use dpm_simos::{
    connect_backoff, Backoff, BindTo, Domain, Machine, Proc, SockType, SysError, SysResult,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// How long the tree must stay quiet (no open children, no arrivals)
/// before the pending records are flushed as one canonical batch.
const QUIET_MS: u64 = 25;

/// Safety valve: pending bytes beyond which the merge flushes even
/// while children are still connected (bounds memory on long runs; the
/// log stays canonical *per batch*).
const MAX_PENDING_BYTES: usize = 8 * 1024 * 1024;

/// One record held by the merge: its raw wire bytes (what the store
/// sink appends and the upstream hop forwards) and its rendered line
/// (what the text sink appends — reduction already applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedRecord {
    /// Raw wire bytes, header + body.
    pub raw: Vec<u8>,
    /// The textual log line, without the trailing newline.
    pub line: String,
}

/// The deterministic merge at the heart of an aggregate filter:
/// accepted records go in keyed by `(machine, pid, seq)`, batches come
/// out in canonical key order, and sequenced records are accepted at
/// most once across the aggregate's whole lifetime.
#[derive(Debug, Default)]
pub struct TreeMerge {
    /// Sequenced records ever accepted — survives drains, so a child
    /// replaying after reconnect cannot re-insert.
    seen: HashSet<(u16, u32, u32)>,
    /// Records awaiting the next canonical flush. The arrival counter
    /// in the key orders unsequenced (`seq == 0`) records, which may
    /// legitimately repeat, without ever colliding.
    pending: BTreeMap<(u16, u32, u32, u64), MergedRecord>,
    pending_bytes: usize,
    arrivals: u64,
    duplicates: u64,
}

impl TreeMerge {
    /// A fresh, empty merge.
    #[must_use]
    pub fn new() -> TreeMerge {
        TreeMerge::default()
    }

    /// Offers one accepted record. Returns `false` (and keeps the
    /// record out) when a record with the same `(machine, pid, seq)`
    /// was already accepted; unsequenced records (`seq == 0`) are
    /// always taken, in arrival order.
    pub fn insert(&mut self, machine: u16, pid: u32, seq: u32, rec: MergedRecord) -> bool {
        if seq != 0 && !self.seen.insert((machine, pid, seq)) {
            self.duplicates += 1;
            return false;
        }
        self.arrivals += 1;
        self.pending_bytes += rec.raw.len();
        self.pending.insert((machine, pid, seq, self.arrivals), rec);
        true
    }

    /// Takes everything pending, sorted by `(machine, pid, seq)` (and
    /// arrival order within a key). The dedup memory is kept.
    pub fn drain(&mut self) -> Vec<MergedRecord> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending).into_values().collect()
    }

    /// Records awaiting the next flush.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Bytes of raw record data awaiting the next flush.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Sequenced records dropped as already-accepted.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

/// Where a drained batch goes: the text log or the binary store, both
/// on the aggregate's machine.
enum AggSink {
    Text { machine: Arc<Machine>, path: String },
    Store { writer: Box<SegmentWriter> },
}

impl AggSink {
    fn write_batch(&mut self, batch: &[MergedRecord]) {
        match self {
            AggSink::Text { machine, path } => {
                let mut text = String::new();
                for rec in batch {
                    text.push_str(&rec.line);
                    text.push('\n');
                }
                machine.fs().append(path, text.as_bytes());
            }
            AggSink::Store { writer } => {
                for rec in batch {
                    writer.append(&rec.raw);
                }
                writer.flush();
            }
        }
    }

    fn finish(&mut self) {
        if let AggSink::Store { writer } = self {
            writer.sync();
        }
    }
}

/// State shared between the connection readers and the flusher.
struct AggShared {
    state: Mutex<AggState>,
    done: AtomicBool,
}

struct AggState {
    merge: TreeMerge,
    open_conns: usize,
    last_touch: std::time::Instant,
}

impl AggShared {
    fn touch(&self) {
        self.state.lock().last_touch = std::time::Instant::now();
    }
}

/// Runs a `role=aggregate` filter: accept child record streams, merge
/// by `(machine, pid, seq)`, write one canonical log.
///
/// The flush policy favors determinism: records are held until every
/// child connection has closed and the tree has been quiet for
/// a short quiet window (`QUIET_MS`), then written as a single batch
/// in canonical order — so after a job completes, the root's log *is*
/// in `(machine, pid, seq)` order. (A safety valve flushes early if
/// the pending set exceeds `MAX_PENDING_BYTES`; each batch is still
/// canonical.)
///
/// With `upstream=` set, drained raw records are additionally
/// forwarded to a parent filter, making trees of arbitrary depth.
///
/// # Errors
///
/// `EINVAL` for an unusable configuration; socket errors propagate;
/// runs until killed.
pub fn run_aggregate(
    p: &Proc,
    args: &FilterArgs,
    desc: Descriptions,
    rules: Rules,
) -> SysResult<()> {
    if args.logfile.is_empty() {
        return Err(SysError::Einval);
    }
    let mut sink = if args.store_log {
        let backend: Arc<dyn Backend> = Arc::new(SimFsBackend::new(Arc::clone(p.machine())));
        let mut store = LogStore::open(Arc::clone(&backend), &args.logfile, StoreConfig::default());
        // Seal notifications for live consumers, as in the leaf path.
        store.set_seal_hook(seal_manifest_hook(backend, &args.logfile));
        AggSink::Store {
            writer: Box::new(store.writer(0)),
        }
    } else {
        AggSink::Text {
            machine: Arc::clone(p.machine()),
            path: args.logfile.clone(),
        }
    };

    // Optional upstream hop: a forked child owns the connection and
    // writes whatever the flusher hands it over a channel, keeping
    // all syscalls on simulated-process threads.
    let forward = match args.upstream_addr() {
        Some((host, port)) => {
            let (tx, rx) = mpsc::channel::<Vec<u8>>();
            p.fork_with(move |c| {
                let up = connect_backoff(&c, &host, port, Backoff::new(100, 5, 160))?;
                while let Ok(batch) = rx.recv() {
                    c.write(up, &batch)?;
                }
                c.close(up)?;
                Ok(())
            })?;
            Some(tx)
        }
        None => None,
    };

    let shared = Arc::new(AggShared {
        state: Mutex::new(AggState {
            merge: TreeMerge::new(),
            open_conns: 0,
            last_touch: std::time::Instant::now(),
        }),
        done: AtomicBool::new(false),
    });

    // The flusher is a plain thread: it only touches the merge (behind
    // the mutex), the machine's file system, and the forward channel.
    let flusher = {
        let shared = Arc::clone(&shared);
        let r = dpm_telemetry::registry();
        let dedup_hits = r.counter("agg", "dedup_hits", p.machine().name());
        let pending_gauge = r.gauge("agg", "pending_bytes", p.machine().name());
        std::thread::spawn(move || {
            // Duplicates already credited to the dedup counter.
            let mut last_dups = 0u64;
            loop {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let done = shared.done.load(Ordering::Acquire);
                let batch = {
                    let mut st = shared.state.lock();
                    let quiet =
                        st.last_touch.elapsed() >= std::time::Duration::from_millis(QUIET_MS);
                    let idle = st.open_conns == 0 && quiet;
                    let oversized = st.merge.pending_bytes() > MAX_PENDING_BYTES;
                    dedup_hits.add(st.merge.duplicates().saturating_sub(last_dups));
                    last_dups = last_dups.max(st.merge.duplicates());
                    pending_gauge.set(st.merge.pending_bytes() as i64);
                    if st.merge.pending_len() > 0 && (idle || oversized || done) {
                        st.merge.drain()
                    } else {
                        Vec::new()
                    }
                };
                if !batch.is_empty() {
                    sink.write_batch(&batch);
                    if let Some(tx) = &forward {
                        let mut raw = Vec::new();
                        for rec in &batch {
                            raw.extend_from_slice(&rec.raw);
                        }
                        // A closed channel means the forwarder died;
                        // the local log is still authoritative.
                        let _ = tx.send(raw);
                    }
                }
                if done {
                    break;
                }
            }
            sink.finish();
            // Dropping `forward` closes the channel; the forwarder
            // child sees the disconnect and closes its connection.
        })
    };

    let listener = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(listener, BindTo::Port(args.port))?;
    p.listen(listener, 32)?;

    let result = loop {
        let (conn, _peer) = match p.accept(listener) {
            Ok(pair) => pair,
            Err(e) => break Err(e), // killed (or machine down): wind down
        };
        shared.state.lock().open_conns += 1;
        shared.touch();
        let desc = desc.clone();
        let rules = rules.clone();
        let child_shared = Arc::clone(&shared);
        let fork = p.fork_with(move |c| {
            let mut engine = FilterEngine::new(desc, rules);
            let read_result = loop {
                let data = match c.read(conn, 4096) {
                    Ok(d) => d,
                    Err(e) => break Err(e),
                };
                if data.is_empty() {
                    break Ok(());
                }
                let mut st = child_shared.state.lock();
                engine.feed_records(&data, &mut |view, rec| {
                    st.merge.insert(
                        view.machine(),
                        view.pid().unwrap_or(0),
                        view.seq(),
                        MergedRecord {
                            raw: view.bytes().to_vec(),
                            line: rec.to_string(),
                        },
                    );
                });
                st.last_touch = std::time::Instant::now();
                drop(st);
            };
            let mut st = child_shared.state.lock();
            st.open_conns -= 1;
            st.last_touch = std::time::Instant::now();
            drop(st);
            let _ = c.close(conn);
            read_result
        });
        if let Err(e) = fork {
            shared.state.lock().open_conns -= 1;
            break Err(e);
        }
        // The parent's reference to the connection is the child's now.
        if let Err(e) = p.close(conn) {
            break Err(e);
        }
    };

    shared.done.store(true, Ordering::Release);
    let _ = flusher.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tag: u8) -> MergedRecord {
        MergedRecord {
            raw: vec![tag; 4],
            line: format!("rec{tag}"),
        }
    }

    #[test]
    fn drain_is_canonically_ordered() {
        let mut m = TreeMerge::new();
        // Arrival order scrambled across machines, pids, and seqs.
        assert!(m.insert(2, 10, 1, rec(1)));
        assert!(m.insert(1, 20, 2, rec(2)));
        assert!(m.insert(1, 10, 2, rec(3)));
        assert!(m.insert(1, 10, 1, rec(4)));
        assert!(m.insert(2, 10, 3, rec(5)));
        let tags: Vec<u8> = m.drain().into_iter().map(|r| r.raw[0]).collect();
        assert_eq!(tags, vec![4, 3, 2, 1, 5]);
        assert_eq!(m.pending_len(), 0);
    }

    #[test]
    fn sequenced_duplicates_are_dropped_even_across_drains() {
        let mut m = TreeMerge::new();
        assert!(m.insert(1, 10, 1, rec(1)));
        assert!(!m.insert(1, 10, 1, rec(9)), "same batch duplicate");
        let first = m.drain();
        assert_eq!(first.len(), 1);
        // A replay after the flush (child reconnected) is still a
        // duplicate: the dedup memory outlives the drain.
        assert!(!m.insert(1, 10, 1, rec(9)));
        assert!(m.drain().is_empty());
        assert_eq!(m.duplicates(), 2);
    }

    #[test]
    fn unsequenced_records_keep_arrival_order_and_never_collide() {
        let mut m = TreeMerge::new();
        assert!(m.insert(1, 10, 0, rec(1)));
        assert!(m.insert(1, 10, 0, rec(2)));
        assert!(m.insert(1, 10, 0, rec(3)));
        let tags: Vec<u8> = m.drain().into_iter().map(|r| r.raw[0]).collect();
        assert_eq!(tags, vec![1, 2, 3], "seq 0: arrival order, none lost");
    }

    #[test]
    fn pending_bytes_track_raw_sizes() {
        let mut m = TreeMerge::new();
        m.insert(1, 1, 1, rec(1));
        m.insert(1, 1, 2, rec(2));
        assert_eq!(m.pending_bytes(), 8);
        m.drain();
        assert_eq!(m.pending_bytes(), 0);
    }
}
