//! The filter engine: stream reassembly, selection, reduction.
//!
//! "After receiving a message from standard input, the default filter
//! performs selection and reduction operations on the event records
//! received. It uses event record descriptions and selection rules to
//! specify the criteria for data selection and reduction." (§3.4)
//!
//! [`FilterEngine`] is the pure core — bytes in, log records out —
//! used by the standard filter *process* (see [`crate::program`]), by
//! the sharded pipeline (see [`crate::shard`]), and directly by unit
//! tests and benchmarks.
//!
//! # The zero-copy hot path
//!
//! Meter connections are byte streams, so records arrive split and
//! concatenated arbitrarily. The engine reassembles them with a cursor
//! walk over the *caller's* buffer: a record that arrives whole inside
//! one `feed_into` chunk is framed in place and handed to the
//! selection rules as a borrowed [`RecordView`] — no copy, no
//! allocation. Only a partial tail (a frame straddling a chunk
//! boundary) is copied into the engine's small carry buffer, and
//! resynchronization after stream corruption advances a cursor rather
//! than shifting bytes (the old implementation's `remove(0)` made a
//! corrupt stream cost O(n²)). The carry buffer is compacted at most
//! once per `feed_into` call, so every input byte is moved O(1) times
//! in the worst case and 0 times in the steady state.

use crate::desc::HEADER_LEN;
use crate::log::LogRecord;
use crate::rules::{Rules, Verdict};
use dpm_meter::{DecodeError, MeterMsg, MAX_METER_MSG};
use std::mem;
use std::ops::Deref;

use crate::desc::Descriptions;

/// Counters the filter keeps about its own work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Records examined.
    pub seen: u64,
    /// Records written to the log.
    pub kept: u64,
    /// Records rejected by the selection rules.
    pub rejected: u64,
    /// Records dropped as duplicates by sequence-number dedup
    /// (at-least-once retransmission of a meter flush).
    pub duplicates: u64,
    /// Bytes of malformed input dropped while resynchronizing.
    pub garbage_bytes: u64,
}

impl FilterStats {
    /// Component-wise sum, used when merging per-shard statistics.
    pub fn merge(&self, other: &FilterStats) -> FilterStats {
        FilterStats {
            seen: self.seen + other.seen,
            kept: self.kept + other.kept,
            rejected: self.rejected + other.rejected,
            duplicates: self.duplicates + other.duplicates,
            garbage_bytes: self.garbage_bytes + other.garbage_bytes,
        }
    }
}

/// One complete, size-validated event record borrowed from a stream
/// buffer.
///
/// This is the currency of the filter hot path: reassembly frames
/// records in place and hands them to the rules without copying.
/// `RecordView` derefs to `[u8]`, so everything that accepts a raw
/// record slice (e.g. [`Rules::verdict`]) accepts a view.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    bytes: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// Wraps a complete record. The slice must hold at least a header;
    /// the engine's reassembly guarantees this, hand-built callers get
    /// a debug assertion.
    pub fn new(bytes: &'a [u8]) -> RecordView<'a> {
        debug_assert!(bytes.len() >= HEADER_LEN, "record shorter than header");
        RecordView { bytes }
    }

    /// The record's raw wire bytes (header + body).
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Total record length in bytes.
    #[allow(clippy::len_without_is_empty)] // never empty: >= HEADER_LEN
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// The header's machine field, read in place.
    pub fn machine(&self) -> u16 {
        u16::from_le_bytes([self.bytes[4], self.bytes[5]])
    }

    /// The header's trace-type field, read in place.
    pub fn trace_type(&self) -> u32 {
        u32::from_le_bytes([
            self.bytes[20],
            self.bytes[21],
            self.bytes[22],
            self.bytes[23],
        ])
    }

    /// The header's `cpu_time` stamp (emitting machine's local clock,
    /// milliseconds), read in place. The ingest side subtracts this
    /// from its own machine clock for the emit→ingest staleness
    /// readout — honest only up to the skew between the two clocks,
    /// which is the paper's own caveat about distributed timestamps.
    pub fn cpu_time(&self) -> u32 {
        u32::from_le_bytes([self.bytes[8], self.bytes[9], self.bytes[10], self.bytes[11]])
    }

    /// The header's per-process sequence number, read in place. `0`
    /// means unsequenced (pre-sequence producers); see
    /// [`dpm_meter::MeterHeader::seq`].
    pub fn seq(&self) -> u32 {
        u32::from_le_bytes([
            self.bytes[12],
            self.bytes[13],
            self.bytes[14],
            self.bytes[15],
        ])
    }

    /// The emitting process id, read in place. Every meter body puts
    /// `pid` at body offset 0; returns `None` for a header-only frame.
    pub fn pid(&self) -> Option<u32> {
        let b = self.bytes.get(HEADER_LEN..HEADER_LEN + 4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Decodes the full message, allocating owned bodies.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] the underlying decoder reports.
    pub fn to_msg(&self) -> Result<MeterMsg, DecodeError> {
        MeterMsg::decode(self.bytes).map(|(msg, _)| msg)
    }
}

impl Deref for RecordView<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes
    }
}

/// A streaming filter: feed it meter-connection bytes, collect log
/// records.
///
/// # Example
///
/// ```
/// use dpm_filter::{Descriptions, FilterEngine, Rules};
/// use dpm_meter::{MeterBody, MeterFork, MeterHeader, MeterMsg, trace_type};
///
/// let mut engine = FilterEngine::new(
///     Descriptions::standard(),
///     Rules::parse("type=7")?, // keep only forks
/// );
/// let msg = MeterMsg {
///     header: MeterHeader { size: 0, machine: 0, cpu_time: 5, seq: 0, proc_time: 0,
///                           trace_type: trace_type::FORK },
///     body: MeterBody::Fork(MeterFork { pid: 1, pc: 2, new_pid: 3 }),
/// };
/// let lines = engine.feed(&msg.encode());
/// assert_eq!(lines.len(), 1);
/// assert!(lines[0].starts_with("event=fork"));
/// # Ok::<(), dpm_filter::RuleParseError>(())
/// ```
///
/// For streaming consumers, [`FilterEngine::feed_into`] delivers
/// [`LogRecord`]s to a sink closure instead of materializing a
/// `Vec<String>` per chunk:
///
/// ```
/// # use dpm_filter::{FilterEngine, LogRecord};
/// # let mut engine = FilterEngine::standard();
/// # let data: &[u8] = &[];
/// let mut kept = 0u32;
/// engine.feed_into(data, &mut |_record: LogRecord| kept += 1);
/// ```
#[derive(Debug)]
pub struct FilterEngine {
    desc: Descriptions,
    rules: Rules,
    /// Carry buffer holding only a partial tail between chunks.
    pending: Vec<u8>,
    stats: FilterStats,
    /// Highest sequence number seen per `(machine, pid)`, for
    /// duplicate suppression. A meter connection is an ordered stream
    /// and a retransmitted flush replays records already delivered, so
    /// `seq <= last` identifies the duplicates exactly.
    last_seq: std::collections::HashMap<(u16, u32), u32>,
}

impl FilterEngine {
    /// Creates an engine with the given descriptions and rules.
    pub fn new(desc: Descriptions, rules: Rules) -> FilterEngine {
        FilterEngine {
            desc,
            rules,
            pending: Vec::new(),
            stats: FilterStats::default(),
            last_seq: std::collections::HashMap::new(),
        }
    }

    /// An engine with the standard descriptions and keep-everything
    /// rules.
    pub fn standard() -> FilterEngine {
        FilterEngine::new(Descriptions::standard(), Rules::default())
    }

    /// The engine's counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Bytes buffered awaiting a complete record.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// Feeds a chunk of meter-connection bytes, delivering each kept
    /// record to `sink`.
    ///
    /// This is the streaming core of the filter pipeline. Records
    /// wholly contained in `data` are framed and processed in place;
    /// only a trailing partial frame is copied into the engine. In the
    /// steady state (no corruption, records completed by each chunk)
    /// the per-record path performs no heap allocation for rejected
    /// records; kept records allocate only their [`LogRecord`].
    pub fn feed_into<F>(&mut self, data: &[u8], sink: &mut F)
    where
        F: FnMut(LogRecord),
    {
        self.feed_records(data, &mut |_view, rec| sink(rec));
    }

    /// Like [`FilterEngine::feed_into`], but delivers each kept record
    /// together with its borrowed raw wire bytes.
    ///
    /// This is the entry point for sinks that store the record itself
    /// rather than (or in addition to) its textual rendering — the
    /// binary log store appends `view.bytes()` verbatim. The view
    /// borrows either the caller's chunk or the engine's carry buffer
    /// and is valid only for the duration of the callback.
    pub fn feed_records<F>(&mut self, data: &[u8], sink: &mut F)
    where
        F: FnMut(RecordView<'_>, LogRecord),
    {
        let data = self.drain_carry(data, sink);
        let Some(mut data) = data else { return };

        // Cursor walk over the caller's buffer: zero-copy framing.
        let mut off = 0usize;
        while data.len() - off >= HEADER_LEN {
            let size = read_size(&data[off..]);
            if !(HEADER_LEN..=MAX_METER_MSG).contains(&size) {
                // Corrupt stream: advance the cursor one byte. No
                // bytes move; this is O(1) per garbage byte.
                off += 1;
                self.stats.garbage_bytes += 1;
                continue;
            }
            if data.len() - off < size {
                break; // partial tail
            }
            let view = RecordView::new(&data[off..off + size]);
            self.process_raw(view, sink);
            off += size;
        }
        data = &data[off..];
        if !data.is_empty() {
            // Only the straddling tail is copied (at most one frame).
            self.pending.extend_from_slice(data);
        }
    }

    /// Completes (or resynchronizes past) any frame straddling the
    /// previous chunk. Returns the unconsumed remainder of `data`, or
    /// `None` when the whole chunk was absorbed into the carry buffer.
    fn drain_carry<'a, F>(&mut self, mut data: &'a [u8], sink: &mut F) -> Option<&'a [u8]>
    where
        F: FnMut(RecordView<'_>, LogRecord),
    {
        if self.pending.is_empty() {
            return Some(data);
        }
        // Take the carry buffer so completed frames can be processed
        // (`process_view` borrows `self` mutably) without aliasing.
        let mut carry = mem::take(&mut self.pending);
        let mut pos = 0usize; // resync/consume cursor — no shifting
        let remainder = loop {
            if carry.len() - pos < HEADER_LEN {
                // Top up with just enough to read a size field.
                let need = HEADER_LEN - (carry.len() - pos);
                let take = need.min(data.len());
                carry.extend_from_slice(&data[..take]);
                data = &data[take..];
                if carry.len() - pos < HEADER_LEN {
                    break None; // input exhausted; still partial
                }
            }
            let size = read_size(&carry[pos..]);
            if !(HEADER_LEN..=MAX_METER_MSG).contains(&size) {
                pos += 1;
                self.stats.garbage_bytes += 1;
                continue;
            }
            if carry.len() - pos < size {
                // Top up with just enough to finish this frame.
                let need = size - (carry.len() - pos);
                let take = need.min(data.len());
                carry.extend_from_slice(&data[..take]);
                data = &data[take..];
                if carry.len() - pos < size {
                    break None; // input exhausted; still partial
                }
            }
            let view = RecordView::new(&carry[pos..pos + size]);
            self.process_raw(view, sink);
            pos += size;
            if pos == carry.len() {
                break Some(data); // carry drained; back to zero-copy
            }
        };
        // Compact once per call: every carried byte moves O(1) times.
        carry.drain(..pos);
        if remainder.is_some() {
            debug_assert!(carry.is_empty());
            carry.clear();
        }
        self.pending = carry; // keeps its capacity for the next tail
        remainder
    }

    /// Feeds a chunk of meter-connection bytes; returns the log lines
    /// for the records completed and kept by this chunk.
    ///
    /// Compatibility wrapper over [`FilterEngine::feed_into`] — it
    /// materializes one `String` per kept record. Streaming consumers
    /// should use `feed_into` directly.
    pub fn feed(&mut self, data: &[u8]) -> Vec<String> {
        let mut out = Vec::new();
        self.feed_into(data, &mut |rec: LogRecord| out.push(rec.to_string()));
        out
    }

    /// Runs one complete, borrowed record through selection and
    /// reduction, delivering it to `sink` if kept.
    pub fn process_view<F>(&mut self, record: RecordView<'_>, sink: &mut F)
    where
        F: FnMut(LogRecord),
    {
        self.process_raw(record, &mut |_view, rec| sink(rec));
    }

    /// [`FilterEngine::process_view`] delivering the raw view
    /// alongside the rendered record.
    fn process_raw<F>(&mut self, record: RecordView<'_>, sink: &mut F)
    where
        F: FnMut(RecordView<'_>, LogRecord),
    {
        self.stats.seen += 1;
        // Sequence dedup: a record whose per-process sequence does not
        // advance is a retransmitted copy. Sequence 0 marks legacy
        // unsequenced producers and is never deduplicated.
        let seq = record.seq();
        if seq != 0 {
            if let Some(pid) = record.pid() {
                let last = self.last_seq.entry((record.machine(), pid)).or_insert(0);
                if seq <= *last {
                    self.stats.duplicates += 1;
                    return;
                }
                *last = seq;
            }
        }
        match self.rules.verdict(&self.desc, record.bytes()) {
            Verdict::Reject => {
                self.stats.rejected += 1;
            }
            Verdict::Keep { discard_fields } => {
                match LogRecord::from_raw(&self.desc, record.bytes(), &discard_fields) {
                    Some(rec) => {
                        self.stats.kept += 1;
                        sink(record, rec);
                    }
                    None => {
                        // Unknown trace type: count it as garbage.
                        self.stats.garbage_bytes += record.len() as u64;
                    }
                }
            }
        }
    }

    /// Runs one complete record through selection and reduction.
    ///
    /// Compatibility wrapper over [`FilterEngine::process_view`].
    pub fn process_record(&mut self, record: &[u8]) -> Option<String> {
        let mut out = None;
        self.process_view(RecordView::new(record), &mut |rec: LogRecord| {
            out = Some(rec.to_string());
        });
        out
    }
}

/// Reads the header's little-endian size field at the front of `buf`.
fn read_size(buf: &[u8]) -> usize {
    u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_meter::{MeterBody, MeterFork, MeterHeader, MeterMsg, MeterSendMsg, SockName};

    fn msg(machine: u16, body: MeterBody) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: 1,
                seq: 0,
                proc_time: 0,
                trace_type: body.trace_type(),
            },
            body,
        }
        .encode()
    }

    fn send(machine: u16, len: u32) -> Vec<u8> {
        msg(
            machine,
            MeterBody::Send(MeterSendMsg {
                pid: 1,
                pc: 0,
                sock: 2,
                msg_length: len,
                dest_name: Some(SockName::inet(0, 9)),
            }),
        )
    }

    #[test]
    fn reassembles_records_across_chunk_boundaries() {
        let mut e = FilterEngine::standard();
        let a = send(0, 10);
        let b = send(0, 20);
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        // Feed in awkward chunks.
        let mut lines = Vec::new();
        for chunk in wire.chunks(7) {
            lines.extend(e.feed(chunk));
        }
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("msgLength=10"));
        assert!(lines[1].contains("msgLength=20"));
        assert_eq!(e.pending_bytes(), 0);
        assert_eq!(e.stats().kept, 2);
    }

    #[test]
    fn selection_rejects_and_counts() {
        let mut e = FilterEngine::new(Descriptions::standard(), Rules::parse("machine=5").unwrap());
        let mut wire = send(5, 1);
        wire.extend_from_slice(&send(6, 1));
        let lines = e.feed(&wire);
        assert_eq!(lines.len(), 1);
        assert_eq!(e.stats().seen, 2);
        assert_eq!(e.stats().rejected, 1);
    }

    #[test]
    fn resynchronizes_after_garbage() {
        let mut e = FilterEngine::standard();
        let mut wire = vec![0xff; 5]; // garbage prefix
        wire.extend_from_slice(&send(1, 7));
        let lines = e.feed(&wire);
        assert_eq!(lines.len(), 1, "recovered the record after garbage");
        assert!(e.stats().garbage_bytes >= 5);
    }

    #[test]
    fn discard_reduction_happens_in_output() {
        let mut e = FilterEngine::new(
            Descriptions::standard(),
            Rules::parse("type=1, pc=#*").unwrap(),
        );
        let lines = e.feed(&send(0, 3));
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].contains("pc="), "pc was discarded: {}", lines[0]);
    }

    #[test]
    fn partial_header_waits_for_more() {
        let mut e = FilterEngine::standard();
        let wire = msg(
            0,
            MeterBody::Fork(MeterFork {
                pid: 1,
                pc: 2,
                new_pid: 3,
            }),
        );
        assert!(e.feed(&wire[..10]).is_empty());
        assert_eq!(e.pending_bytes(), 10);
        let lines = e.feed(&wire[10..]);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn feed_into_delivers_structured_records() {
        let mut e = FilterEngine::standard();
        let mut records = Vec::new();
        e.feed_into(&send(3, 64), &mut |rec: LogRecord| records.push(rec));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].event, "send");
        assert_eq!(records[0].get_int("msgLength"), Some(64));
        assert_eq!(records[0].get_int("machine"), Some(3));
    }

    #[test]
    fn feed_records_pairs_raw_bytes_with_rendered_records() {
        let a = send(3, 64);
        let b = send(4, 65);
        let mut wire = a.clone();
        wire.extend_from_slice(&[0xde, 0xad]); // mid-stream garbage
        wire.extend_from_slice(&b);
        let mut e = FilterEngine::standard();
        let mut got: Vec<(Vec<u8>, String)> = Vec::new();
        // Awkward chunks so the second record round-trips through the
        // carry buffer; its view must still be byte-exact.
        for chunk in wire.chunks(9) {
            e.feed_records(chunk, &mut |view, rec| {
                got.push((view.bytes().to_vec(), rec.to_string()));
            });
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, a);
        assert_eq!(got[1].0, b);
        assert!(got[0].1.contains("msgLength=64"));
        assert!(got[1].1.contains("msgLength=65"));
    }

    #[test]
    fn feed_matches_feed_into_exactly() {
        let mut wire = send(0, 1);
        wire.extend_from_slice(&[0xde, 0xad]); // mid-stream garbage
        wire.extend_from_slice(&send(0, 2));
        let mut a = FilterEngine::standard();
        let mut b = FilterEngine::standard();
        let lines = a.feed(&wire);
        let mut sunk = Vec::new();
        b.feed_into(&wire, &mut |rec: LogRecord| sunk.push(rec.to_string()));
        assert_eq!(lines, sunk);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn garbage_straddling_chunks_resyncs_like_one_chunk() {
        let mut wire = send(0, 1);
        wire.extend_from_slice(&[0x00; 40]); // zeros: size field of 0
        wire.extend_from_slice(&send(0, 2));
        wire.extend_from_slice(&[0xff; 3]); // trailing garbage < header
        let mut whole = FilterEngine::standard();
        let whole_lines = whole.feed(&wire);
        for chunk_len in [1usize, 2, 3, 7, 24, 25] {
            let mut split = FilterEngine::standard();
            let mut lines = Vec::new();
            for chunk in wire.chunks(chunk_len) {
                lines.extend(split.feed(chunk));
            }
            assert_eq!(lines, whole_lines, "chunk size {chunk_len}");
            assert_eq!(split.stats(), whole.stats(), "chunk size {chunk_len}");
            assert_eq!(
                split.pending_bytes(),
                whole.pending_bytes(),
                "chunk size {chunk_len}"
            );
        }
    }

    #[test]
    fn oversize_frame_is_garbage_not_a_stall() {
        let mut e = FilterEngine::standard();
        // A corrupted record whose size field claims 5000 bytes: the
        // engine must resynchronize rather than wait for 5000 bytes.
        // The filler is 0xff so no one-byte shift aliases into a
        // plausible size field.
        let mut wire = 5000u32.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0xff; 56]);
        wire.extend_from_slice(&send(0, 6));
        let lines = e.feed(&wire);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("msgLength=6"));
        assert_eq!(e.stats().garbage_bytes, 60);
        assert_eq!(e.pending_bytes(), 0);
    }

    #[test]
    fn record_view_reads_header_fields_in_place() {
        let wire = send(9, 123);
        let view = RecordView::new(&wire);
        assert_eq!(view.machine(), 9);
        assert_eq!(view.trace_type(), dpm_meter::trace_type::SEND);
        assert_eq!(view.len(), wire.len());
        assert_eq!(view.bytes().as_ptr(), wire.as_ptr(), "borrow, not copy");
        let msg = view.to_msg().unwrap();
        assert_eq!(msg.header.machine, 9);
    }

    #[test]
    fn stats_merge_sums_componentwise() {
        let a = FilterStats {
            seen: 1,
            kept: 2,
            rejected: 3,
            duplicates: 4,
            garbage_bytes: 5,
        };
        let b = FilterStats {
            seen: 10,
            kept: 20,
            rejected: 30,
            duplicates: 40,
            garbage_bytes: 50,
        };
        assert_eq!(
            a.merge(&b),
            FilterStats {
                seen: 11,
                kept: 22,
                rejected: 33,
                duplicates: 44,
                garbage_bytes: 55,
            }
        );
    }

    /// Encodes a send message with an explicit per-process sequence.
    fn send_seq(machine: u16, pid: u32, seq: u32) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: 1,
                seq,
                proc_time: 0,
                trace_type: dpm_meter::trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid,
                pc: 0,
                sock: 2,
                msg_length: 9,
                dest_name: None,
            }),
        }
        .encode()
    }

    #[test]
    fn retransmitted_flush_is_deduplicated() {
        let mut e = FilterEngine::standard();
        // A flush batch of three records...
        let mut batch = send_seq(1, 50, 1);
        batch.extend_from_slice(&send_seq(1, 50, 2));
        batch.extend_from_slice(&send_seq(1, 50, 3));
        let first = e.feed(&batch);
        assert_eq!(first.len(), 3);
        // ...delivered a second time (at-least-once retransmission).
        let second = e.feed(&batch);
        assert!(second.is_empty(), "duplicates must not double-count");
        assert_eq!(e.stats().duplicates, 3);
        assert_eq!(e.stats().kept, 3);
    }

    #[test]
    fn dedup_is_per_process_and_per_machine() {
        let mut e = FilterEngine::standard();
        let mut wire = send_seq(1, 50, 1);
        wire.extend_from_slice(&send_seq(1, 51, 1)); // other pid
        wire.extend_from_slice(&send_seq(2, 50, 1)); // other machine
        let lines = e.feed(&wire);
        assert_eq!(lines.len(), 3, "same seq, distinct processes");
        assert_eq!(e.stats().duplicates, 0);
    }

    #[test]
    fn unsequenced_records_are_never_deduplicated() {
        let mut e = FilterEngine::standard();
        let mut wire = send_seq(1, 50, 0);
        wire.extend_from_slice(&send_seq(1, 50, 0));
        let lines = e.feed(&wire);
        assert_eq!(lines.len(), 2, "seq 0 means unsequenced");
        assert_eq!(e.stats().duplicates, 0);
    }
}
