//! The filter engine: stream reassembly, selection, reduction.
//!
//! "After receiving a message from standard input, the default filter
//! performs selection and reduction operations on the event records
//! received. It uses event record descriptions and selection rules to
//! specify the criteria for data selection and reduction." (§3.4)
//!
//! [`FilterEngine`] is the pure core — bytes in, log lines out — used
//! both by the standard filter *process* (see [`crate::program`]) and
//! directly by unit tests and benchmarks.

use crate::desc::{Descriptions, HEADER_LEN};
use crate::log::LogRecord;
use crate::rules::{Rules, Verdict};

/// Counters the filter keeps about its own work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FilterStats {
    /// Records examined.
    pub seen: u64,
    /// Records written to the log.
    pub kept: u64,
    /// Records rejected by the selection rules.
    pub rejected: u64,
    /// Bytes of malformed input dropped while resynchronizing.
    pub garbage_bytes: u64,
}

/// A streaming filter: feed it meter-connection bytes, collect log
/// lines.
///
/// # Example
///
/// ```
/// use dpm_filter::{Descriptions, FilterEngine, Rules};
/// use dpm_meter::{MeterBody, MeterFork, MeterHeader, MeterMsg, trace_type};
///
/// let mut engine = FilterEngine::new(
///     Descriptions::standard(),
///     Rules::parse("type=7")?, // keep only forks
/// );
/// let msg = MeterMsg {
///     header: MeterHeader { size: 0, machine: 0, cpu_time: 5, proc_time: 0,
///                           trace_type: trace_type::FORK },
///     body: MeterBody::Fork(MeterFork { pid: 1, pc: 2, new_pid: 3 }),
/// };
/// let lines = engine.feed(&msg.encode());
/// assert_eq!(lines.len(), 1);
/// assert!(lines[0].starts_with("event=fork"));
/// # Ok::<(), dpm_filter::RuleParseError>(())
/// ```
#[derive(Debug)]
pub struct FilterEngine {
    desc: Descriptions,
    rules: Rules,
    buf: Vec<u8>,
    stats: FilterStats,
}

impl FilterEngine {
    /// Creates an engine with the given descriptions and rules.
    pub fn new(desc: Descriptions, rules: Rules) -> FilterEngine {
        FilterEngine {
            desc,
            rules,
            buf: Vec::new(),
            stats: FilterStats::default(),
        }
    }

    /// An engine with the standard descriptions and keep-everything
    /// rules.
    pub fn standard() -> FilterEngine {
        FilterEngine::new(Descriptions::standard(), Rules::default())
    }

    /// The engine's counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Bytes buffered awaiting a complete record.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Feeds a chunk of meter-connection bytes; returns the log lines
    /// for the records completed and kept by this chunk.
    pub fn feed(&mut self, data: &[u8]) -> Vec<String> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < HEADER_LEN {
                break;
            }
            let size = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                as usize;
            if !(HEADER_LEN..=4096).contains(&size) {
                // Corrupt stream: drop one byte and resynchronize.
                self.buf.remove(0);
                self.stats.garbage_bytes += 1;
                continue;
            }
            if self.buf.len() < size {
                break;
            }
            let record: Vec<u8> = self.buf.drain(..size).collect();
            if let Some(line) = self.process_record(&record) {
                out.push(line);
            }
        }
        out
    }

    /// Runs one complete record through selection and reduction.
    pub fn process_record(&mut self, record: &[u8]) -> Option<String> {
        self.stats.seen += 1;
        match self.rules.verdict(&self.desc, record) {
            Verdict::Reject => {
                self.stats.rejected += 1;
                None
            }
            Verdict::Keep { discard_fields } => {
                match LogRecord::from_raw(&self.desc, record, &discard_fields) {
                    Some(rec) => {
                        self.stats.kept += 1;
                        Some(rec.to_string())
                    }
                    None => {
                        // Unknown trace type: count it as garbage.
                        self.stats.garbage_bytes += record.len() as u64;
                        None
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_meter::{
        MeterBody, MeterFork, MeterHeader, MeterMsg, MeterSendMsg, SockName,
    };

    fn msg(machine: u16, body: MeterBody) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: 1,
                proc_time: 0,
                trace_type: body.trace_type(),
            },
            body,
        }
        .encode()
    }

    fn send(machine: u16, len: u32) -> Vec<u8> {
        msg(
            machine,
            MeterBody::Send(MeterSendMsg {
                pid: 1,
                pc: 0,
                sock: 2,
                msg_length: len,
                dest_name: Some(SockName::inet(0, 9)),
            }),
        )
    }

    #[test]
    fn reassembles_records_across_chunk_boundaries() {
        let mut e = FilterEngine::standard();
        let a = send(0, 10);
        let b = send(0, 20);
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        // Feed in awkward chunks.
        let mut lines = Vec::new();
        for chunk in wire.chunks(7) {
            lines.extend(e.feed(chunk));
        }
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("msgLength=10"));
        assert!(lines[1].contains("msgLength=20"));
        assert_eq!(e.pending_bytes(), 0);
        assert_eq!(e.stats().kept, 2);
    }

    #[test]
    fn selection_rejects_and_counts() {
        let mut e = FilterEngine::new(
            Descriptions::standard(),
            Rules::parse("machine=5").unwrap(),
        );
        let mut wire = send(5, 1);
        wire.extend_from_slice(&send(6, 1));
        let lines = e.feed(&wire);
        assert_eq!(lines.len(), 1);
        assert_eq!(e.stats().seen, 2);
        assert_eq!(e.stats().rejected, 1);
    }

    #[test]
    fn resynchronizes_after_garbage() {
        let mut e = FilterEngine::standard();
        let mut wire = vec![0xff; 5]; // garbage prefix
        wire.extend_from_slice(&send(1, 7));
        let lines = e.feed(&wire);
        assert_eq!(lines.len(), 1, "recovered the record after garbage");
        assert!(e.stats().garbage_bytes >= 5);
    }

    #[test]
    fn discard_reduction_happens_in_output() {
        let mut e = FilterEngine::new(
            Descriptions::standard(),
            Rules::parse("type=1, pc=#*").unwrap(),
        );
        let lines = e.feed(&send(0, 3));
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].contains("pc="), "pc was discarded: {}", lines[0]);
    }

    #[test]
    fn partial_header_waits_for_more() {
        let mut e = FilterEngine::standard();
        let wire = msg(
            0,
            MeterBody::Fork(MeterFork {
                pid: 1,
                pc: 2,
                new_pid: 3,
            }),
        );
        assert!(e.feed(&wire[..10]).is_empty());
        assert_eq!(e.pending_bytes(), 10);
        let lines = e.feed(&wire[10..]);
        assert_eq!(lines.len(), 1);
    }
}
