//! Selection rules (templates) — what the filter keeps, and what it
//! strips.
//!
//! "The selection rules are stored in another file and are used to
//! select and edit event records. … The conditions that may be used to
//! specify selection criteria in a template are `>`, `<`, `=`, `!=`,
//! `>=`, and `<=`. … A wildcard value which matches any value may be
//! specified … indicated by the character `*`. To reduce the size of
//! the data which is saved in the trace file, any field value may be
//! prefixed with the discard character `#`. If an event record is
//! accepted by the filter, any fields with this value prefix will be
//! discarded." (§3.4, Figs. 3.3–3.4)
//!
//! A record is kept when **any** rule matches (each rule is a
//! template; a template matches when **all** its conditions hold). An
//! empty rule set keeps everything.

use crate::desc::{Descriptions, FieldValue};
use std::fmt;

/// Comparison operator of a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Gt => ">",
            Op::Le => "<=",
            Op::Ge => ">=",
        })
    }
}

/// Right-hand side of a condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// `*` — matches any value.
    Any,
    /// An integer literal, e.g. `10000`.
    Int(u64),
    /// A decimal prefix pattern, e.g. `1*` (matches `pid=1*`).
    Prefix(String),
    /// Another field's name, e.g. `peerName` in
    /// `sockName=peerName` — a field-to-field comparison.
    Field(String),
    /// Any other literal text, matched against the field's display
    /// form (so `destName=inet:1:1701` works).
    Text(String),
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Any => f.write_str("*"),
            Pattern::Int(v) => write!(f, "{v}"),
            Pattern::Prefix(p) => write!(f, "{p}*"),
            Pattern::Field(n) => f.write_str(n),
            Pattern::Text(t) => f.write_str(t),
        }
    }
}

/// One condition of a template: `field op pattern`, optionally with
/// the `#` discard prefix on the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Field name (header or body field; `type` is `traceType`).
    pub field: String,
    /// Comparison operator.
    pub op: Op,
    /// Right-hand side.
    pub pattern: Pattern,
    /// Whether the matched field is stripped from the saved record.
    pub discard: bool,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            self.field,
            self.op,
            if self.discard { "#" } else { "" },
            self.pattern
        )
    }
}

/// One template: all conditions must hold.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rule {
    /// The conjunctive conditions.
    pub conditions: Vec<Condition>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A parsed templates file: one rule per line; a record is kept when
/// any rule matches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Rules {
    /// The templates, in file order.
    pub rules: Vec<Rule>,
}

/// Error parsing a templates file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "templates line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuleParseError {}

/// Result of matching a record against the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Discard the record.
    Reject,
    /// Keep the record, stripping the named fields (from `#` values).
    Keep {
        /// Field names to strip from the saved record.
        discard_fields: Vec<String>,
    },
}

impl Rules {
    /// Parses a templates file: one rule per line, conditions
    /// comma-separated, e.g. `machine=0, type=1, pid=21*, size>=512`.
    /// Blank lines and `#`-comment lines (a `#` **starting** the line)
    /// are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`RuleParseError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Rules, RuleParseError> {
        let mut rules = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut conditions = Vec::new();
            for part in line.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                conditions.push(parse_condition(part).map_err(|m| RuleParseError {
                    line: lineno,
                    message: m,
                })?);
            }
            if conditions.is_empty() {
                return Err(RuleParseError {
                    line: lineno,
                    message: "empty rule".to_owned(),
                });
            }
            rules.push(Rule { conditions });
        }
        Ok(Rules { rules })
    }

    /// Matches a raw event record. With no rules at all, everything is
    /// kept unedited.
    pub fn verdict(&self, desc: &Descriptions, record: &[u8]) -> Verdict {
        if self.rules.is_empty() {
            return Verdict::Keep {
                discard_fields: Vec::new(),
            };
        }
        for rule in &self.rules {
            if let Some(discards) = match_rule(rule, desc, record) {
                return Verdict::Keep {
                    discard_fields: discards,
                };
            }
        }
        Verdict::Reject
    }
}

/// Parses a single condition like `cpuTime<10000`, `pid=#1*`, or
/// `sockName=peerName`.
fn parse_condition(s: &str) -> Result<Condition, String> {
    // Find the operator; check two-character ones first.
    let ops: &[(&str, Op)] = &[
        ("!=", Op::Ne),
        ("<=", Op::Le),
        (">=", Op::Ge),
        ("<", Op::Lt),
        (">", Op::Gt),
        ("=", Op::Eq),
    ];
    for (tok, op) in ops {
        if let Some(pos) = s.find(tok) {
            let field = s[..pos].trim();
            let mut value = s[pos + tok.len()..].trim();
            if field.is_empty() || value.is_empty() {
                return Err(format!("malformed condition `{s}`"));
            }
            let discard = value.starts_with('#');
            if discard {
                value = value[1..].trim();
                if value.is_empty() {
                    return Err(format!("discard prefix without value in `{s}`"));
                }
            }
            let pattern = parse_pattern(value);
            if matches!(pattern, Pattern::Prefix(_) | Pattern::Any)
                && !matches!(op, Op::Eq | Op::Ne)
            {
                return Err(format!(
                    "wildcard patterns only work with = and != in `{s}`"
                ));
            }
            return Ok(Condition {
                field: field.to_owned(),
                op: *op,
                pattern,
                discard,
            });
        }
    }
    Err(format!("no operator in condition `{s}`"))
}

fn parse_pattern(value: &str) -> Pattern {
    if value == "*" {
        return Pattern::Any;
    }
    if let Some(stripped) = value.strip_suffix('*') {
        if !stripped.is_empty() && stripped.chars().all(|c| c.is_ascii_digit()) {
            return Pattern::Prefix(stripped.to_owned());
        }
    }
    if let Ok(v) = value.parse::<u64>() {
        return Pattern::Int(v);
    }
    // A bare identifier that looks like a field name is a
    // field-to-field comparison; anything else is literal text.
    let is_ident = value.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if is_ident
        && value
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic())
    {
        Pattern::Field(value.to_owned())
    } else {
        Pattern::Text(value.to_owned())
    }
}

/// Returns the discard-field list if the rule matches, else `None`.
fn match_rule(rule: &Rule, desc: &Descriptions, record: &[u8]) -> Option<Vec<String>> {
    let mut discards = Vec::new();
    for cond in &rule.conditions {
        if !match_condition(cond, desc, record) {
            return None;
        }
        if cond.discard {
            discards.push(cond.field.clone());
        }
    }
    Some(discards)
}

fn match_condition(cond: &Condition, desc: &Descriptions, record: &[u8]) -> bool {
    let Some(value) = lookup(desc, record, &cond.field) else {
        return false; // field absent from this event type: no match
    };
    match &cond.pattern {
        Pattern::Any => matches!(cond.op, Op::Eq),
        Pattern::Int(rhs) => match &value {
            FieldValue::Int(lhs) => compare(cond.op, *lhs, *rhs),
            FieldValue::Bytes(_) => {
                // Numeric literal against a name field compares the
                // display form (the paper's `destName=228320140`).
                text_compare(cond.op, &value.to_string(), &rhs.to_string())
            }
        },
        Pattern::Prefix(pfx) => {
            let s = value.to_string();
            let hit = s.starts_with(pfx.as_str());
            if cond.op == Op::Ne {
                !hit
            } else {
                hit
            }
        }
        Pattern::Field(other) => {
            // Field-to-field comparison; if `other` is not a field of
            // this record, fall back to text comparison.
            match lookup(desc, record, other) {
                Some(rhs) => values_compare(cond.op, &value, &rhs),
                None => text_compare(cond.op, &value.to_string(), other),
            }
        }
        Pattern::Text(t) => text_compare(cond.op, &value.to_string(), t),
    }
}

/// Resolves a field, also accepting the alias `size` for `msgLength`
/// (the paper's Fig. 3.4 rule `size>=512` against send records) and
/// event names as `type` values.
fn lookup(desc: &Descriptions, record: &[u8], field: &str) -> Option<FieldValue> {
    if field == "size" {
        // `size` in rules means the message payload length, not the
        // record's own header size field.
        return desc.field(record, "msgLength");
    }
    desc.field(record, field)
}

fn compare(op: Op, lhs: u64, rhs: u64) -> bool {
    match op {
        Op::Eq => lhs == rhs,
        Op::Ne => lhs != rhs,
        Op::Lt => lhs < rhs,
        Op::Gt => lhs > rhs,
        Op::Le => lhs <= rhs,
        Op::Ge => lhs >= rhs,
    }
}

fn text_compare(op: Op, lhs: &str, rhs: &str) -> bool {
    match op {
        Op::Eq => lhs == rhs,
        Op::Ne => lhs != rhs,
        Op::Lt => lhs < rhs,
        Op::Gt => lhs > rhs,
        Op::Le => lhs <= rhs,
        Op::Ge => lhs >= rhs,
    }
}

fn values_compare(op: Op, lhs: &FieldValue, rhs: &FieldValue) -> bool {
    match (lhs, rhs) {
        (FieldValue::Int(a), FieldValue::Int(b)) => compare(op, *a, *b),
        _ => text_compare(op, &lhs.to_string(), &rhs.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_meter::{
        trace_type, MeterAccept, MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName,
    };

    fn record(machine: u16, cpu: u32, body: MeterBody) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: cpu,
                seq: 0,
                proc_time: 0,
                trace_type: body.trace_type(),
            },
            body,
        }
        .encode()
    }

    fn send(
        machine: u16,
        cpu: u32,
        pid: u32,
        sock: u32,
        len: u32,
        dest: Option<SockName>,
    ) -> Vec<u8> {
        record(
            machine,
            cpu,
            MeterBody::Send(MeterSendMsg {
                pid,
                pc: 0,
                sock,
                msg_length: len,
                dest_name: dest,
            }),
        )
    }

    fn desc() -> Descriptions {
        Descriptions::standard()
    }

    /// The first rule of Fig. 3.3: `machine=5, cpuTime<10000`.
    #[test]
    fn figure_3_3_first_rule() {
        let rules = Rules::parse("machine=5, cpuTime<10000\n").unwrap();
        let d = desc();
        let yes = send(5, 9_999, 1, 1, 1, None);
        let wrong_machine = send(4, 9_999, 1, 1, 1, None);
        let too_late = send(5, 10_000, 1, 1, 1, None);
        assert!(matches!(rules.verdict(&d, &yes), Verdict::Keep { .. }));
        assert_eq!(rules.verdict(&d, &wrong_machine), Verdict::Reject);
        assert_eq!(rules.verdict(&d, &too_late), Verdict::Reject);
    }

    /// The second rule of Fig. 3.3:
    /// `machine=0, type=1, sock=4, destName=228320140`.
    #[test]
    fn figure_3_3_second_rule() {
        let dest = SockName::inet(228_320_140 >> 16, (228_320_140 & 0xffff) as u16);
        let dest_str = dest.to_string();
        let rules =
            Rules::parse(&format!("machine=0, type=1, sock=4, destName={dest_str}\n")).unwrap();
        let d = desc();
        let yes = send(0, 1, 9, 4, 100, Some(dest.clone()));
        let no = send(0, 1, 9, 4, 100, Some(SockName::inet(1, 1)));
        assert!(matches!(rules.verdict(&d, &yes), Verdict::Keep { .. }));
        assert_eq!(rules.verdict(&d, &no), Verdict::Reject);
    }

    /// Fig. 3.4: `machine=#*, type=1, pid=1*, size>=512` — wildcard
    /// with discard, prefix pattern, and the `size` alias.
    #[test]
    fn figure_3_4_wildcard_prefix_discard() {
        let rules = Rules::parse("machine=#*, type=1, pid=1*, size>=512\n").unwrap();
        let d = desc();
        let yes = send(3, 1, 1_234, 1, 612, None);
        match rules.verdict(&d, &yes) {
            Verdict::Keep { discard_fields } => {
                assert_eq!(discard_fields, vec!["machine".to_owned()]);
            }
            Verdict::Reject => panic!("record should match"),
        }
        let wrong_pid = send(3, 1, 9_234, 1, 612, None);
        assert_eq!(rules.verdict(&d, &wrong_pid), Verdict::Reject);
        let too_small = send(3, 1, 1_234, 1, 511, None);
        assert_eq!(rules.verdict(&d, &too_small), Verdict::Reject);
    }

    /// Fig. 3.4: `type=8, sockName=peerName` — field-to-field equality
    /// on an accept record.
    #[test]
    fn figure_3_4_field_to_field() {
        let rules = Rules::parse("type=8, sockName=peerName\n").unwrap();
        let d = desc();
        let name = SockName::inet(1, 80);
        let same = record(
            0,
            0,
            MeterBody::Accept(MeterAccept {
                pid: 1,
                pc: 0,
                sock: 1,
                new_sock: 2,
                sock_name: Some(name.clone()),
                peer_name: Some(name.clone()),
            }),
        );
        let different = record(
            0,
            0,
            MeterBody::Accept(MeterAccept {
                pid: 1,
                pc: 0,
                sock: 1,
                new_sock: 2,
                sock_name: Some(name),
                peer_name: Some(SockName::inet(2, 81)),
            }),
        );
        assert!(matches!(rules.verdict(&d, &same), Verdict::Keep { .. }));
        assert_eq!(rules.verdict(&d, &different), Verdict::Reject);
        assert_eq!(record_type_of(&same), trace_type::ACCEPT);
    }

    fn record_type_of(r: &[u8]) -> u32 {
        Descriptions::record_type(r).unwrap()
    }

    #[test]
    fn any_rule_matching_keeps_the_record() {
        let rules = Rules::parse("machine=1\nmachine=2\n").unwrap();
        let d = desc();
        assert!(matches!(
            rules.verdict(&d, &send(2, 0, 1, 1, 1, None)),
            Verdict::Keep { .. }
        ));
        assert_eq!(
            rules.verdict(&d, &send(3, 0, 1, 1, 1, None)),
            Verdict::Reject
        );
    }

    #[test]
    fn empty_rules_keep_everything() {
        let rules = Rules::parse("").unwrap();
        assert!(matches!(
            rules.verdict(&desc(), &send(9, 9, 9, 9, 9, None)),
            Verdict::Keep { discard_fields } if discard_fields.is_empty()
        ));
    }

    #[test]
    fn missing_field_fails_the_condition() {
        // `destName` does not exist on a fork record.
        let rules = Rules::parse("destName=*\n").unwrap();
        let fork = record(
            0,
            0,
            MeterBody::Fork(dpm_meter::MeterFork {
                pid: 1,
                pc: 0,
                new_pid: 2,
            }),
        );
        assert_eq!(rules.verdict(&desc(), &fork), Verdict::Reject);
    }

    #[test]
    fn not_equal_and_bounds_operators() {
        let d = desc();
        let r = send(0, 500, 42, 7, 100, None);
        for (rule, expect) in [
            ("pid!=42", false),
            ("pid!=41", true),
            ("cpuTime>=500", true),
            ("cpuTime>500", false),
            ("cpuTime<=500", true),
            ("cpuTime<500", false),
        ] {
            let rules = Rules::parse(rule).unwrap();
            let got = matches!(rules.verdict(&d, &r), Verdict::Keep { .. });
            assert_eq!(got, expect, "rule `{rule}`");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Rules::parse("pid~3\n").is_err());
        assert!(Rules::parse("=5\n").is_err());
        assert!(Rules::parse("pid=\n").is_err());
        assert!(Rules::parse("pid=#\n").is_err());
        assert!(Rules::parse("pid>1*\n").is_err(), "prefix with ordering op");
        assert!(Rules::parse(",\n").is_err(), "empty rule");
        let err = Rules::parse("ok=1\npid~3\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comment_lines_are_ignored() {
        let rules = Rules::parse("# only sends\ntype=1\n").unwrap();
        assert_eq!(rules.rules.len(), 1);
    }

    #[test]
    fn display_round_trip() {
        let text = "machine=#*, type=1, pid=1*, size>=512";
        let rules = Rules::parse(text).unwrap();
        assert_eq!(rules.rules[0].to_string(), text);
    }
}
