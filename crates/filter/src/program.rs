//! The standard filter *process*.
//!
//! "Filter processes do not exist by default in the measurement tool.
//! The user must tell the control process to create a filter process.
//! … A standard filter is provided by the measurement tool. However,
//! given a few basic constraints, custom filters can be easily
//! written." (§3.3)
//!
//! The one basic constraint (§3.4) is that a filter must listen for
//! meter messages arriving over meter connections; this implementation
//! binds an Internet-domain stream socket at the port given in its
//! first argument, accepts one connection per metered process, and
//! forks a helper per connection (each meter connection is an
//! independent byte stream). Accepted records are appended to the
//! filter's log file.
//!
//! Program arguments: `<port> <logfile> [descriptions [templates]]`.
//! The descriptions and templates are read from files on the filter's
//! machine, defaulting to the standard descriptions and
//! keep-everything rules when the files are absent (the controller
//! installs real files; being lenient here keeps hand-rolled sessions
//! pleasant).

use crate::desc::Descriptions;
use crate::engine::FilterEngine;
use crate::rules::Rules;
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockType, SysError, SysResult};
use std::sync::Arc;

/// The program-registry name of the standard filter; the default
/// `filterfile` of the `filter` command is `/bin/filter` containing
/// `program:filter`.
pub const FILTER_PROGRAM: &str = "filter";

/// Registers the standard filter in the cluster's program registry
/// and installs `/bin/filter` on every machine, so
/// `addprocess`-style creation by file name works everywhere.
pub fn register_filter_program(cluster: &Arc<Cluster>) {
    cluster.register_program(FILTER_PROGRAM, filter_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/filter", FILTER_PROGRAM);
    }
}

/// The standard filter's program body.
///
/// # Errors
///
/// `EINVAL` for missing/garbled arguments; socket errors propagate;
/// runs until killed.
pub fn filter_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let port: u16 = args
        .first()
        .and_then(|a| a.parse().ok())
        .ok_or(SysError::Einval)?;
    let log_path = args.get(1).cloned().ok_or(SysError::Einval)?;
    let desc_path = args.get(2).cloned().unwrap_or_else(|| "descriptions".to_owned());
    let tmpl_path = args.get(3).cloned().unwrap_or_else(|| "templates".to_owned());

    let desc = match p.machine().fs().read_string(&desc_path) {
        Some(text) => Descriptions::parse(&text).map_err(|_| SysError::Einval)?,
        None => Descriptions::standard(),
    };
    let rules = match p.machine().fs().read_string(&tmpl_path) {
        Some(text) => Rules::parse(&text).map_err(|_| SysError::Einval)?,
        None => Rules::default(),
    };

    let listener = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(listener, BindTo::Port(port))?;
    p.listen(listener, 32)?;

    loop {
        let (conn, _peer) = p.accept(listener)?;
        let child_desc = desc.clone();
        let child_rules = rules.clone();
        let child_log = log_path.clone();
        p.fork_with(move |c| {
            let mut engine = FilterEngine::new(child_desc, child_rules);
            loop {
                let data = c.read(conn, 4096)?;
                if data.is_empty() {
                    break;
                }
                for line in engine.feed(&data) {
                    let mut bytes = line.into_bytes();
                    bytes.push(b'\n');
                    c.machine().fs().append(&child_log, &bytes);
                }
            }
            c.close(conn)?;
            Ok(())
        })?;
        // The parent's reference to the connection is the child's now.
        p.close(conn)?;
    }
}
