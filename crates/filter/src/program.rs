//! The standard filter *process*.
//!
//! "Filter processes do not exist by default in the measurement tool.
//! The user must tell the control process to create a filter process.
//! … A standard filter is provided by the measurement tool. However,
//! given a few basic constraints, custom filters can be easily
//! written." (§3.3)
//!
//! The one basic constraint (§3.4) is that a filter must listen for
//! meter messages arriving over meter connections; this implementation
//! binds an Internet-domain stream socket at the port given in its
//! first argument, accepts one connection per metered process, and
//! forks a reader per connection (each meter connection is an
//! independent byte stream). The readers feed a [`ShardedFilter`]
//! pipeline that fans the streams across worker threads; accepted
//! records are appended to the filter's log file in batches.
//!
//! Program arguments are the shared [`FilterArgs`] grammar — keyword
//! form `port=… log=… mode=store shards=4 role=aggregate upstream=…`,
//! with the legacy positional form `<port> <logfile> [descriptions
//! [templates [shards [logmode]]]]` still accepted (deprecated). The
//! descriptions and templates are read from files on the filter's
//! machine, defaulting to the standard descriptions and
//! keep-everything rules when the files are absent (the controller
//! installs real files; being lenient here keeps hand-rolled sessions
//! pleasant). `shards` defaults to 1, which reproduces the classic
//! single-engine filter exactly; `mode` is `text` (default — the
//! paper's rendered-line log at the log path) or `store` (accepted
//! records land raw in a `dpm-logstore` binary store whose segment
//! files live under the log-path prefix).
//!
//! The `role` key selects the filter's place in the tree: `leaf`
//! (default — the classic standalone filter below), `edge` (see
//! [`crate::prefilter`]) or `aggregate` (see [`crate::tree`]).

use crate::args::{FilterArgs, FilterRole};
use crate::desc::Descriptions;
use crate::prefilter::run_edge;
use crate::rules::Rules;
use crate::shard::{IngestClock, ShardLog, ShardSink, ShardedFilter, DEFAULT_BATCH_BYTES};
use crate::store::SimFsBackend;
use crate::tree::run_aggregate;
use dpm_logstore::{seal_manifest_hook, Backend, LogStore, StoreConfig};
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockType, SysError, SysResult};
use std::sync::Arc;

/// The program-registry name of the standard filter; the default
/// `filterfile` of the `filter` command is `/bin/filter` containing
/// `program:filter`.
pub const FILTER_PROGRAM: &str = "filter";

/// Registers the standard filter in the cluster's program registry
/// and installs `/bin/filter` on every machine, so
/// `addprocess`-style creation by file name works everywhere.
pub fn register_filter_program(cluster: &Arc<Cluster>) {
    cluster.register_program(FILTER_PROGRAM, filter_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/filter", FILTER_PROGRAM);
    }
}

/// The standard filter's program body.
///
/// # Errors
///
/// `EINVAL` for missing/garbled arguments; socket errors propagate;
/// runs until killed.
pub fn filter_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let args = FilterArgs::parse(&args).map_err(|_| SysError::Einval)?;

    let desc = match p.machine().fs().read_string(&args.descriptions) {
        Some(text) => Descriptions::parse(&text).map_err(|_| SysError::Einval)?,
        None => Descriptions::standard(),
    };
    let rules = match p.machine().fs().read_string(&args.templates) {
        Some(text) => Rules::parse(&text).map_err(|_| SysError::Einval)?,
        None => Rules::default(),
    };

    match args.role {
        FilterRole::Edge => run_edge(&p, &args, desc, rules),
        FilterRole::Aggregate => run_aggregate(&p, &args, desc, rules),
        FilterRole::Leaf => run_leaf(&p, &args, desc, rules),
    }
}

/// The classic standalone (`role=leaf`) filter: meter connections in,
/// a sharded selection pipeline, a local log out.
fn run_leaf(p: &Proc, args: &FilterArgs, desc: Descriptions, rules: Rules) -> SysResult<()> {
    let shards = args.shards.max(1) as usize;
    let log_path = args.logfile.clone();
    // Shard workers are plain OS threads with no Proc of their own;
    // hand them this machine's clock so they can stamp the
    // emit→ingest staleness histogram in the meter header's own
    // millisecond domain.
    let ingest_clock: IngestClock = {
        let m = Arc::clone(p.machine());
        Arc::new(move || m.clock().now_ms())
    };

    // The shard workers are real threads; each log destination writes
    // to the filter machine's file system. Text batches end on line
    // boundaries and store flushes end on frame boundaries, and
    // `SimFs::append` is atomic per call, so output from different
    // shards never interleaves mid-line (or mid-frame).
    let pipeline = if args.store_log {
        // `log=store`: segments live under the `<logfile>` prefix on
        // this machine's fs; every shard writer shares one store (one
        // global seq space, one monotonic clock).
        let backend: Arc<dyn Backend> = Arc::new(SimFsBackend::new(Arc::clone(p.machine())));
        let mut store = LogStore::open(Arc::clone(&backend), &log_path, StoreConfig::default());
        // Publish every segment seal into the store's SEALS manifest,
        // so live consumers (controller `watch`) see rotations as they
        // happen instead of probing for them.
        store.set_seal_hook(seal_manifest_hook(backend, &log_path));
        Arc::new(ShardedFilter::with_logs_clocked(
            shards,
            desc,
            rules,
            DEFAULT_BATCH_BYTES,
            Some(ingest_clock),
            |shard| ShardLog::Store(Box::new(store.writer(shard as u16))),
        ))
    } else {
        Arc::new(ShardedFilter::with_logs_clocked(
            shards,
            desc,
            rules,
            DEFAULT_BATCH_BYTES,
            Some(ingest_clock),
            |_shard| -> ShardLog {
                let writer = p.clone();
                let path = log_path.clone();
                ShardLog::Text(Box::new(move |batch: &[u8]| {
                    writer.machine().fs().append(&path, batch)
                }) as ShardSink)
            },
        ))
    };

    let listener = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(listener, BindTo::Port(args.port))?;
    p.listen(listener, 32)?;

    loop {
        let (conn, _peer) = p.accept(listener)?;
        let handle = pipeline.open_conn();
        let child_pipeline = Arc::clone(&pipeline);
        p.fork_with(move |c| {
            loop {
                let data = c.read(conn, 4096)?;
                if data.is_empty() {
                    break;
                }
                handle.feed(data);
            }
            handle.close();
            // EOF means the metered process is done; make its records
            // durable before the reader exits so `getlog` sees them.
            child_pipeline.flush();
            c.close(conn)?;
            Ok(())
        })?;
        // The parent's reference to the connection is the child's now.
        p.close(conn)?;
    }
}
