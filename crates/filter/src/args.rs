//! The filter program's argument grammar, shared by every caller.
//!
//! Historically the standard filter took positional arguments —
//! `<port> <logfile> [descriptions [templates [shards [logmode]]]]` —
//! and each new capability meant another trailing field that every
//! caller (the meterdaemon's `CreateFilter` handler, the controller's
//! `filter` command, hand-rolled sessions) had to get in the right
//! order. The filter tree work replaces that with one keyword form,
//!
//! ```text
//! port=4000 log=/usr/tmp/log.f1 mode=store shards=4 role=aggregate
//! upstream=blue:4001
//! ```
//!
//! parsed here in exactly one place. The legacy positional form is
//! still accepted (deprecated) so pre-upgrade scripts keep working;
//! [`FilterArgs::parse`] auto-detects which form it was given.

use std::fmt;

/// What position a filter occupies in the filter tree.
///
/// * [`FilterRole::Leaf`] — the classic standalone filter of §3.3:
///   accepts meter connections, applies selection, logs locally.
/// * [`FilterRole::Edge`] — a lightweight pre-filter co-located with a
///   meterdaemon: applies selection to meter messages *before* they
///   leave the machine and forwards only accepted records upstream.
///   It keeps no log of its own.
/// * [`FilterRole::Aggregate`] — an interior/root node: accepts record
///   streams from children (edges or other filters), merges them by
///   `(machine, pid, seq)` and writes one deterministic log/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterRole {
    /// Standalone filter: meter connections in, local log out.
    #[default]
    Leaf,
    /// Machine-local pre-filter: selection before the network.
    Edge,
    /// Tree node: merges child record streams into one log.
    Aggregate,
}

impl FilterRole {
    /// The keyword-argument spelling (`role=<this>`).
    #[must_use]
    pub fn as_arg(self) -> &'static str {
        match self {
            FilterRole::Leaf => "leaf",
            FilterRole::Edge => "edge",
            FilterRole::Aggregate => "aggregate",
        }
    }

    /// Parses the keyword-argument spelling.
    #[must_use]
    pub fn from_arg(s: &str) -> Option<FilterRole> {
        match s {
            "leaf" => Some(FilterRole::Leaf),
            "edge" => Some(FilterRole::Edge),
            "aggregate" => Some(FilterRole::Aggregate),
            _ => None,
        }
    }
}

impl fmt::Display for FilterRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_arg())
    }
}

/// An argument-parse failure, phrased for the human who typed it: the
/// message always names the offending key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(String);

impl ArgsError {
    fn new(msg: impl Into<String>) -> ArgsError {
        ArgsError(msg.into())
    }
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

/// The keys the keyword form understands, in canonical order.
pub const FILTER_ARG_KEYS: &[&str] = &[
    "port",
    "log",
    "desc",
    "templates",
    "shards",
    "mode",
    "role",
    "upstream",
];

/// Splits one `key=value` token; `None` when there is no `=`.
#[must_use]
pub fn split_kv(token: &str) -> Option<(&str, &str)> {
    token.split_once('=')
}

/// Parses `host:port` (as used by `upstream=`).
///
/// # Errors
///
/// When the colon or a valid non-zero port is missing.
pub fn parse_host_port(s: &str) -> Result<(String, u16), ArgsError> {
    let bad = || {
        ArgsError::new(format!(
            "bad value '{s}' for key 'upstream' (want host:port)"
        ))
    };
    let (host, port) = s.rsplit_once(':').ok_or_else(bad)?;
    let port: u16 = port.parse().map_err(|_| bad())?;
    if host.is_empty() || port == 0 {
        return Err(bad());
    }
    Ok((host.to_owned(), port))
}

/// The standard filter's parsed configuration — one struct, one
/// parser, used identically by the filter program, the meterdaemon's
/// `CreateFilter` handler, and the controller's `filter` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterArgs {
    /// Port the filter listens on for meter/record connections.
    pub port: u16,
    /// Log file (text mode) or store directory prefix (store mode).
    /// Empty for edges, which keep no log.
    pub logfile: String,
    /// Path of the descriptions file on the filter's machine.
    pub descriptions: String,
    /// Path of the selection-templates file on the filter's machine.
    pub templates: String,
    /// Number of shard workers (leaf filters; ≥ 1).
    pub shards: u32,
    /// `true` for the binary log store, `false` for the text log.
    pub store_log: bool,
    /// Position in the filter tree.
    pub role: FilterRole,
    /// Upstream `host:port` for edges (and optional for aggregates
    /// that forward further up); empty when there is no upstream.
    pub upstream: String,
}

impl Default for FilterArgs {
    fn default() -> FilterArgs {
        FilterArgs {
            port: 0,
            logfile: String::new(),
            descriptions: "descriptions".to_owned(),
            templates: "templates".to_owned(),
            shards: 1,
            store_log: false,
            role: FilterRole::Leaf,
            upstream: String::new(),
        }
    }
}

impl FilterArgs {
    /// Parses program arguments, auto-detecting the keyword form (any
    /// token containing `=`) versus the legacy positional form.
    ///
    /// # Errors
    ///
    /// A message naming the bad key (or position) and what a valid
    /// value looks like.
    pub fn parse(args: &[String]) -> Result<FilterArgs, ArgsError> {
        if args.iter().any(|a| a.contains('=')) {
            FilterArgs::parse_keywords(args)
        } else {
            FilterArgs::parse_positional(args)
        }
    }

    fn parse_keywords(args: &[String]) -> Result<FilterArgs, ArgsError> {
        let mut out = FilterArgs::default();
        for token in args {
            let Some((key, value)) = split_kv(token) else {
                return Err(ArgsError::new(format!(
                    "positional argument '{token}' mixed into keyword form (use key=value)"
                )));
            };
            let bad = |expect: &str| {
                ArgsError::new(format!(
                    "bad value '{value}' for key '{key}' (want {expect})"
                ))
            };
            match key {
                "port" => {
                    out.port = value
                        .parse()
                        .ok()
                        .filter(|&p| p != 0)
                        .ok_or_else(|| bad("a non-zero port number"))?;
                }
                "log" => out.logfile = value.to_owned(),
                "desc" => out.descriptions = value.to_owned(),
                "templates" => out.templates = value.to_owned(),
                "shards" => {
                    out.shards = value
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| bad("a shard count >= 1"))?;
                }
                "mode" => {
                    out.store_log = match value {
                        "text" => false,
                        "store" => true,
                        _ => return Err(bad("text|store")),
                    };
                }
                "role" => {
                    out.role =
                        FilterRole::from_arg(value).ok_or_else(|| bad("leaf|edge|aggregate"))?;
                }
                "upstream" => {
                    parse_host_port(value)?;
                    out.upstream = value.to_owned();
                }
                _ => {
                    return Err(ArgsError::new(format!(
                        "unknown key '{key}' (valid keys: {})",
                        FILTER_ARG_KEYS.join(", ")
                    )));
                }
            }
        }
        out.validate()?;
        Ok(out)
    }

    /// The deprecated positional form:
    /// `<port> <logfile> [desc [templates [shards [text|store]]]]`.
    fn parse_positional(args: &[String]) -> Result<FilterArgs, ArgsError> {
        let mut out = FilterArgs {
            port: args
                .first()
                .and_then(|a| a.parse().ok())
                .filter(|&p| p != 0)
                .ok_or_else(|| ArgsError::new("missing or bad <port> (positional argument 1)"))?,
            logfile: args
                .get(1)
                .cloned()
                .ok_or_else(|| ArgsError::new("missing <logfile> (positional argument 2)"))?,
            ..FilterArgs::default()
        };
        if let Some(d) = args.get(2) {
            out.descriptions = d.clone();
        }
        if let Some(t) = args.get(3) {
            out.templates = t.clone();
        }
        if let Some(s) = args.get(4) {
            out.shards = s
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| ArgsError::new(format!("bad shard count '{s}' (want >= 1)")))?;
        }
        match args.get(5).map(String::as_str) {
            None | Some("text") => {}
            Some("store") => out.store_log = true,
            Some(other) => {
                return Err(ArgsError::new(format!(
                    "bad log mode '{other}' (want text|store)"
                )));
            }
        }
        if args.len() > 6 {
            return Err(ArgsError::new(format!(
                "unexpected positional argument '{}' (the positional form ends at the log mode; \
                 use key=value for tree options)",
                args[6]
            )));
        }
        out.validate()?;
        Ok(out)
    }

    /// Cross-field checks shared by both forms.
    ///
    /// # Errors
    ///
    /// When the combination is unusable regardless of spelling.
    pub fn validate(&self) -> Result<(), ArgsError> {
        if self.port == 0 {
            return Err(ArgsError::new("missing key 'port' (a filter must listen)"));
        }
        match self.role {
            FilterRole::Edge => {
                if self.upstream.is_empty() {
                    return Err(ArgsError::new(
                        "role=edge requires key 'upstream' (host:port of the parent filter)",
                    ));
                }
            }
            FilterRole::Leaf | FilterRole::Aggregate => {
                if self.logfile.is_empty() {
                    return Err(ArgsError::new(format!(
                        "role={} requires key 'log' (where accepted records go)",
                        self.role
                    )));
                }
            }
        }
        if !self.upstream.is_empty() {
            parse_host_port(&self.upstream)?;
        }
        Ok(())
    }

    /// The upstream address parsed, when one is set.
    #[must_use]
    pub fn upstream_addr(&self) -> Option<(String, u16)> {
        if self.upstream.is_empty() {
            None
        } else {
            parse_host_port(&self.upstream).ok()
        }
    }

    /// Renders the canonical keyword form — the exact argument vector
    /// the meterdaemon passes when spawning the filter program.
    #[must_use]
    pub fn to_args(&self) -> Vec<String> {
        let mut out = vec![format!("port={}", self.port)];
        if !self.logfile.is_empty() {
            out.push(format!("log={}", self.logfile));
        }
        out.push(format!("desc={}", self.descriptions));
        out.push(format!("templates={}", self.templates));
        out.push(format!("shards={}", self.shards));
        out.push(format!(
            "mode={}",
            if self.store_log { "store" } else { "text" }
        ));
        if self.role != FilterRole::Leaf {
            out.push(format!("role={}", self.role));
        }
        if !self.upstream.is_empty() {
            out.push(format!("upstream={}", self.upstream));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn keyword_form_parses_every_key() {
        let a = FilterArgs::parse(&v(&[
            "port=4000",
            "log=/usr/tmp/log.f1",
            "desc=d",
            "templates=t",
            "shards=4",
            "mode=store",
            "role=aggregate",
            "upstream=blue:4001",
        ]))
        .unwrap();
        assert_eq!(a.port, 4000);
        assert_eq!(a.logfile, "/usr/tmp/log.f1");
        assert_eq!(a.descriptions, "d");
        assert_eq!(a.templates, "t");
        assert_eq!(a.shards, 4);
        assert!(a.store_log);
        assert_eq!(a.role, FilterRole::Aggregate);
        assert_eq!(a.upstream_addr(), Some(("blue".to_owned(), 4001)));
    }

    #[test]
    fn legacy_positional_form_still_parses() {
        let a = FilterArgs::parse(&v(&["4600", "/usr/tmp/log.text", "descriptions"])).unwrap();
        assert_eq!(a.port, 4600);
        assert_eq!(a.logfile, "/usr/tmp/log.text");
        assert_eq!(a.shards, 1);
        assert!(!a.store_log);
        assert_eq!(a.role, FilterRole::Leaf);

        let b = FilterArgs::parse(&v(&["4601", "L", "d", "t", "3", "store"])).unwrap();
        assert_eq!(b.shards, 3);
        assert!(b.store_log);
    }

    #[test]
    fn errors_name_the_bad_key() {
        let e = FilterArgs::parse(&v(&["port=4000", "log=x", "rolle=edge"])).unwrap_err();
        assert!(e.to_string().contains("unknown key 'rolle'"), "{e}");
        assert!(e.to_string().contains("valid keys"), "{e}");

        let e = FilterArgs::parse(&v(&["port=zero", "log=x"])).unwrap_err();
        assert!(e.to_string().contains("key 'port'"), "{e}");

        let e = FilterArgs::parse(&v(&["port=4000", "log=x", "mode=binary"])).unwrap_err();
        assert!(e.to_string().contains("key 'mode'"), "{e}");

        let e = FilterArgs::parse(&v(&["port=4000", "log=x", "upstream=nocolon"])).unwrap_err();
        assert!(e.to_string().contains("key 'upstream'"), "{e}");
    }

    #[test]
    fn cross_field_validation() {
        // An edge needs an upstream…
        let e = FilterArgs::parse(&v(&["port=4000", "role=edge"])).unwrap_err();
        assert!(e.to_string().contains("upstream"), "{e}");
        // …but no log.
        let a = FilterArgs::parse(&v(&["port=4000", "role=edge", "upstream=blue:4001"])).unwrap();
        assert!(a.logfile.is_empty());
        // Leaves and aggregates need a log.
        let e = FilterArgs::parse(&v(&["port=4000"])).unwrap_err();
        assert!(e.to_string().contains("'log'"), "{e}");
        let e = FilterArgs::parse(&v(&["port=4000", "role=aggregate"])).unwrap_err();
        assert!(e.to_string().contains("'log'"), "{e}");
    }

    #[test]
    fn canonical_args_round_trip() {
        for args in [
            v(&["port=4000", "log=x", "mode=store", "shards=2"]),
            v(&["port=4001", "role=edge", "upstream=blue:4000"]),
            v(&["port=4002", "log=y", "role=aggregate", "upstream=hub:9"]),
            v(&["4600", "L", "d", "t", "3", "store"]),
        ] {
            let a = FilterArgs::parse(&args).unwrap();
            let b = FilterArgs::parse(&a.to_args()).unwrap();
            assert_eq!(a, b, "canonical form of {args:?} re-parses identically");
        }
    }

    #[test]
    fn mixed_forms_are_rejected() {
        let e = FilterArgs::parse(&v(&["4000", "port=4000"])).unwrap_err();
        assert!(e.to_string().contains("positional argument '4000'"), "{e}");
    }
}
