//! The sharded filter pipeline: fan meter connections across workers.
//!
//! One filter process may be the target of many meter connections —
//! every metered process on a machine streams its event records to the
//! same filter (§3.3). A single [`FilterEngine`] handles that fine
//! until record volume grows; [`ShardedFilter`] scales the hot path by
//! fanning connections across `N` worker threads.
//!
//! Design points:
//!
//! * **One engine per connection.** Reassembly state is inherently
//!   per-stream (a record straddles chunks *of its own connection*),
//!   so each worker keeps an independent [`FilterEngine`] per
//!   connection it owns. Connections are assigned to shards round
//!   robin at [`ShardedFilter::open_conn`] time and never migrate,
//!   which keeps per-connection record order intact.
//! * **Per-shard statistics.** Each worker publishes its counters to a
//!   shard-local set of atomics after every message;
//!   [`ShardedFilter::snapshot`] merges them without stopping the
//!   pipeline.
//! * **Batched log writes.** Kept records are rendered into a
//!   shard-local buffer and handed to the shard's sink in batches
//!   (threshold [`DEFAULT_BATCH_BYTES`]) rather than line by line.
//!   Batches always end on a line boundary. A shard flushes when its
//!   queue goes idle, when a connection closes, and at shutdown, so
//!   logs stay fresh for `getlog` without per-line write amplification.
//!
//! Determinism: a shard serving one connection produces byte-identical
//! sink output to a lone [`FilterEngine`] fed the same stream — the
//! sharding layer adds no transformation, only transport. (Verified by
//! a test below and by `tests/shard_pipeline.rs`.)

use crate::desc::Descriptions;
use crate::engine::{FilterEngine, FilterStats, RecordView};
use crate::log::LogRecord;
use crate::rules::Rules;
use dpm_logstore::SegmentWriter;
use dpm_telemetry::{Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The ingesting side's clock, for the emit→ingest staleness readout:
/// returns "now" in the same machine-local milliseconds the meter
/// header's `cpu_time` is stamped in. `None` (library/test use, where
/// there is no machine) skips the staleness histogram.
pub type IngestClock = Arc<dyn Fn() -> u32 + Send + Sync>;

/// Bytes of rendered log lines a shard accumulates before writing a
/// batch to its sink (it also flushes on idle, close, and shutdown).
pub const DEFAULT_BATCH_BYTES: usize = 8 * 1024;

/// A shard's log writer: receives whole batches of rendered lines.
pub type ShardSink = Box<dyn FnMut(&[u8]) + Send>;

/// Where one shard's kept records go.
///
/// * [`ShardLog::Text`] — rendered log lines, batched in the worker
///   and handed to the sink (the classic §3.4 text log).
/// * [`ShardLog::Store`] — raw wire records appended to a binary
///   log-store [`SegmentWriter`]; batching is the writer's own group
///   commit, and the worker drives `flush()` on idle/close/shutdown
///   so the two modes share one freshness discipline.
///
/// (The writer is boxed: a `SegmentWriter` carries its own batch and
/// index state and would otherwise dwarf the text variant.)
pub enum ShardLog {
    /// Batched rendered-text lines.
    Text(ShardSink),
    /// Raw records into the binary log store.
    Store(Box<SegmentWriter>),
}

/// One shard's logging state: the destination plus the text batch
/// buffer (unused in store mode — the store batches internally).
struct ShardLogger {
    log: ShardLog,
    batch: Vec<u8>,
    batch_bytes: usize,
}

impl ShardLogger {
    /// Writes one kept record to the shard's log.
    fn write(&mut self, view: RecordView<'_>, rec: &LogRecord) {
        match &mut self.log {
            ShardLog::Text(_) => {
                writeln!(self.batch, "{rec}").expect("write to Vec");
                if self.batch.len() >= self.batch_bytes {
                    self.flush();
                }
            }
            ShardLog::Store(writer) => {
                writer.append(view.bytes());
            }
        }
    }

    /// Flushes buffered output to the destination.
    fn flush(&mut self) {
        match &mut self.log {
            ShardLog::Text(sink) => {
                if !self.batch.is_empty() {
                    sink(&self.batch);
                    self.batch.clear();
                }
            }
            ShardLog::Store(writer) => writer.flush(),
        }
    }
}

/// Messages from connection feeders to shard workers.
enum Msg {
    /// Bytes read from one meter connection.
    Data { conn: u64, bytes: Vec<u8> },
    /// The connection hit EOF or was closed.
    Close { conn: u64 },
    /// Flush the batch buffer and acknowledge.
    Flush(Sender<()>),
}

/// Lock-free counters one worker publishes for its shard.
#[derive(Default)]
struct ShardCounters {
    seen: AtomicU64,
    kept: AtomicU64,
    rejected: AtomicU64,
    duplicates: AtomicU64,
    garbage_bytes: AtomicU64,
}

impl ShardCounters {
    fn publish(&self, s: FilterStats) {
        self.seen.store(s.seen, Ordering::Relaxed);
        self.kept.store(s.kept, Ordering::Relaxed);
        self.rejected.store(s.rejected, Ordering::Relaxed);
        self.duplicates.store(s.duplicates, Ordering::Relaxed);
        self.garbage_bytes.store(s.garbage_bytes, Ordering::Relaxed);
    }

    fn load(&self) -> FilterStats {
        FilterStats {
            seen: self.seen.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            garbage_bytes: self.garbage_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A handle for feeding one meter connection's bytes into the
/// pipeline. Clone it freely; all clones refer to the same stream.
///
/// Feeds from a single reader arrive at the owning shard in order, so
/// per-connection record order is preserved end to end.
#[derive(Clone)]
pub struct ConnHandle {
    conn: u64,
    shard: usize,
    tx: Sender<Msg>,
    /// The owning shard's queue-depth gauge: feeds increment it, the
    /// worker decrements as it drains.
    depth: Arc<Gauge>,
}

impl ConnHandle {
    /// The shard this connection was assigned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Feeds a chunk of this connection's stream to its shard.
    /// Silently drops data after the pipeline has shut down.
    pub fn feed(&self, bytes: Vec<u8>) {
        if self
            .tx
            .send(Msg::Data {
                conn: self.conn,
                bytes,
            })
            .is_ok()
        {
            self.depth.add(1);
        }
    }

    /// Marks the stream finished: the shard retires the connection's
    /// engine (folding its stats into the shard totals) and flushes.
    pub fn close(self) {
        let _ = self.tx.send(Msg::Close { conn: self.conn });
    }
}

/// A pool of filter workers fanning meter connections across threads.
///
/// ```
/// use dpm_filter::{Descriptions, Rules, ShardedFilter};
/// use std::sync::{Arc, Mutex};
///
/// let logs: Vec<_> = (0..2).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
/// let sinks = logs.clone();
/// let filter = ShardedFilter::new(2, Descriptions::standard(), Rules::default(),
///     move |shard| {
///         let log = sinks[shard].clone();
///         Box::new(move |batch: &[u8]| log.lock().unwrap().extend_from_slice(batch))
///     });
/// let conn = filter.open_conn();
/// conn.feed(b"not a meter record".to_vec());
/// conn.close();
/// filter.flush();
/// assert_eq!(filter.snapshot().kept, 0);
/// ```
pub struct ShardedFilter {
    senders: Vec<Sender<Msg>>,
    workers: Vec<JoinHandle<()>>,
    counters: Vec<Arc<ShardCounters>>,
    depths: Vec<Arc<Gauge>>,
    next_conn: AtomicU64,
}

/// Per-shard self-telemetry handles shared by feeders and the worker.
struct ShardTelemetry {
    /// Messages queued but not yet drained by the worker.
    depth: Arc<Gauge>,
    /// Bytes discarded while resynchronizing on garbage input.
    resync_bytes: Arc<Counter>,
    /// Emit→ingest staleness, machine-local milliseconds (only when an
    /// [`IngestClock`] was supplied).
    staleness: Option<(Arc<Histogram>, IngestClock)>,
}

impl ShardTelemetry {
    fn register(shard: usize, clock: Option<&IngestClock>) -> ShardTelemetry {
        let r = dpm_telemetry::registry();
        let label = format!("s{shard}");
        ShardTelemetry {
            depth: r.gauge("filter", "queue_depth", &label),
            resync_bytes: r.counter("filter", "resync_bytes", &label),
            staleness: clock.map(|c| {
                (
                    r.histogram("e2e", "emit_to_ingest_ms", &label),
                    Arc::clone(c),
                )
            }),
        }
    }
}

impl ShardedFilter {
    /// Spawns `shards` worker threads. `make_sink` is called once per
    /// shard (with the shard index) to build that shard's log writer.
    pub fn new<F>(shards: usize, desc: Descriptions, rules: Rules, make_sink: F) -> ShardedFilter
    where
        F: FnMut(usize) -> ShardSink,
    {
        ShardedFilter::with_batch_bytes(shards, desc, rules, DEFAULT_BATCH_BYTES, make_sink)
    }

    /// [`ShardedFilter::new`] with an explicit batch threshold
    /// (`batch_bytes = 0` writes every record immediately).
    pub fn with_batch_bytes<F>(
        shards: usize,
        desc: Descriptions,
        rules: Rules,
        batch_bytes: usize,
        mut make_sink: F,
    ) -> ShardedFilter
    where
        F: FnMut(usize) -> ShardSink,
    {
        ShardedFilter::with_logs(shards, desc, rules, batch_bytes, |shard| {
            ShardLog::Text(make_sink(shard))
        })
    }

    /// The general constructor: `make_log` builds each shard's
    /// destination, which may be a text sink or a binary log-store
    /// writer (see [`ShardLog`]). `batch_bytes` governs text batching
    /// only; store writers batch via their own group-commit config.
    pub fn with_logs<F>(
        shards: usize,
        desc: Descriptions,
        rules: Rules,
        batch_bytes: usize,
        make_log: F,
    ) -> ShardedFilter
    where
        F: FnMut(usize) -> ShardLog,
    {
        ShardedFilter::with_logs_clocked(shards, desc, rules, batch_bytes, None, make_log)
    }

    /// [`ShardedFilter::with_logs`] plus the ingesting machine's clock,
    /// which turns on the per-record emit→ingest staleness histogram
    /// (see [`IngestClock`]).
    pub fn with_logs_clocked<F>(
        shards: usize,
        desc: Descriptions,
        rules: Rules,
        batch_bytes: usize,
        clock: Option<IngestClock>,
        mut make_log: F,
    ) -> ShardedFilter
    where
        F: FnMut(usize) -> ShardLog,
    {
        assert!(shards > 0, "a sharded filter needs at least one shard");
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut counters = Vec::with_capacity(shards);
        let mut depths = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel();
            let ctrs = Arc::new(ShardCounters::default());
            let log = make_log(shard);
            let tm = ShardTelemetry::register(shard, clock.as_ref());
            depths.push(Arc::clone(&tm.depth));
            let worker_desc = desc.clone();
            let worker_rules = rules.clone();
            let worker_ctrs = Arc::clone(&ctrs);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("filter-shard-{shard}"))
                    .spawn(move || {
                        shard_worker(
                            rx,
                            worker_desc,
                            worker_rules,
                            log,
                            worker_ctrs,
                            batch_bytes,
                            tm,
                        )
                    })
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            counters.push(ctrs);
        }
        ShardedFilter {
            senders,
            workers,
            counters,
            depths,
            next_conn: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Registers a new meter connection, assigning it to a shard
    /// round robin.
    pub fn open_conn(&self) -> ConnHandle {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let shard = (conn as usize) % self.senders.len();
        ConnHandle {
            conn,
            shard,
            tx: self.senders[shard].clone(),
            depth: Arc::clone(&self.depths[shard]),
        }
    }

    /// One shard's counters, merged over its live and closed
    /// connections (as of its last processed message).
    pub fn shard_stats(&self, shard: usize) -> FilterStats {
        self.counters[shard].load()
    }

    /// Pipeline-wide counters: the merge of every shard's stats.
    pub fn snapshot(&self) -> FilterStats {
        self.counters
            .iter()
            .fold(FilterStats::default(), |acc, c| acc.merge(&c.load()))
    }

    /// Blocks until every shard has drained its queue and flushed its
    /// batch buffer to its sink.
    pub fn flush(&self) {
        let mut acks = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(Msg::Flush(ack_tx)).is_ok() {
                acks.push(ack_rx);
            }
        }
        for ack in acks {
            let _ = ack.recv();
        }
    }
}

impl Drop for ShardedFilter {
    /// Shuts the pipeline down: disconnects the queues and joins the
    /// workers, which flush their remaining batches on the way out.
    /// Outstanding [`ConnHandle`] clones keep their shard's queue
    /// alive, so drop them first (or lines fed after this point are
    /// lost when the process exits).
    fn drop(&mut self) {
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The body of one shard worker thread.
fn shard_worker(
    rx: Receiver<Msg>,
    desc: Descriptions,
    rules: Rules,
    log: ShardLog,
    counters: Arc<ShardCounters>,
    batch_bytes: usize,
    tm: ShardTelemetry,
) {
    let mut engines: HashMap<u64, FilterEngine> = HashMap::new();
    let mut logger = ShardLogger {
        log,
        batch: Vec::new(),
        batch_bytes,
    };
    // Stats of connections already closed and retired.
    let mut retired = FilterStats::default();
    // Garbage bytes already credited to the resync counter.
    let mut last_garbage = 0u64;

    loop {
        // Drain eagerly; flush the partial batch only when idle so a
        // busy shard amortizes writes and a quiet one stays fresh.
        let msg = match rx.try_recv() {
            Ok(m) => m,
            Err(TryRecvError::Empty) => {
                logger.flush();
                match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        match msg {
            Msg::Data { conn, bytes } => {
                tm.depth.add(-1);
                let engine = engines
                    .entry(conn)
                    .or_insert_with(|| FilterEngine::new(desc.clone(), rules.clone()));
                engine.feed_records(&bytes, &mut |view, rec: LogRecord| {
                    if let Some((hist, clock)) = &tm.staleness {
                        hist.record(u64::from(clock().saturating_sub(view.cpu_time())));
                    }
                    logger.write(view, &rec);
                });
            }
            Msg::Close { conn } => {
                if let Some(engine) = engines.remove(&conn) {
                    retired = retired.merge(&engine.stats());
                }
                logger.flush();
            }
            Msg::Flush(ack) => {
                logger.flush();
                let _ = ack.send(());
                continue; // counters unchanged
            }
        }
        let live = engines
            .values()
            .fold(retired, |acc, e| acc.merge(&e.stats()));
        tm.resync_bytes
            .add(live.garbage_bytes.saturating_sub(last_garbage));
        last_garbage = last_garbage.max(live.garbage_bytes);
        counters.publish(live);
    }
    logger.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
    use std::sync::Mutex;

    fn send(machine: u16, len: u32) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time: 1,
                seq: 0,
                proc_time: 0,
                trace_type: dpm_meter::trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid: 1,
                pc: 0,
                sock: 2,
                msg_length: len,
                dest_name: Some(SockName::inet(0, 9)),
            }),
        }
        .encode()
    }

    #[allow(clippy::type_complexity)]
    fn capture_sinks(n: usize) -> (Vec<Arc<Mutex<Vec<u8>>>>, impl FnMut(usize) -> ShardSink) {
        let logs: Vec<Arc<Mutex<Vec<u8>>>> =
            (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        let for_factory = logs.clone();
        let factory = move |shard: usize| -> ShardSink {
            let log = Arc::clone(&for_factory[shard]);
            Box::new(move |batch: &[u8]| log.lock().unwrap().extend_from_slice(batch))
        };
        (logs, factory)
    }

    /// Acceptance: four shards, four connections — each shard's log
    /// content is byte-identical to a single engine fed that
    /// connection's stream.
    #[test]
    fn four_shards_match_single_engines_byte_for_byte() {
        const SHARDS: usize = 4;
        // Four per-connection streams with different shapes, including
        // mid-stream garbage and chunk-straddling records.
        let streams: Vec<Vec<u8>> = (0..SHARDS as u16)
            .map(|i| {
                let mut wire = Vec::new();
                for k in 0..30u32 {
                    wire.extend_from_slice(&send(i, k));
                    if k % 7 == 0 {
                        wire.extend_from_slice(&[0xff; 3]); // garbage
                    }
                }
                wire
            })
            .collect();

        // Reference: one engine per stream.
        let mut want_logs = Vec::new();
        let mut want_stats = FilterStats::default();
        for s in &streams {
            let mut e = FilterEngine::standard();
            let mut log = Vec::new();
            for chunk in s.chunks(11) {
                e.feed_into(chunk, &mut |rec: LogRecord| {
                    writeln!(log, "{rec}").unwrap();
                });
            }
            want_stats = want_stats.merge(&e.stats());
            want_logs.push(log);
        }

        let (logs, factory) = capture_sinks(SHARDS);
        let filter =
            ShardedFilter::new(SHARDS, Descriptions::standard(), Rules::default(), factory);
        // Round robin: connection i lands on shard i.
        let conns: Vec<ConnHandle> = (0..SHARDS).map(|_| filter.open_conn()).collect();
        for (conn, stream) in conns.iter().zip(&streams) {
            assert_eq!(
                conn.shard(),
                conns.iter().position(|c| c.conn == conn.conn).unwrap()
            );
            for chunk in stream.chunks(11) {
                conn.feed(chunk.to_vec());
            }
        }
        for conn in conns {
            conn.close();
        }
        filter.flush();
        let got_stats = filter.snapshot();
        for (i, want) in want_logs.iter().enumerate() {
            let got = logs[i].lock().unwrap();
            assert_eq!(
                *got, *want,
                "shard {i} log differs from the single-engine reference"
            );
        }
        assert_eq!(got_stats, want_stats);
        drop(filter);
    }

    #[test]
    fn batches_coalesce_but_never_split_lines() {
        let writes: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let w = Arc::clone(&writes);
        let filter = ShardedFilter::with_batch_bytes(
            1,
            Descriptions::standard(),
            Rules::default(),
            256,
            move |_| {
                let w = Arc::clone(&w);
                Box::new(move |batch: &[u8]| w.lock().unwrap().push(batch.to_vec()))
            },
        );
        let conn = filter.open_conn();
        let mut wire = Vec::new();
        for k in 0..40u32 {
            wire.extend_from_slice(&send(0, k));
        }
        conn.feed(wire);
        conn.close();
        filter.flush();
        drop(filter);
        let writes = writes.lock().unwrap();
        assert!(writes.len() > 1, "expected multiple batches");
        assert!(
            writes.iter().any(|b| b.len() >= 256),
            "expected at least one coalesced batch"
        );
        for b in writes.iter() {
            assert_eq!(b.last(), Some(&b'\n'), "batch ends on a line boundary");
        }
        let all: Vec<u8> = writes.concat();
        assert_eq!(String::from_utf8(all).unwrap().lines().count(), 40);
    }

    #[test]
    fn per_shard_stats_and_snapshot_merge() {
        let (_logs, factory) = capture_sinks(2);
        let filter = ShardedFilter::new(2, Descriptions::standard(), Rules::default(), factory);
        let a = filter.open_conn(); // shard 0
        let b = filter.open_conn(); // shard 1
        assert_eq!((a.shard(), b.shard()), (0, 1));
        a.feed(send(1, 1));
        a.feed(send(1, 2));
        b.feed(send(2, 3));
        a.close();
        b.close();
        filter.flush();
        assert_eq!(filter.shard_stats(0).kept, 2);
        assert_eq!(filter.shard_stats(1).kept, 1);
        let total = filter.snapshot();
        assert_eq!(total.kept, 3);
        assert_eq!(total.seen, 3);
        assert_eq!(total.garbage_bytes, 0);
    }

    #[test]
    fn close_retires_engine_but_keeps_its_stats() {
        let (_logs, factory) = capture_sinks(1);
        let filter = ShardedFilter::new(1, Descriptions::standard(), Rules::default(), factory);
        let a = filter.open_conn();
        a.feed(send(0, 1));
        a.close();
        let b = filter.open_conn();
        b.feed(send(0, 2));
        b.close();
        filter.flush();
        assert_eq!(filter.snapshot().kept, 2, "closed connections still count");
    }

    /// Satellite regression: a partial batch sitting in a shard when
    /// `flush()` or shutdown arrives is never dropped, and every
    /// write ends on a record boundary — for the text sink AND the
    /// store sink. (A batched pipeline's classic failure mode is
    /// losing the tail that never crossed the batch threshold.)
    #[test]
    fn flush_and_shutdown_never_drop_partial_batches() {
        use dpm_logstore::{Backend, LogStore, MemBackend, StoreConfig};

        // Text path: threshold too large to ever trip on its own.
        let writes: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let w = Arc::clone(&writes);
        let filter = ShardedFilter::with_batch_bytes(
            2,
            Descriptions::standard(),
            Rules::default(),
            usize::MAX,
            move |_| {
                let w = Arc::clone(&w);
                Box::new(move |batch: &[u8]| w.lock().unwrap().push(batch.to_vec()))
            },
        );
        let a = filter.open_conn();
        let b = filter.open_conn();
        a.feed(send(1, 1));
        b.feed(send(2, 2));
        // flush() drains both shards even though no threshold tripped.
        filter.flush();
        {
            let writes = writes.lock().unwrap();
            let all: Vec<u8> = writes.concat();
            assert_eq!(String::from_utf8(all).unwrap().lines().count(), 2);
            for batch in writes.iter() {
                assert_eq!(batch.last(), Some(&b'\n'), "record-boundary write");
            }
        }
        a.feed(send(1, 3)); // a partial batch left at shutdown
        drop(a);
        drop(b);
        drop(filter);
        let all: Vec<u8> = writes.lock().unwrap().concat();
        let text = String::from_utf8(all).unwrap();
        assert_eq!(text.lines().count(), 3, "shutdown flushed the tail");
        assert!(text.contains("msgLength=3"));

        // Store path: group-commit threshold never tripped either.
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let store = LogStore::open(
            Arc::clone(&backend),
            "log",
            StoreConfig {
                batch_bytes: usize::MAX,
                ..StoreConfig::default()
            },
        );
        let filter = ShardedFilter::with_logs(
            2,
            Descriptions::standard(),
            Rules::default(),
            DEFAULT_BATCH_BYTES,
            |shard| ShardLog::Store(Box::new(store.writer(shard as u16))),
        );
        let a = filter.open_conn();
        let b = filter.open_conn();
        a.feed(send(1, 10));
        b.feed(send(2, 20));
        filter.flush();
        assert_eq!(
            store.reader().scan().count(),
            2,
            "flush() commits the store"
        );
        a.feed(send(1, 30));
        drop(a);
        drop(b);
        drop(filter); // workers drop their SegmentWriters, which flush
        let reader = store.reader();
        assert_eq!(reader.scan().count(), 3, "shutdown commits the tail");
        // Every stored frame decodes whole: writes ended on frame
        // boundaries (scan() would stop at a torn frame otherwise).
        let lens: Vec<usize> = reader.scan().map(|f| f.raw.len()).collect();
        assert!(lens.iter().all(|&l| l == send(0, 0).len()));
    }

    #[test]
    fn drop_flushes_remaining_output() {
        let (logs, factory) = capture_sinks(1);
        // Huge batch threshold: nothing flushes on size.
        let filter = ShardedFilter::with_batch_bytes(
            1,
            Descriptions::standard(),
            Rules::default(),
            usize::MAX,
            factory,
        );
        let conn = filter.open_conn();
        conn.feed(send(0, 9));
        drop(conn);
        drop(filter); // joins the worker, which flushes
        let log = logs[0].lock().unwrap();
        assert!(
            String::from_utf8_lossy(&log).contains("msgLength=9"),
            "shutdown flushed the pending batch"
        );
    }
}
