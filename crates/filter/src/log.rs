//! The trace-log record format.
//!
//! "A filter sends its output to a log file located in the `/usr/tmp`
//! directory. Each filter has its own log file." (§3.4)
//!
//! The paper stored reduced binary records; this implementation writes
//! one self-describing text line per accepted record so that analysis
//! programs (and humans) can read logs without carrying the
//! descriptions file around. Discarded (`#`) fields simply do not
//! appear on the line.
//!
//! Line shape:
//!
//! ```text
//! event=send machine=0 cpuTime=2113 procTime=10 pid=2120 pc=4 sock=5 msgLength=64 destName=inet:1:1701
//! ```
//!
//! The format is line- and token-structured, so names and values are
//! escaped on write (and unescaped on parse): backslash, whitespace,
//! and `=` become two-character backslash escapes (`\\`, `\s`, `\t`,
//! `\n`, `\r`, `\e`). Every standard field renders as digits, dots,
//! and colons — escaping never fires for them and the classic line
//! shape above is byte-identical — but a hostile or future value
//! containing a space, `=`, or newline can no longer corrupt the line
//! structure. [`LogRecord::parse`] of [`fmt::Display`] output is the
//! identity for *any* record.

use crate::desc::Descriptions;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;

/// Escapes a token so it contains no whitespace, `=`, or bare
/// backslash. Returns the input unchanged (no allocation) when no
/// escaping is needed — the case for every standard field value.
fn escape(s: &str) -> Cow<'_, str> {
    if !s.contains(['\\', ' ', '\t', '\n', '\r', '=']) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '=' => out.push_str("\\e"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Reverses [`escape`]. Unknown escape pairs (and a trailing lone
/// backslash) are kept verbatim, so parsing stays total.
fn unescape(s: &str) -> Cow<'_, str> {
    if !s.contains('\\') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('e') => out.push('='),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    Cow::Owned(out)
}

/// One record of a trace log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogRecord {
    /// The event name (`send`, `accept`, …).
    pub event: String,
    /// Field name/value pairs in layout order (values in display
    /// form).
    pub fields: Vec<(String, String)>,
}

impl LogRecord {
    /// Builds a record from a raw meter message, skipping the named
    /// discard fields.
    pub fn from_raw(desc: &Descriptions, record: &[u8], discard: &[String]) -> Option<LogRecord> {
        let trace = Descriptions::record_type(record)?;
        let event = desc.event(trace)?.name.clone();
        let fields = desc
            .all_fields(record)
            .into_iter()
            .filter(|(name, _)| {
                !discard
                    .iter()
                    .any(|d| d == name || (d == "size" && name == "msgLength"))
            })
            .map(|(name, value)| (name, value.to_string()))
            .collect();
        Some(LogRecord { event, fields })
    }

    /// Looks up a field's display value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a field as an integer.
    pub fn get_int(&self, name: &str) -> Option<u64> {
        self.get(name)?.parse().ok()
    }

    /// Parses one log line.
    ///
    /// Returns `None` for lines that are not records (blank, comments).
    pub fn parse(line: &str) -> Option<LogRecord> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let mut event = String::new();
        let mut fields = Vec::new();
        for token in line.split_whitespace() {
            let (name, value) = token.split_once('=')?;
            if name == "event" {
                event = unescape(value).into_owned();
            } else {
                fields.push((unescape(name).into_owned(), unescape(value).into_owned()));
            }
        }
        if event.is_empty() {
            return None;
        }
        Some(LogRecord { event, fields })
    }

    /// Parses a whole log file.
    pub fn parse_log(text: &str) -> Vec<LogRecord> {
        text.lines().filter_map(LogRecord::parse).collect()
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event={}", escape(&self.event))?;
        for (n, v) in &self.fields {
            write!(f, " {}={}", escape(n), escape(v))?;
        }
        Ok(())
    }
}

/// Summary statistics over a trace log, handy for quick looks and for
/// the example programs' output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogSummary {
    /// Record count per event name.
    pub by_event: HashMap<String, usize>,
    /// Total records.
    pub total: usize,
}

impl LogSummary {
    /// Tallies a set of records.
    pub fn of(records: &[LogRecord]) -> LogSummary {
        let mut by_event = HashMap::new();
        for r in records {
            *by_event.entry(r.event.clone()).or_insert(0) += 1;
        }
        LogSummary {
            total: records.len(),
            by_event,
        }
    }
}

impl fmt::Display for LogSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} event records", self.total)?;
        let mut names: Vec<&String> = self.by_event.keys().collect();
        names.sort();
        for n in names {
            writeln!(f, "  {:<12} {}", n, self.by_event[n])?;
        }
        Ok(())
    }
}

/// Re-export of [`crate::desc::FieldValue`] for downstream crates
/// that build records by hand in tests.
pub use crate::desc::FieldValue as Value;

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};

    fn send_record() -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine: 0,
                cpu_time: 2113,
                seq: 0,
                proc_time: 10,
                trace_type: dpm_meter::trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid: 2120,
                pc: 4,
                sock: 5,
                msg_length: 64,
                dest_name: Some(SockName::inet(1, 1701)),
            }),
        }
        .encode()
    }

    #[test]
    fn raw_to_line_and_back() {
        let d = Descriptions::standard();
        let rec = LogRecord::from_raw(&d, &send_record(), &[]).unwrap();
        let line = rec.to_string();
        assert_eq!(
            line,
            "event=send machine=0 cpuTime=2113 procTime=10 traceType=1 pid=2120 pc=4 sock=5 msgLength=64 destName=inet:1:1701"
        );
        let back = LogRecord::parse(&line).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.get_int("msgLength"), Some(64));
        assert_eq!(back.get("destName"), Some("inet:1:1701"));
    }

    #[test]
    fn discard_fields_vanish() {
        let d = Descriptions::standard();
        let rec =
            LogRecord::from_raw(&d, &send_record(), &["machine".into(), "pc".into()]).unwrap();
        assert_eq!(rec.get("machine"), None);
        assert_eq!(rec.get("pc"), None);
        assert_eq!(rec.get_int("pid"), Some(2120));
    }

    #[test]
    fn size_alias_discards_msg_length() {
        let d = Descriptions::standard();
        let rec = LogRecord::from_raw(&d, &send_record(), &["size".into()]).unwrap();
        assert_eq!(rec.get("msgLength"), None);
    }

    /// Satellite regression: values containing spaces, `=`, newlines,
    /// tabs, or backslashes used to corrupt the line structure (the
    /// parser split on whitespace and the first `=`). They now escape
    /// on write and unescape on parse, so display→parse is the
    /// identity for arbitrary records.
    #[test]
    fn hostile_values_round_trip_exactly() {
        let rec = LogRecord {
            event: "odd event".into(),
            fields: vec![
                ("plain".into(), "42".into()),
                ("spaced".into(), "two words".into()),
                ("eq".into(), "a=b=c".into()),
                ("multi\nline".into(), "first\nsecond\r\n".into()),
                ("tabs".into(), "a\tb".into()),
                ("slashes".into(), "C:\\path\\n not a newline".into()),
                ("empty".into(), String::new()),
            ],
        };
        let line = rec.to_string();
        assert!(!line.contains('\n'), "one record, one line: {line:?}");
        let back = LogRecord::parse(&line).expect("line parses");
        assert_eq!(back, rec);
        // Multiple hostile records in one log stay one-per-line.
        let log = format!("{rec}\n{rec}\n");
        let all = LogRecord::parse_log(&log);
        assert_eq!(all, vec![rec.clone(), rec]);
    }

    #[test]
    fn benign_lines_are_unchanged_by_escaping() {
        // The exact classic line shape must keep round-tripping
        // untouched — escaping never fires for standard fields.
        let line = "event=send machine=0 cpuTime=2113 procTime=10 traceType=1 pid=2120 pc=4 sock=5 msgLength=64 destName=inet:1:1701";
        let rec = LogRecord::parse(line).unwrap();
        assert_eq!(rec.to_string(), line);
    }

    #[test]
    fn unknown_escapes_parse_leniently() {
        let rec = LogRecord::parse("event=x a=\\q b=trailing\\").unwrap();
        assert_eq!(rec.get("a"), Some("\\q"));
        assert_eq!(rec.get("b"), Some("trailing\\"));
    }

    #[test]
    fn parse_log_skips_junk() {
        let text = "\n# comment\nevent=fork pid=1 newPid=2\nnot-a-record\n";
        let recs = LogRecord::parse_log(text);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].event, "fork");
    }

    #[test]
    fn summary_counts() {
        let recs = LogRecord::parse_log("event=send pid=1\nevent=send pid=2\nevent=fork pid=1\n");
        let s = LogSummary::of(&recs);
        assert_eq!(s.total, 3);
        assert_eq!(s.by_event["send"], 2);
        assert_eq!(s.by_event["fork"], 1);
        let shown = s.to_string();
        assert!(shown.contains("3 event records"));
        assert!(shown.contains("send"));
    }
}
