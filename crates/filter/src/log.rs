//! The trace-log record format.
//!
//! "A filter sends its output to a log file located in the `/usr/tmp`
//! directory. Each filter has its own log file." (§3.4)
//!
//! The paper stored reduced binary records; this implementation writes
//! one self-describing text line per accepted record so that analysis
//! programs (and humans) can read logs without carrying the
//! descriptions file around. Discarded (`#`) fields simply do not
//! appear on the line.
//!
//! Line shape:
//!
//! ```text
//! event=send machine=0 cpuTime=2113 procTime=10 pid=2120 pc=4 sock=5 msgLength=64 destName=inet:1:1701
//! ```

use crate::desc::Descriptions;
use std::collections::HashMap;
use std::fmt;

/// One record of a trace log.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogRecord {
    /// The event name (`send`, `accept`, …).
    pub event: String,
    /// Field name/value pairs in layout order (values in display
    /// form).
    pub fields: Vec<(String, String)>,
}

impl LogRecord {
    /// Builds a record from a raw meter message, skipping the named
    /// discard fields.
    pub fn from_raw(desc: &Descriptions, record: &[u8], discard: &[String]) -> Option<LogRecord> {
        let trace = Descriptions::record_type(record)?;
        let event = desc.event(trace)?.name.clone();
        let fields = desc
            .all_fields(record)
            .into_iter()
            .filter(|(name, _)| {
                !discard
                    .iter()
                    .any(|d| d == name || (d == "size" && name == "msgLength"))
            })
            .map(|(name, value)| (name, value.to_string()))
            .collect();
        Some(LogRecord { event, fields })
    }

    /// Looks up a field's display value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a field as an integer.
    pub fn get_int(&self, name: &str) -> Option<u64> {
        self.get(name)?.parse().ok()
    }

    /// Parses one log line.
    ///
    /// Returns `None` for lines that are not records (blank, comments).
    pub fn parse(line: &str) -> Option<LogRecord> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let mut event = String::new();
        let mut fields = Vec::new();
        for token in line.split_whitespace() {
            let (name, value) = token.split_once('=')?;
            if name == "event" {
                event = value.to_owned();
            } else {
                fields.push((name.to_owned(), value.to_owned()));
            }
        }
        if event.is_empty() {
            return None;
        }
        Some(LogRecord { event, fields })
    }

    /// Parses a whole log file.
    pub fn parse_log(text: &str) -> Vec<LogRecord> {
        text.lines().filter_map(LogRecord::parse).collect()
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event={}", self.event)?;
        for (n, v) in &self.fields {
            write!(f, " {n}={v}")?;
        }
        Ok(())
    }
}

/// Summary statistics over a trace log, handy for quick looks and for
/// the example programs' output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogSummary {
    /// Record count per event name.
    pub by_event: HashMap<String, usize>,
    /// Total records.
    pub total: usize,
}

impl LogSummary {
    /// Tallies a set of records.
    pub fn of(records: &[LogRecord]) -> LogSummary {
        let mut by_event = HashMap::new();
        for r in records {
            *by_event.entry(r.event.clone()).or_insert(0) += 1;
        }
        LogSummary {
            total: records.len(),
            by_event,
        }
    }
}

impl fmt::Display for LogSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} event records", self.total)?;
        let mut names: Vec<&String> = self.by_event.keys().collect();
        names.sort();
        for n in names {
            writeln!(f, "  {:<12} {}", n, self.by_event[n])?;
        }
        Ok(())
    }
}

/// Re-export of [`crate::desc::FieldValue`] for downstream crates
/// that build records by hand in tests.
pub use crate::desc::FieldValue as Value;

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};

    fn send_record() -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                size: 0,
                machine: 0,
                cpu_time: 2113,
                proc_time: 10,
                trace_type: dpm_meter::trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid: 2120,
                pc: 4,
                sock: 5,
                msg_length: 64,
                dest_name: Some(SockName::inet(1, 1701)),
            }),
        }
        .encode()
    }

    #[test]
    fn raw_to_line_and_back() {
        let d = Descriptions::standard();
        let rec = LogRecord::from_raw(&d, &send_record(), &[]).unwrap();
        let line = rec.to_string();
        assert_eq!(
            line,
            "event=send machine=0 cpuTime=2113 procTime=10 traceType=1 pid=2120 pc=4 sock=5 msgLength=64 destName=inet:1:1701"
        );
        let back = LogRecord::parse(&line).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.get_int("msgLength"), Some(64));
        assert_eq!(back.get("destName"), Some("inet:1:1701"));
    }

    #[test]
    fn discard_fields_vanish() {
        let d = Descriptions::standard();
        let rec =
            LogRecord::from_raw(&d, &send_record(), &["machine".into(), "pc".into()]).unwrap();
        assert_eq!(rec.get("machine"), None);
        assert_eq!(rec.get("pc"), None);
        assert_eq!(rec.get_int("pid"), Some(2120));
    }

    #[test]
    fn size_alias_discards_msg_length() {
        let d = Descriptions::standard();
        let rec = LogRecord::from_raw(&d, &send_record(), &["size".into()]).unwrap();
        assert_eq!(rec.get("msgLength"), None);
    }

    #[test]
    fn parse_log_skips_junk() {
        let text = "\n# comment\nevent=fork pid=1 newPid=2\nnot-a-record\n";
        let recs = LogRecord::parse_log(text);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].event, "fork");
    }

    #[test]
    fn summary_counts() {
        let recs = LogRecord::parse_log("event=send pid=1\nevent=send pid=2\nevent=fork pid=1\n");
        let s = LogSummary::of(&recs);
        assert_eq!(s.total, 3);
        assert_eq!(s.by_event["send"], 2);
        assert_eq!(s.by_event["fork"], 1);
        let shown = s.to_string();
        assert!(shown.contains("3 event records"));
        assert!(shown.contains("send"));
    }
}
