//! Property-based tests for the filter: rule parsing round-trips
//! through display, the engine is chunking-invariant, and selection
//! semantics hold for generated rule/record pairs.

use dpm_filter::{Descriptions, FilterEngine, Rules, Verdict};
use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use proptest::prelude::*;

fn send_record(machine: u16, cpu: u32, pid: u32, len: u32) -> Vec<u8> {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine,
            cpu_time: cpu,
            proc_time: 0,
            trace_type: dpm_meter::trace_type::SEND,
        },
        body: MeterBody::Send(MeterSendMsg {
            pid,
            pc: 1,
            sock: 2,
            msg_length: len,
            dest_name: Some(SockName::inet(1, 9)),
        }),
    }
    .encode()
}

/// A generated simple condition: `field op value`.
fn arb_rule_text() -> impl Strategy<Value = String> {
    let field = prop_oneof![
        Just("machine"),
        Just("cpuTime"),
        Just("pid"),
        Just("sock"),
        Just("msgLength"),
    ];
    let op = prop_oneof![Just("="), Just("!="), Just("<"), Just(">"), Just("<="), Just(">=")];
    let cond = (field, op, any::<u16>()).prop_map(|(f, o, v)| format!("{f}{o}{v}"));
    proptest::collection::vec(cond, 1..4).prop_map(|cs| cs.join(", "))
}

proptest! {
    #[test]
    fn parse_display_round_trip(text in arb_rule_text()) {
        let rules = Rules::parse(&text).expect("generated rules parse");
        let shown = rules.rules[0].to_string();
        let reparsed = Rules::parse(&shown).expect("displayed rules parse");
        prop_assert_eq!(&reparsed.rules[0], &rules.rules[0]);
    }

    #[test]
    fn engine_is_chunking_invariant(
        records in proptest::collection::vec(
            (any::<u16>(), any::<u32>(), any::<u32>(), any::<u32>()), 1..20),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for (m, c, p, l) in &records {
            wire.extend_from_slice(&send_record(*m, *c, *p, *l));
        }
        let mut whole = FilterEngine::standard();
        let all_at_once = whole.feed(&wire);
        let mut split = FilterEngine::standard();
        let mut piecewise = Vec::new();
        for part in wire.chunks(chunk) {
            piecewise.extend(split.feed(part));
        }
        prop_assert_eq!(all_at_once, piecewise);
        prop_assert_eq!(whole.stats().kept, split.stats().kept);
    }

    #[test]
    fn numeric_conditions_agree_with_direct_comparison(
        machine in 0u16..10,
        threshold in 0u32..100,
        cpu in 0u32..100,
    ) {
        let rules = Rules::parse(&format!("cpuTime<{threshold}")).expect("parse");
        let rec = send_record(machine, cpu, 1, 1);
        let kept = matches!(rules.verdict(&Descriptions::standard(), &rec), Verdict::Keep { .. });
        prop_assert_eq!(kept, cpu < threshold);
    }

    #[test]
    fn wildcard_always_matches_and_discards(
        machine in any::<u16>(),
        cpu in any::<u32>(),
    ) {
        let rules = Rules::parse("machine=#*").expect("parse");
        let rec = send_record(machine, cpu, 1, 1);
        match rules.verdict(&Descriptions::standard(), &rec) {
            Verdict::Keep { discard_fields } => {
                prop_assert_eq!(discard_fields, vec!["machine".to_owned()]);
            }
            Verdict::Reject => prop_assert!(false, "wildcard must match"),
        }
    }

    #[test]
    fn prefix_pattern_matches_decimal_prefixes(pid in any::<u32>()) {
        let rules = Rules::parse("pid=1*").expect("parse");
        let rec = send_record(0, 0, pid, 1);
        let kept = matches!(rules.verdict(&Descriptions::standard(), &rec), Verdict::Keep { .. });
        prop_assert_eq!(kept, pid.to_string().starts_with('1'));
    }

    #[test]
    fn engine_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..500)) {
        let mut engine = FilterEngine::standard();
        let _ = engine.feed(&bytes); // must not panic
    }
}
