//! Property-based tests for the filter: rule parsing round-trips
//! through display, the engine is chunking-invariant, and selection
//! semantics hold for generated rule/record pairs.

use dpm_filter::{Descriptions, FilterEngine, Rules, Verdict};
use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use proptest::prelude::*;

fn send_record(machine: u16, cpu: u32, pid: u32, len: u32) -> Vec<u8> {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine,
            cpu_time: cpu,
            seq: 0,
            proc_time: 0,
            trace_type: dpm_meter::trace_type::SEND,
        },
        body: MeterBody::Send(MeterSendMsg {
            pid,
            pc: 1,
            sock: 2,
            msg_length: len,
            dest_name: Some(SockName::inet(1, 9)),
        }),
    }
    .encode()
}

/// A generated simple condition: `field op value`.
fn arb_rule_text() -> impl Strategy<Value = String> {
    let field = prop_oneof![
        Just("machine"),
        Just("cpuTime"),
        Just("pid"),
        Just("sock"),
        Just("msgLength"),
    ];
    let op = prop_oneof![
        Just("="),
        Just("!="),
        Just("<"),
        Just(">"),
        Just("<="),
        Just(">=")
    ];
    let cond = (field, op, any::<u16>()).prop_map(|(f, o, v)| format!("{f}{o}{v}"));
    proptest::collection::vec(cond, 1..4).prop_map(|cs| cs.join(", "))
}

proptest! {
    #[test]
    fn parse_display_round_trip(text in arb_rule_text()) {
        let rules = Rules::parse(&text).expect("generated rules parse");
        let shown = rules.rules[0].to_string();
        let reparsed = Rules::parse(&shown).expect("displayed rules parse");
        prop_assert_eq!(&reparsed.rules[0], &rules.rules[0]);
    }

    #[test]
    fn engine_is_chunking_invariant(
        records in proptest::collection::vec(
            (any::<u16>(), any::<u32>(), any::<u32>(), any::<u32>()), 1..20),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for (m, c, p, l) in &records {
            wire.extend_from_slice(&send_record(*m, *c, *p, *l));
        }
        let mut whole = FilterEngine::standard();
        let all_at_once = whole.feed(&wire);
        let mut split = FilterEngine::standard();
        let mut piecewise = Vec::new();
        for part in wire.chunks(chunk) {
            piecewise.extend(split.feed(part));
        }
        prop_assert_eq!(all_at_once, piecewise);
        prop_assert_eq!(whole.stats().kept, split.stats().kept);
    }

    #[test]
    fn numeric_conditions_agree_with_direct_comparison(
        machine in 0u16..10,
        threshold in 0u32..100,
        cpu in 0u32..100,
    ) {
        let rules = Rules::parse(&format!("cpuTime<{threshold}")).expect("parse");
        let rec = send_record(machine, cpu, 1, 1);
        let kept = matches!(rules.verdict(&Descriptions::standard(), &rec), Verdict::Keep { .. });
        prop_assert_eq!(kept, cpu < threshold);
    }

    #[test]
    fn wildcard_always_matches_and_discards(
        machine in any::<u16>(),
        cpu in any::<u32>(),
    ) {
        let rules = Rules::parse("machine=#*").expect("parse");
        let rec = send_record(machine, cpu, 1, 1);
        match rules.verdict(&Descriptions::standard(), &rec) {
            Verdict::Keep { discard_fields } => {
                prop_assert_eq!(discard_fields, vec!["machine".to_owned()]);
            }
            Verdict::Reject => prop_assert!(false, "wildcard must match"),
        }
    }

    #[test]
    fn prefix_pattern_matches_decimal_prefixes(pid in any::<u32>()) {
        let rules = Rules::parse("pid=1*").expect("parse");
        let rec = send_record(0, 0, pid, 1);
        let kept = matches!(rules.verdict(&Descriptions::standard(), &rec), Verdict::Keep { .. });
        prop_assert_eq!(kept, pid.to_string().starts_with('1'));
    }

    #[test]
    fn engine_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..500)) {
        let mut engine = FilterEngine::standard();
        let _ = engine.feed(&bytes); // must not panic
    }

    /// The zero-copy pipeline's key invariant: a stream delivered one
    /// byte at a time produces exactly the same accepted lines and the
    /// same statistics — including `garbage_bytes` — as the same
    /// stream delivered in one buffer, even when corrupt bytes are
    /// mixed in between the records.
    #[test]
    fn byte_at_a_time_equals_all_at_once(
        records in proptest::collection::vec(
            (any::<u16>(), any::<u32>(), any::<u32>(), any::<u32>()), 1..12),
        garbage_runs in proptest::collection::vec(0usize..40, 1..12),
    ) {
        // Interleave zero-filled garbage runs with valid records.
        // (0x00 runs are unambiguous: every misaligned size read is
        // either 0 or a left-shifted real size, both outside the
        // valid 24..=4096 range, so resynchronization is exact.)
        let mut wire = Vec::new();
        for (i, (m, c, p, l)) in records.iter().enumerate() {
            let run = garbage_runs[i % garbage_runs.len()];
            wire.extend(std::iter::repeat_n(0u8, run));
            wire.extend_from_slice(&send_record(*m, *c, *p, *l));
        }

        let mut whole = FilterEngine::standard();
        let mut whole_lines = Vec::new();
        whole.feed_into(&wire, &mut |rec| whole_lines.push(rec.to_string()));

        let mut trickle = FilterEngine::standard();
        let mut trickle_lines = Vec::new();
        for b in &wire {
            trickle.feed_into(std::slice::from_ref(b), &mut |rec| {
                trickle_lines.push(rec.to_string());
            });
        }

        prop_assert_eq!(&whole_lines, &trickle_lines);
        prop_assert_eq!(whole.stats(), trickle.stats());
        prop_assert_eq!(whole.pending_bytes(), trickle.pending_bytes());
    }

    /// Resync fuzz: after arbitrary garbage runs between records, the
    /// engine recovers every valid record and charges exactly the
    /// garbage bytes to `garbage_bytes` (the stream ends with a valid
    /// record, so no garbage is left pending as a possible header).
    #[test]
    fn resync_recovers_every_record_between_garbage(
        records in proptest::collection::vec(
            (any::<u16>(), any::<u32>(), any::<u32>(), any::<u32>()), 1..12),
        garbage_runs in proptest::collection::vec(0usize..40, 1..12),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        let mut total_garbage = 0u64;
        for (i, (m, c, p, l)) in records.iter().enumerate() {
            let run = garbage_runs[i % garbage_runs.len()];
            total_garbage += run as u64;
            wire.extend(std::iter::repeat_n(0u8, run));
            wire.extend_from_slice(&send_record(*m, *c, *p, *l));
        }

        let mut engine = FilterEngine::standard();
        let mut lines = Vec::new();
        for part in wire.chunks(chunk) {
            engine.feed_into(part, &mut |rec| lines.push(rec.to_string()));
        }

        let stats = engine.stats();
        prop_assert_eq!(stats.seen, records.len() as u64);
        prop_assert_eq!(stats.kept, lines.len() as u64);
        prop_assert_eq!(stats.garbage_bytes, total_garbage);
        prop_assert_eq!(engine.pending_bytes(), 0);
    }
}
