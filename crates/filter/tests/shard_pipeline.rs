//! End-to-end test of the standard filter process running the sharded
//! pipeline inside the simulated OS.
//!
//! Four "metered processes" (plain user processes here — the meter
//! connection protocol is just a byte stream) connect to the filter's
//! meter port and dribble their streams out in small chunks, garbage
//! included. The filter fans the connections across worker shards and
//! appends accepted records to its log file in batches. The log must
//! contain exactly the lines a lone [`FilterEngine`] produces for the
//! same per-connection streams: shard interleaving may reorder whole
//! lines, but must never split or drop one.

use dpm_filter::{filter_main, FilterEngine};
use dpm_meter::{trace_type, MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use dpm_simnet::NetConfig;
use dpm_simos::{Cluster, Domain, Proc, SockType, SysError, SysResult, Uid};
use std::collections::HashMap;

const FILTER_PORT: u16 = 4300;
const LOGFILE: &str = "/usr/tmp/log.sharded";

fn send_record(machine: u16, cpu: u32, pid: u32) -> Vec<u8> {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine,
            cpu_time: cpu,
            seq: 0,
            proc_time: 0,
            trace_type: trace_type::SEND,
        },
        body: MeterBody::Send(MeterSendMsg {
            pid,
            pc: 7,
            sock: 3,
            msg_length: 64,
            dest_name: Some(SockName::inet(2, 99)),
        }),
    }
    .encode()
}

/// One metered process's stream: records with zero-filled garbage runs
/// in between (unambiguous for resynchronization — any misaligned size
/// read falls outside the valid range).
fn stream_for(conn: u32) -> Vec<u8> {
    let mut wire = Vec::new();
    for i in 0..25u32 {
        if i % 5 == conn % 5 {
            wire.extend(std::iter::repeat_n(0u8, 3 + (i as usize % 7)));
        }
        wire.extend_from_slice(&send_record(conn as u16, 100 * conn + i, 1000 + i));
    }
    wire
}

fn connect_with_retry(p: &Proc, host: &str, port: u16) -> SysResult<dpm_simos::Fd> {
    let mut tries = 0;
    loop {
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        match p.connect_host(s, host, port) {
            Ok(()) => return Ok(s),
            Err(SysError::Econnrefused) if tries < 500 => {
                let _ = p.close(s);
                tries += 1;
                p.sleep_ms(2)?;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => {
                let _ = p.close(s);
                return Err(e);
            }
        }
    }
}

#[test]
fn sharded_filter_log_matches_single_engine_reference() {
    let c = Cluster::builder()
        .net(NetConfig::ideal())
        .seed(23)
        .machine("blue") // filter
        .machine("red") // metered processes
        .build();

    // The filter process itself, running the 4-shard pipeline. The
    // descriptions/templates files are absent on blue, so the filter
    // falls back to the standard descriptions and keep-everything
    // rules — the same configuration as `FilterEngine::standard()`.
    c.spawn_user("blue", "filter", Uid::ROOT, |p| {
        filter_main(
            p,
            vec![
                FILTER_PORT.to_string(),
                LOGFILE.to_owned(),
                "descriptions".to_owned(),
                "templates".to_owned(),
                "4".to_owned(),
            ],
        )
    })
    .expect("spawn filter");

    // Four metered processes on red, each dribbling its stream in
    // 13-byte chunks so records straddle read boundaries.
    let red = c.machine("red").expect("red exists");
    let mut pids = Vec::new();
    for conn in 0..4u32 {
        let pid = c
            .spawn_user("red", &format!("metersrc{conn}"), Uid(7), move |p| {
                let wire = stream_for(conn);
                let s = connect_with_retry(&p, "blue", FILTER_PORT)?;
                for chunk in wire.chunks(13) {
                    p.write(s, chunk)?;
                }
                p.close(s)
            })
            .expect("spawn meter source");
        pids.push(pid);
    }
    for pid in pids {
        red.wait_exit(pid);
    }

    // What a lone engine says each stream contains.
    let mut expected: HashMap<String, usize> = HashMap::new();
    let mut expected_lines = 0usize;
    for conn in 0..4u32 {
        let mut engine = FilterEngine::standard();
        engine.feed_into(&stream_for(conn), &mut |rec| {
            *expected.entry(rec.to_string()).or_insert(0) += 1;
            expected_lines += 1;
        });
        assert_eq!(engine.pending_bytes(), 0, "test stream ends on a record");
    }
    assert!(expected_lines > 0, "the reference pipeline kept something");

    // The filter's readers flush after each EOF; give the real threads
    // a moment to drain, polling the log until it stabilizes.
    let blue = c.machine("blue").expect("blue exists");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let log = loop {
        let text = blue.fs().read_string(LOGFILE).unwrap_or_default();
        if text.lines().count() == expected_lines {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "filter log never reached {expected_lines} lines; got:\n{text}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };

    // Whole lines only, and exactly the expected multiset.
    let mut got: HashMap<String, usize> = HashMap::new();
    for line in log.lines() {
        assert!(!line.is_empty(), "no blank lines from batch seams");
        *got.entry(line.to_owned()).or_insert(0) += 1;
    }
    assert_eq!(got, expected, "sharded log is the single-engine multiset");
    assert!(log.ends_with('\n'), "batches end on line boundaries");

    c.shutdown();
}

/// The compatibility path: no shard argument means one shard, and the
/// classic single-connection session still works end to end.
#[test]
fn default_single_shard_filter_still_logs() {
    let c = Cluster::builder()
        .net(NetConfig::ideal())
        .seed(24)
        .machine("solo")
        .build();

    c.spawn_user("solo", "filter", Uid::ROOT, |p| {
        filter_main(
            p,
            vec![
                (FILTER_PORT + 1).to_string(),
                "/usr/tmp/log.solo".to_owned(),
            ],
        )
    })
    .expect("spawn filter");

    let solo = c.machine("solo").expect("solo exists");
    let pid = c
        .spawn_user("solo", "metersrc", Uid(7), |p| {
            let s = connect_with_retry(&p, "solo", FILTER_PORT + 1)?;
            p.write(s, &send_record(1, 42, 77))?;
            p.close(s)
        })
        .expect("spawn meter source");
    solo.wait_exit(pid);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if let Some(text) = solo.fs().read_string("/usr/tmp/log.solo") {
            if text.lines().count() == 1 {
                let mut reference = FilterEngine::standard();
                let lines = reference.feed(&send_record(1, 42, 77));
                assert_eq!(text.lines().next(), lines.first().map(String::as_str));
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "single-shard filter never logged the record"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    c.shutdown();
}

/// The sharded filter must not deadlock or lose data when a fifth and
/// sixth connection reuse shards that already served earlier
/// connections (round-robin wraps at `shards`).
#[test]
fn more_connections_than_shards_round_robin() {
    let c = Cluster::builder()
        .net(NetConfig::ideal())
        .seed(25)
        .machine("wrap")
        .build();

    c.spawn_user("wrap", "filter", Uid::ROOT, |p| {
        filter_main(
            p,
            vec![
                (FILTER_PORT + 2).to_string(),
                "/usr/tmp/log.wrap".to_owned(),
                "descriptions".to_owned(),
                "templates".to_owned(),
                "2".to_owned(),
            ],
        )
    })
    .expect("spawn filter");

    let wrap = c.machine("wrap").expect("wrap exists");
    let mut expected_lines = 0usize;
    for conn in 0..6u32 {
        let mut engine = FilterEngine::standard();
        engine.feed_into(&stream_for(conn), &mut |_rec| expected_lines += 1);
        // Connections run sequentially here; correctness under
        // concurrency is covered by the first test.
        let pid = c
            .spawn_user("wrap", &format!("src{conn}"), Uid(7), move |p| {
                let s = connect_with_retry(&p, "wrap", FILTER_PORT + 2)?;
                p.write(s, &stream_for(conn))?;
                p.close(s)
            })
            .expect("spawn source");
        wrap.wait_exit(pid);
    }

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let text = wrap
            .fs()
            .read_string("/usr/tmp/log.wrap")
            .unwrap_or_default();
        if text.lines().count() == expected_lines {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "expected {expected_lines} lines, got {}",
            text.lines().count()
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    c.shutdown();
}
