//! Property-based tests: every well-formed meter message round-trips
//! through the Appendix-A wire format, and the decoder never panics on
//! arbitrary bytes.

use dpm_meter::{
    MeterAccept, MeterBody, MeterConnect, MeterDestSock, MeterDup, MeterFork, MeterHeader,
    MeterMsg, MeterRecvCall, MeterRecvMsg, MeterSendMsg, MeterSockCrt, MeterTermProc, SockName,
    TermReason,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = Option<SockName>> {
    prop_oneof![
        Just(None),
        (any::<u32>(), any::<u16>()).prop_map(|(h, p)| Some(SockName::Inet { host: h, port: p })),
        "[a-z/._-]{1,14}".prop_map(|s| Some(SockName::UnixPath(s))),
        any::<u64>().prop_map(|v| Some(SockName::Internal(v))),
    ]
}

fn arb_body() -> impl Strategy<Value = MeterBody> {
    let u = any::<u32>();
    prop_oneof![
        (u, u, u, u, arb_name()).prop_map(|(pid, pc, sock, msg_length, dest_name)| {
            MeterBody::Send(MeterSendMsg {
                pid,
                pc,
                sock,
                msg_length,
                dest_name,
            })
        }),
        (u, u, u).prop_map(|(pid, pc, sock)| MeterBody::RecvCall(MeterRecvCall { pid, pc, sock })),
        (u, u, u, u, arb_name()).prop_map(|(pid, pc, sock, msg_length, source_name)| {
            MeterBody::Recv(MeterRecvMsg {
                pid,
                pc,
                sock,
                msg_length,
                source_name,
            })
        }),
        (u, u, u, 1u32..=2, 1u32..=2).prop_map(|(pid, pc, sock, domain, sock_type)| {
            MeterBody::SockCrt(MeterSockCrt {
                pid,
                pc,
                sock,
                domain,
                sock_type,
                protocol: 0,
            })
        }),
        (u, u, u, u).prop_map(|(pid, pc, sock, new_sock)| MeterBody::Dup(MeterDup {
            pid,
            pc,
            sock,
            new_sock
        })),
        (u, u, u).prop_map(|(pid, pc, sock)| MeterBody::DestSock(MeterDestSock { pid, pc, sock })),
        (u, u, u).prop_map(|(pid, pc, new_pid)| MeterBody::Fork(MeterFork { pid, pc, new_pid })),
        (u, u, u, u, arb_name(), arb_name()).prop_map(
            |(pid, pc, sock, new_sock, sock_name, peer_name)| {
                MeterBody::Accept(MeterAccept {
                    pid,
                    pc,
                    sock,
                    new_sock,
                    sock_name,
                    peer_name,
                })
            }
        ),
        (u, u, u, arb_name(), arb_name()).prop_map(|(pid, pc, sock, sock_name, peer_name)| {
            MeterBody::Connect(MeterConnect {
                pid,
                pc,
                sock,
                sock_name,
                peer_name,
            })
        }),
        (
            u,
            u,
            prop_oneof![Just(TermReason::Normal), Just(TermReason::Killed)]
        )
            .prop_map(|(pid, pc, reason)| MeterBody::TermProc(MeterTermProc {
                pid,
                pc,
                reason
            })),
    ]
}

fn arb_msg() -> impl Strategy<Value = MeterMsg> {
    (any::<u16>(), any::<u32>(), any::<u32>(), arb_body()).prop_map(
        |(machine, cpu_time, proc_time, body)| MeterMsg {
            header: MeterHeader {
                size: 0,
                machine,
                cpu_time,
                seq: 0,
                proc_time,
                trace_type: body.trace_type(),
            },
            body,
        },
    )
}

proptest! {
    #[test]
    fn any_message_round_trips(msg in arb_msg()) {
        let wire = msg.encode();
        let (back, used) = MeterMsg::decode(&wire).expect("decode");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(back.body, msg.body);
        prop_assert_eq!(back.header.machine, msg.header.machine);
        prop_assert_eq!(back.header.cpu_time, msg.header.cpu_time);
        prop_assert_eq!(back.header.proc_time, msg.header.proc_time);
    }

    #[test]
    fn concatenated_messages_round_trip(msgs in proptest::collection::vec(arb_msg(), 1..20)) {
        let mut wire = Vec::new();
        for m in &msgs {
            m.encode_into(&mut wire);
        }
        let back = MeterMsg::decode_all(&wire).expect("decode all");
        prop_assert_eq!(back.len(), msgs.len());
        for (b, m) in back.iter().zip(&msgs) {
            prop_assert_eq!(&b.body, &m.body);
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = MeterMsg::decode(&bytes); // must not panic
    }

    #[test]
    fn truncation_is_detected(msg in arb_msg(), cut in 1usize..10) {
        let wire = msg.encode();
        let keep = wire.len().saturating_sub(cut);
        prop_assert!(MeterMsg::decode(&wire[..keep]).is_err());
    }

    #[test]
    fn names_round_trip(name in arb_name().prop_filter("some", Option::is_some)) {
        let name = name.expect("filtered");
        let wire = name.encode();
        prop_assert_eq!(SockName::decode(&wire).expect("decode"), name);
    }
}
