//! Socket names (`NAME`, i.e. `struct sockaddr`) as carried in meter
//! messages.
//!
//! The paper (§4.1): "the form of the names depends upon the domain of
//! the socket. Currently, socket names are presented as either an
//! Internet Domain name, a UNIX path name (for the UNIX domain) or, in
//! the case of socketpairs, an internally generated unique name. The
//! names are important in matching the sockets in a connection and in
//! identifying the recipient of datagrams."

use std::fmt;

/// The fixed on-wire size of a socket name: `sizeof(struct sockaddr)`
/// on a VAX, 16 bytes.
pub const NAME_LEN: usize = 16;

/// Address-family tags used in the first two bytes of the encoding.
/// They follow 4.2BSD: `AF_UNIX == 1`, `AF_INET == 2`. Internally
/// generated socketpair names use the reserved value `0xfffe`.
mod af {
    pub const UNIX: u16 = 1;
    pub const INET: u16 = 2;
    pub const INTERNAL: u16 = 0xfffe;
}

/// A socket name, in one of the three forms of the paper.
///
/// A socket name is composed of the host address and the port number
/// (§3.5.4). In our simulated network the host address is the numeric
/// host identifier handed out by the network registry.
///
/// # Example
///
/// ```
/// use dpm_meter::SockName;
///
/// let n = SockName::inet(5, 1701);
/// let bytes = n.encode();
/// assert_eq!(SockName::decode(&bytes)?, n);
/// assert_eq!(n.to_string(), "inet:5:1701");
/// # Ok::<(), dpm_meter::NameDecodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SockName {
    /// An Internet-domain name: (host id, port).
    Inet {
        /// Numeric host identifier from the network registry.
        host: u32,
        /// Port number.
        port: u16,
    },
    /// A UNIX-domain path name.
    ///
    /// The on-wire form holds at most 14 bytes of path, exactly as
    /// `sun_path` fits in a 16-byte `struct sockaddr`; longer paths are
    /// truncated *consistently*, so matching still works.
    UnixPath(String),
    /// An internally generated unique name, used for socketpairs.
    Internal(u64),
}

impl SockName {
    /// Convenience constructor for an Internet-domain name.
    pub fn inet(host: u32, port: u16) -> SockName {
        SockName::Inet { host, port }
    }

    /// Convenience constructor for a UNIX-domain path name.
    pub fn unix(path: impl Into<String>) -> SockName {
        SockName::UnixPath(path.into())
    }

    /// The number of meaningful bytes in the encoded form, as reported
    /// in the `*NameLen` fields of meter messages. Zero is reserved by
    /// the kernel for "name not available" and never returned here.
    pub fn wire_len(&self) -> u32 {
        match self {
            SockName::Inet { .. } => 8,
            SockName::UnixPath(p) => 2 + p.len().min(NAME_LEN - 2) as u32,
            SockName::Internal(_) => 10,
        }
    }

    /// Encodes into the fixed 16-byte `NAME` field.
    pub fn encode(&self) -> [u8; NAME_LEN] {
        let mut out = [0u8; NAME_LEN];
        match self {
            SockName::Inet { host, port } => {
                out[0..2].copy_from_slice(&af::INET.to_le_bytes());
                out[2..4].copy_from_slice(&port.to_le_bytes());
                out[4..8].copy_from_slice(&host.to_le_bytes());
            }
            SockName::UnixPath(path) => {
                out[0..2].copy_from_slice(&af::UNIX.to_le_bytes());
                let bytes = path.as_bytes();
                let n = bytes.len().min(NAME_LEN - 2);
                out[2..2 + n].copy_from_slice(&bytes[..n]);
            }
            SockName::Internal(id) => {
                out[0..2].copy_from_slice(&af::INTERNAL.to_le_bytes());
                out[2..10].copy_from_slice(&id.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a 16-byte `NAME` field.
    ///
    /// # Errors
    ///
    /// Returns [`NameDecodeError`] if the buffer is shorter than
    /// [`NAME_LEN`], carries an unknown address family, or (for the
    /// UNIX domain) contains a non-UTF-8 path.
    pub fn decode(buf: &[u8]) -> Result<SockName, NameDecodeError> {
        if buf.len() < NAME_LEN {
            return Err(NameDecodeError::Truncated { have: buf.len() });
        }
        let family = u16::from_le_bytes([buf[0], buf[1]]);
        match family {
            af::INET => {
                let port = u16::from_le_bytes([buf[2], buf[3]]);
                let host = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
                Ok(SockName::Inet { host, port })
            }
            af::UNIX => {
                let end = buf[2..NAME_LEN]
                    .iter()
                    .position(|&b| b == 0)
                    .map_or(NAME_LEN, |p| p + 2);
                let path = std::str::from_utf8(&buf[2..end])
                    .map_err(|_| NameDecodeError::BadPath)?
                    .to_owned();
                Ok(SockName::UnixPath(path))
            }
            af::INTERNAL => {
                let mut id = [0u8; 8];
                id.copy_from_slice(&buf[2..10]);
                Ok(SockName::Internal(u64::from_le_bytes(id)))
            }
            _ => Err(NameDecodeError::BadFamily { family }),
        }
    }
}

impl fmt::Display for SockName {
    /// Formats in the textual form used in trace logs and selection
    /// rules: `inet:<host>:<port>`, `unix:<path>`, or `pair:<id>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SockName::Inet { host, port } => write!(f, "inet:{host}:{port}"),
            SockName::UnixPath(path) => write!(f, "unix:{path}"),
            SockName::Internal(id) => write!(f, "pair:{id}"),
        }
    }
}

/// Error decoding a `NAME` field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameDecodeError {
    /// Fewer than [`NAME_LEN`] bytes were available.
    Truncated {
        /// How many bytes were available.
        have: usize,
    },
    /// The address-family tag is not one we encode.
    BadFamily {
        /// The unknown family value.
        family: u16,
    },
    /// A UNIX-domain path was not valid UTF-8.
    BadPath,
}

impl fmt::Display for NameDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameDecodeError::Truncated { have } => {
                write!(f, "socket name truncated: {have} of {NAME_LEN} bytes")
            }
            NameDecodeError::BadFamily { family } => {
                write!(f, "unknown address family {family}")
            }
            NameDecodeError::BadPath => f.write_str("unix path is not valid utf-8"),
        }
    }
}

impl std::error::Error for NameDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inet_round_trip() {
        let n = SockName::inet(0xdead_beef, 65535);
        assert_eq!(SockName::decode(&n.encode()).unwrap(), n);
    }

    #[test]
    fn unix_round_trip_short_path() {
        let n = SockName::unix("/tmp/s");
        assert_eq!(SockName::decode(&n.encode()).unwrap(), n);
    }

    #[test]
    fn unix_path_truncated_consistently() {
        // Paths longer than 14 bytes truncate, but two encodings of the
        // same long path still match byte-for-byte — which is what
        // connection pairing in the analysis requires.
        let long = "/usr/tmp/a-very-long-socket-name";
        let a = SockName::unix(long).encode();
        let b = SockName::unix(long).encode();
        assert_eq!(a, b);
        let decoded = SockName::decode(&a).unwrap();
        assert_eq!(decoded, SockName::unix(&long[..14]));
    }

    #[test]
    fn unix_path_exactly_fourteen_bytes() {
        let p = "/tmp/12345678"; // 13 bytes
        assert_eq!(p.len(), 13);
        let n = SockName::unix(p);
        assert_eq!(SockName::decode(&n.encode()).unwrap(), n);
        let p14 = "/tmp/123456789"; // 14 bytes: fills the field, no NUL
        assert_eq!(p14.len(), 14);
        let n14 = SockName::unix(p14);
        assert_eq!(SockName::decode(&n14.encode()).unwrap(), n14);
    }

    #[test]
    fn internal_round_trip() {
        let n = SockName::Internal(u64::MAX - 7);
        assert_eq!(SockName::decode(&n.encode()).unwrap(), n);
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let n = SockName::inet(1, 2).encode();
        assert_eq!(
            SockName::decode(&n[..8]),
            Err(NameDecodeError::Truncated { have: 8 })
        );
    }

    #[test]
    fn unknown_family_is_an_error() {
        let mut buf = [0u8; NAME_LEN];
        buf[0] = 9;
        assert_eq!(
            SockName::decode(&buf),
            Err(NameDecodeError::BadFamily { family: 9 })
        );
    }

    #[test]
    fn wire_len_reflects_form() {
        assert_eq!(SockName::inet(1, 2).wire_len(), 8);
        assert_eq!(SockName::unix("/a").wire_len(), 4);
        assert_eq!(SockName::Internal(1).wire_len(), 10);
        // wire_len is never zero: zero means "name unavailable".
        assert_ne!(SockName::unix("").wire_len(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SockName::inet(5, 80).to_string(), "inet:5:80");
        assert_eq!(SockName::unix("/tmp/x").to_string(), "unix:/tmp/x");
        assert_eq!(SockName::Internal(3).to_string(), "pair:3");
    }
}
