//! Meter message formats for the distributed programs monitor.
//!
//! This crate is the Rust equivalent of the 4.2BSD include files
//! `<meterflags.h>` and `<sys/metermsgs.h>` described in the paper
//! *A Distributed Programs Monitor for Berkeley UNIX* (Miller,
//! Macrander & Sechrest, ICDCS 1985), Appendix A and Appendix C.
//!
//! Every time a metered event occurs, the (simulated) kernel creates a
//! *meter message* consisting of a [`MeterHeader`] common to all
//! messages and a body particular to the message type. The messages are
//! buffered in the kernel and eventually delivered to a *filter*
//! process over the meter connection, a stream socket hidden from the
//! metered process's descriptor table.
//!
//! The wire layout reproduced here is byte-for-byte the layout of the
//! paper's C structs on a VAX (little-endian, 4-byte alignment):
//! `long` is 4 bytes, `short` 2 bytes, `SOCKET` (a file-table-entry
//! address) 4 bytes, and `NAME` (`struct sockaddr`) 16 bytes.
//!
//! # Example
//!
//! ```
//! use dpm_meter::{MeterHeader, MeterMsg, MeterBody, MeterSendMsg, SockName};
//!
//! let msg = MeterMsg {
//!     header: MeterHeader { size: 0, machine: 3, cpu_time: 120, seq: 0, proc_time: 40,
//!                           trace_type: dpm_meter::trace_type::SEND },
//!     body: MeterBody::Send(MeterSendMsg {
//!         pid: 2120, pc: 0x452, sock: 5, msg_length: 64,
//!         dest_name: Some(SockName::inet(1, 1701)),
//!     }),
//! };
//! let bytes = msg.encode();
//! let (back, used) = MeterMsg::decode(&bytes)?;
//! assert_eq!(used, bytes.len());
//! assert_eq!(back.body, msg.body);
//! assert_eq!(back.header.size as usize, bytes.len());
//! # Ok::<(), dpm_meter::DecodeError>(())
//! ```

#![warn(missing_docs)]

pub mod flags;
pub mod msg;
pub mod name;

pub use flags::MeterFlags;
pub use msg::{
    trace_type, DecodeError, MeterAccept, MeterBody, MeterConnect, MeterDecoder, MeterDestSock,
    MeterDup, MeterFork, MeterHeader, MeterMsg, MeterRecord, MeterRecvCall, MeterRecvMsg,
    MeterSendMsg, MeterSockCrt, MeterTermProc, TermReason, HEADER_LEN, MAX_METER_MSG,
};
pub use name::{NameDecodeError, SockName, NAME_LEN};
