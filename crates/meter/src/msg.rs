//! Meter message wire formats — the Rust `<sys/metermsgs.h>`.
//!
//! Each message consists of a [`MeterHeader`], whose format is common
//! to all messages, and data particular to the message type (Appendix
//! A of the paper). The encodings here match the layout of the paper's
//! C structs on a VAX: little-endian, 4-byte alignment, `long` = 4
//! bytes, `short` = 2 bytes, `SOCKET` = 4 bytes (a file-table-entry
//! address), `NAME` = 16 bytes (`struct sockaddr`).
//!
//! The paper's Appendix A declares bodies for accept, connect, dup,
//! fork, receive-call, receive, send and socket-create events. The
//! `M_DESTSOCKET` and `M_TERMPROC` flags exist in `<meterflags.h>` but
//! their bodies are not listed in Appendix A; [`MeterDestSock`] and
//! [`MeterTermProc`] supply the obvious layouts and are documented as
//! reconstructions.

use crate::name::{NameDecodeError, SockName, NAME_LEN};
use std::fmt;

/// `traceType` values identifying the event kind of a meter message.
///
/// `SEND` is 1, matching the event record description of Fig. 3.2
/// (`SEND 1, ...`) and the selection-rule examples (`type=1` selects
/// send events). `ACCEPT` is 8, matching the rule
/// `type=8, sockName=peerName` of Fig. 3.4, which only makes sense for
/// a record carrying both names.
pub mod trace_type {
    /// Process sent a message.
    pub const SEND: u32 = 1;
    /// Process called a receive routine (may block).
    pub const RECEIVECALL: u32 = 2;
    /// Process received a message.
    pub const RECEIVE: u32 = 3;
    /// Process created a socket.
    pub const SOCKET: u32 = 4;
    /// Process duplicated a socket or file descriptor.
    pub const DUP: u32 = 5;
    /// Process closed a socket.
    pub const DESTSOCKET: u32 = 6;
    /// Process forked.
    pub const FORK: u32 = 7;
    /// Process accepted a connection.
    pub const ACCEPT: u32 = 8;
    /// Process initiated a connection.
    pub const CONNECT: u32 = 9;
    /// Process terminated.
    pub const TERMPROC: u32 = 10;

    /// The `setflags` name of a trace type, e.g. `"send"`.
    pub fn name(t: u32) -> Option<&'static str> {
        Some(match t {
            SEND => "send",
            RECEIVECALL => "receivecall",
            RECEIVE => "receive",
            SOCKET => "socket",
            DUP => "dup",
            DESTSOCKET => "destsocket",
            FORK => "fork",
            ACCEPT => "accept",
            CONNECT => "connect",
            TERMPROC => "termproc",
            _ => return None,
        })
    }
}

/// Size in bytes of the encoded [`MeterHeader`].
pub const HEADER_LEN: usize = 24;

/// Upper bound on the size of one encoded meter message, in bytes.
///
/// The kernel metering code buffers whole messages, so every consumer
/// of the stream — reassembly in the filter, the daemon's relay, test
/// harnesses — shares one notion of "implausibly large". A header
/// whose `size` field exceeds this bound is treated as stream
/// corruption rather than a gigantic record. The real bodies are tiny
/// (the largest, accept, is 24 bytes plus two 16-byte names); the
/// bound is a full 4.2BSD page, leaving generous headroom. Asserted
/// against [`MeterMsg::encode`] in a unit test.
pub const MAX_METER_MSG: usize = 4096;

/// The standard header carried by every meter message.
///
/// ```text
/// offset  size  field
///      0     4  size       -- total message size in bytes
///      4     2  machine    -- machine on which process runs
///      6     2  (padding)
///      8     4  cpuTime    -- local clock, milliseconds
///     12     4  seq        -- per-process sequence (paper: dummy)
///     16     4  procTime   -- time charged to the user process, ms
///     20     4  traceType  -- type of message
/// ```
///
/// The paper's header carries an unused `dummy` word at offset 12;
/// this implementation repurposes it as a per-process **sequence
/// number** so the filter can discard duplicate records delivered by
/// at-least-once retransmission. A value of `0` means *unsequenced*
/// (the paper's original layout); the kernel stamps sequences starting
/// at 1. Wire size and all other offsets are unchanged.
///
/// The system clock time (`cpu_time`) is useful for establishing the
/// order of events *on a particular machine*; the separate machines'
/// times only roughly correspond to a global time (§4.1). `proc_time`
/// is updated in increments of 10 ms, so estimates based on it must
/// recognize that granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MeterHeader {
    /// Total size of the encoded message. Filled in by
    /// [`MeterMsg::encode`]; a caller-supplied value is overwritten.
    pub size: u32,
    /// Machine (host id) on which the process runs.
    pub machine: u16,
    /// Reading of the machine's local clock, in milliseconds.
    pub cpu_time: u32,
    /// Per-process sequence number, stamped by the kernel metering
    /// code in the header word the paper leaves unused (`dummy`).
    /// `0` means unsequenced; real sequences start at 1 and increase
    /// by one per emitted message of the same process.
    pub seq: u32,
    /// CPU time charged to the user process, in milliseconds,
    /// quantized to 10 ms.
    pub proc_time: u32,
    /// Event kind; one of the [`trace_type`] constants.
    pub trace_type: u32,
}

impl MeterHeader {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.size.to_le_bytes());
        out.extend_from_slice(&self.machine.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // padding
        out.extend_from_slice(&self.cpu_time.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes()); // paper: dummy
        out.extend_from_slice(&self.proc_time.to_le_bytes());
        out.extend_from_slice(&self.trace_type.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Result<MeterHeader, DecodeError> {
        if buf.len() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                need: HEADER_LEN,
                have: buf.len(),
            });
        }
        Ok(MeterHeader {
            size: read_u32(buf, 0),
            machine: u16::from_le_bytes([buf[4], buf[5]]),
            cpu_time: read_u32(buf, 8),
            seq: read_u32(buf, 12),
            proc_time: read_u32(buf, 16),
            trace_type: read_u32(buf, 20),
        })
    }
}

fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Writes an optional name as a `nameLen` field. Length zero means the
/// name was not available to the metering software (§4.1), e.g. the
/// recipient of a `write` across a connection.
fn encode_opt_name_len(name: &Option<SockName>, out: &mut Vec<u8>) {
    out.extend_from_slice(&name.as_ref().map_or(0, SockName::wire_len).to_le_bytes());
}

fn encode_opt_name(name: &Option<SockName>, out: &mut Vec<u8>) {
    match name {
        Some(n) => out.extend_from_slice(&n.encode()),
        None => out.extend_from_slice(&[0u8; NAME_LEN]),
    }
}

fn decode_opt_name(buf: &[u8], len_field: u32) -> Result<Option<SockName>, DecodeError> {
    if len_field == 0 {
        return Ok(None);
    }
    Ok(Some(SockName::decode(buf)?))
}

/// `struct MeterSendMsg`: a message was sent (trace type
/// [`trace_type::SEND`]). All the varieties of `write()` — `write`,
/// `writev`, `send`, `sendto`, `sendmsg` — produce this one event
/// (§3.2).
///
/// Body layout: `pid@0 pc@4 sock@8 msgLength@12 destNameLen@16
/// destName@20(16 bytes)`, exactly the description of Fig. 3.2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeterSendMsg {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Socket (file-table-entry address) where the message was sent.
    pub sock: u32,
    /// Bytes in the message.
    pub msg_length: u32,
    /// Destination name, when available. `None` when writing across a
    /// connection, where the recipient's name is not available to the
    /// metering software; the analysis recovers it by pairing sockets.
    pub dest_name: Option<SockName>,
}

/// `struct MeterRecvCMsg`: a receive routine was called (trace type
/// [`trace_type::RECEIVECALL`]). Emitted when the process *asks* to
/// receive, before it possibly blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterRecvCall {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Socket receiving the message.
    pub sock: u32,
}

/// `struct MeterRecvMsg`: a message was received (trace type
/// [`trace_type::RECEIVE`]). All the varieties of `read()` — `read`,
/// `readv`, `recv`, `recvfrom`, `recvmsg` — produce this one event.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeterRecvMsg {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Socket receiving the message.
    pub sock: u32,
    /// Bytes in the message actually delivered.
    pub msg_length: u32,
    /// Name of the socket the message came from, when available.
    pub source_name: Option<SockName>,
}

/// `struct MeterAccept`: a connection was accepted (trace type
/// [`trace_type::ACCEPT`]). The accepting process's original socket is
/// only used for the establishment of connections; data transfer is
/// done through the new connection socket (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeterAccept {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Socket accepting the connection.
    pub sock: u32,
    /// New socket created for the connection.
    pub new_sock: u32,
    /// Name bound to the accepting socket.
    pub sock_name: Option<SockName>,
    /// Name bound to the connecting socket.
    pub peer_name: Option<SockName>,
}

/// `struct MeterConnect`: a connection was initiated (trace type
/// [`trace_type::CONNECT`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeterConnect {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Socket requesting the connection.
    pub sock: u32,
    /// Name bound to the connecting socket.
    pub sock_name: Option<SockName>,
    /// Name bound to the accepting socket.
    pub peer_name: Option<SockName>,
}

/// `struct MeterDup`: a socket or file descriptor was duplicated
/// (trace type [`trace_type::DUP`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterDup {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Socket being duplicated.
    pub sock: u32,
    /// Duplicate socket.
    pub new_sock: u32,
}

/// `struct MeterFork`: the process forked (trace type
/// [`trace_type::FORK`]). The child inherits the parent's meter socket
/// and meter flags (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterFork {
    /// Parent process's ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Child process's ID.
    pub new_pid: u32,
}

/// `struct MeterSockCrt`: a socket was created (trace type
/// [`trace_type::SOCKET`]). A `socketpair()` is not treated differently
/// from a pair of socket creates followed by separate connects and
/// accepts; all four messages are produced (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterSockCrt {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// File-table entry of the new socket.
    pub sock: u32,
    /// New socket's domain (1 = UNIX, 2 = Internet, as in 4.2BSD).
    pub domain: u32,
    /// New socket's type (1 = stream, 2 = datagram, as in 4.2BSD).
    pub sock_type: u32,
    /// New socket's protocol (0 = default).
    pub protocol: u32,
}

/// Destroy-socket event (trace type [`trace_type::DESTSOCKET`]).
///
/// The `M_DESTSOCKET` flag is listed in `<meterflags.h>` ("process
/// closes a socket") but Appendix A does not show its body; this is the
/// evident reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterDestSock {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of the system call.
    pub pc: u32,
    /// Socket being closed.
    pub sock: u32,
}

/// Why a process terminated, carried in [`MeterTermProc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TermReason {
    /// The process's program ran to completion ("reason: normal" in
    /// the Appendix-B transcript).
    #[default]
    Normal,
    /// The process was killed by the controller or a signal.
    Killed,
}

impl fmt::Display for TermReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TermReason::Normal => "normal",
            TermReason::Killed => "killed",
        })
    }
}

/// Process-termination event (trace type [`trace_type::TERMPROC`]).
///
/// As part of process termination, any unsent meter messages are
/// forwarded to the filter (§3.2); this record is the last one a
/// process produces. Reconstructed like [`MeterDestSock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeterTermProc {
    /// Process ID.
    pub pid: u32,
    /// PC at the time of termination.
    pub pc: u32,
    /// Why the process terminated.
    pub reason: TermReason,
}

/// The body of a meter message: `union` of the per-event structs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MeterBody {
    /// See [`MeterAccept`].
    Accept(MeterAccept),
    /// See [`MeterConnect`].
    Connect(MeterConnect),
    /// See [`MeterDup`].
    Dup(MeterDup),
    /// See [`MeterFork`].
    Fork(MeterFork),
    /// See [`MeterRecvCall`].
    RecvCall(MeterRecvCall),
    /// See [`MeterRecvMsg`].
    Recv(MeterRecvMsg),
    /// See [`MeterSendMsg`].
    Send(MeterSendMsg),
    /// See [`MeterSockCrt`].
    SockCrt(MeterSockCrt),
    /// See [`MeterDestSock`].
    DestSock(MeterDestSock),
    /// See [`MeterTermProc`].
    TermProc(MeterTermProc),
}

impl MeterBody {
    /// The [`trace_type`] constant for this body.
    pub fn trace_type(&self) -> u32 {
        match self {
            MeterBody::Send(_) => trace_type::SEND,
            MeterBody::RecvCall(_) => trace_type::RECEIVECALL,
            MeterBody::Recv(_) => trace_type::RECEIVE,
            MeterBody::SockCrt(_) => trace_type::SOCKET,
            MeterBody::Dup(_) => trace_type::DUP,
            MeterBody::DestSock(_) => trace_type::DESTSOCKET,
            MeterBody::Fork(_) => trace_type::FORK,
            MeterBody::Accept(_) => trace_type::ACCEPT,
            MeterBody::Connect(_) => trace_type::CONNECT,
            MeterBody::TermProc(_) => trace_type::TERMPROC,
        }
    }

    /// The process id common to every body.
    pub fn pid(&self) -> u32 {
        match self {
            MeterBody::Send(b) => b.pid,
            MeterBody::RecvCall(b) => b.pid,
            MeterBody::Recv(b) => b.pid,
            MeterBody::SockCrt(b) => b.pid,
            MeterBody::Dup(b) => b.pid,
            MeterBody::DestSock(b) => b.pid,
            MeterBody::Fork(b) => b.pid,
            MeterBody::Accept(b) => b.pid,
            MeterBody::Connect(b) => b.pid,
            MeterBody::TermProc(b) => b.pid,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            MeterBody::Send(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
                out.extend_from_slice(&b.msg_length.to_le_bytes());
                encode_opt_name_len(&b.dest_name, out);
                encode_opt_name(&b.dest_name, out);
            }
            MeterBody::RecvCall(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
            }
            MeterBody::Recv(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
                out.extend_from_slice(&b.msg_length.to_le_bytes());
                encode_opt_name_len(&b.source_name, out);
                encode_opt_name(&b.source_name, out);
            }
            MeterBody::SockCrt(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
                out.extend_from_slice(&b.domain.to_le_bytes());
                out.extend_from_slice(&b.sock_type.to_le_bytes());
                out.extend_from_slice(&b.protocol.to_le_bytes());
            }
            MeterBody::Dup(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
                out.extend_from_slice(&b.new_sock.to_le_bytes());
            }
            MeterBody::DestSock(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
            }
            MeterBody::Fork(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.new_pid.to_le_bytes());
            }
            MeterBody::Accept(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
                out.extend_from_slice(&b.new_sock.to_le_bytes());
                encode_opt_name_len(&b.sock_name, out);
                encode_opt_name_len(&b.peer_name, out);
                encode_opt_name(&b.sock_name, out);
                encode_opt_name(&b.peer_name, out);
            }
            MeterBody::Connect(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                out.extend_from_slice(&b.sock.to_le_bytes());
                encode_opt_name_len(&b.sock_name, out);
                encode_opt_name_len(&b.peer_name, out);
                encode_opt_name(&b.sock_name, out);
                encode_opt_name(&b.peer_name, out);
            }
            MeterBody::TermProc(b) => {
                out.extend_from_slice(&b.pid.to_le_bytes());
                out.extend_from_slice(&b.pc.to_le_bytes());
                let reason: u32 = match b.reason {
                    TermReason::Normal => 0,
                    TermReason::Killed => 1,
                };
                out.extend_from_slice(&reason.to_le_bytes());
            }
        }
    }

    fn decode(trace: u32, buf: &[u8]) -> Result<MeterBody, DecodeError> {
        let need = |n: usize| -> Result<(), DecodeError> {
            if buf.len() < n {
                Err(DecodeError::Truncated {
                    need: n + HEADER_LEN,
                    have: buf.len() + HEADER_LEN,
                })
            } else {
                Ok(())
            }
        };
        match trace {
            trace_type::SEND => {
                need(20 + NAME_LEN)?;
                let len = read_u32(buf, 16);
                Ok(MeterBody::Send(MeterSendMsg {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                    msg_length: read_u32(buf, 12),
                    dest_name: decode_opt_name(&buf[20..], len)?,
                }))
            }
            trace_type::RECEIVECALL => {
                need(12)?;
                Ok(MeterBody::RecvCall(MeterRecvCall {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                }))
            }
            trace_type::RECEIVE => {
                need(20 + NAME_LEN)?;
                let len = read_u32(buf, 16);
                Ok(MeterBody::Recv(MeterRecvMsg {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                    msg_length: read_u32(buf, 12),
                    source_name: decode_opt_name(&buf[20..], len)?,
                }))
            }
            trace_type::SOCKET => {
                need(24)?;
                Ok(MeterBody::SockCrt(MeterSockCrt {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                    domain: read_u32(buf, 12),
                    sock_type: read_u32(buf, 16),
                    protocol: read_u32(buf, 20),
                }))
            }
            trace_type::DUP => {
                need(16)?;
                Ok(MeterBody::Dup(MeterDup {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                    new_sock: read_u32(buf, 12),
                }))
            }
            trace_type::DESTSOCKET => {
                need(12)?;
                Ok(MeterBody::DestSock(MeterDestSock {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                }))
            }
            trace_type::FORK => {
                need(12)?;
                Ok(MeterBody::Fork(MeterFork {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    new_pid: read_u32(buf, 8),
                }))
            }
            trace_type::ACCEPT => {
                need(24 + 2 * NAME_LEN)?;
                let sock_len = read_u32(buf, 16);
                let peer_len = read_u32(buf, 20);
                Ok(MeterBody::Accept(MeterAccept {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                    new_sock: read_u32(buf, 12),
                    sock_name: decode_opt_name(&buf[24..], sock_len)?,
                    peer_name: decode_opt_name(&buf[24 + NAME_LEN..], peer_len)?,
                }))
            }
            trace_type::CONNECT => {
                need(20 + 2 * NAME_LEN)?;
                let sock_len = read_u32(buf, 12);
                let peer_len = read_u32(buf, 16);
                Ok(MeterBody::Connect(MeterConnect {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    sock: read_u32(buf, 8),
                    sock_name: decode_opt_name(&buf[20..], sock_len)?,
                    peer_name: decode_opt_name(&buf[20 + NAME_LEN..], peer_len)?,
                }))
            }
            trace_type::TERMPROC => {
                need(12)?;
                Ok(MeterBody::TermProc(MeterTermProc {
                    pid: read_u32(buf, 0),
                    pc: read_u32(buf, 4),
                    reason: match read_u32(buf, 8) {
                        0 => TermReason::Normal,
                        _ => TermReason::Killed,
                    },
                }))
            }
            other => Err(DecodeError::UnknownTraceType { trace_type: other }),
        }
    }
}

/// A complete meter message: standard header plus event body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MeterMsg {
    /// The standard header.
    pub header: MeterHeader,
    /// The per-event body. Its kind must agree with
    /// `header.trace_type`; [`MeterMsg::encode`] enforces this by
    /// writing the body's own trace type.
    pub body: MeterBody,
}

impl MeterMsg {
    /// Encodes into the on-wire byte layout of Appendix A.
    ///
    /// The header's `size` and `trace_type` fields are derived from
    /// the body, so the caller need not keep them in sync.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 56);
        let mut header = self.header;
        header.trace_type = self.body.trace_type();
        header.encode_into(&mut out);
        self.body.encode_into(&mut out);
        let size = out.len() as u32;
        out[0..4].copy_from_slice(&size.to_le_bytes());
        out
    }

    /// Appends the encoding to `out` and returns the encoded length.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let bytes = self.encode();
        out.extend_from_slice(&bytes);
        bytes.len()
    }

    /// Decodes one message from the front of `buf`, returning the
    /// message and the number of bytes consumed (the header's `size`).
    ///
    /// Meter connections are streams, so several buffered messages
    /// arrive concatenated; call this repeatedly, advancing by the
    /// returned length — or use [`MeterDecoder`], which does the
    /// advancing for you and borrows rather than copies. This is a
    /// thin wrapper over [`MeterRecord::parse`] + [`MeterRecord::to_msg`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the buffer does not hold a complete
    /// message, the size field is implausible, the trace type is
    /// unknown, or a name field is malformed.
    pub fn decode(buf: &[u8]) -> Result<(MeterMsg, usize), DecodeError> {
        let record = MeterRecord::parse(buf)?;
        Ok((record.to_msg()?, record.len()))
    }

    /// Decodes a whole buffer of concatenated messages.
    ///
    /// A thin wrapper around [`MeterDecoder`]; use the decoder
    /// directly to avoid materializing every message up front.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed message; previously decoded
    /// messages are discarded.
    pub fn decode_all(buf: &[u8]) -> Result<Vec<MeterMsg>, DecodeError> {
        let mut decoder = MeterDecoder::new(buf);
        let mut out = Vec::new();
        for record in decoder.by_ref() {
            out.push(record?.to_msg()?);
        }
        // The decoder treats a partial tail as "wait for more input";
        // for this whole-buffer API it is an error, as it always was.
        match decoder.remainder() {
            [] => Ok(out),
            tail => Err(MeterRecord::parse(tail).expect_err("tail was unparseable")),
        }
    }
}

/// One complete, framed meter message borrowed from a stream buffer.
///
/// A `MeterRecord` has a validated header and a complete frame (the
/// buffer holds all `size` bytes), but its body has *not* been
/// decoded: field access ([`machine`](MeterRecord::machine),
/// [`trace_type`](MeterRecord::trace_type), …) reads straight from the
/// borrowed bytes, and [`to_msg`](MeterRecord::to_msg) materializes an
/// owned [`MeterMsg`] on demand. This is the zero-copy currency of the
/// filter pipeline: reassembly hands records to selection rules
/// without allocating.
#[derive(Debug, Clone, Copy)]
pub struct MeterRecord<'a> {
    bytes: &'a [u8],
}

impl<'a> MeterRecord<'a> {
    /// Parses one record from the front of `buf` without copying.
    ///
    /// Validates the header and the frame bounds only: the size field
    /// must lie in `HEADER_LEN..=MAX_METER_MSG` and the buffer must
    /// hold the whole frame. Body-level problems (unknown trace type,
    /// bad names) are reported by [`MeterRecord::to_msg`].
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] when the buffer holds a prefix of a
    /// record; [`DecodeError::BadSize`] when the size field is out of
    /// range (stream corruption).
    pub fn parse(buf: &'a [u8]) -> Result<MeterRecord<'a>, DecodeError> {
        let header = MeterHeader::decode(buf)?;
        let size = header.size as usize;
        if !(HEADER_LEN..=MAX_METER_MSG).contains(&size) {
            return Err(DecodeError::BadSize { size: header.size });
        }
        if buf.len() < size {
            return Err(DecodeError::Truncated {
                need: size,
                have: buf.len(),
            });
        }
        Ok(MeterRecord {
            bytes: &buf[..size],
        })
    }

    /// The record's complete wire bytes (header + body).
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Total length of the record in bytes (the header's `size`).
    #[allow(clippy::len_without_is_empty)] // never empty: >= HEADER_LEN
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// The body bytes following the header.
    pub fn body_bytes(&self) -> &'a [u8] {
        &self.bytes[HEADER_LEN..]
    }

    /// The decoded header, with `size` normalized to the frame length.
    pub fn header(&self) -> MeterHeader {
        let mut h = MeterHeader::decode(self.bytes).expect("frame was validated");
        h.size = self.bytes.len() as u32;
        h
    }

    /// The machine field, read in place.
    pub fn machine(&self) -> u16 {
        u16::from_le_bytes([self.bytes[4], self.bytes[5]])
    }

    /// The trace-type field, read in place.
    pub fn trace_type(&self) -> u32 {
        read_u32(self.bytes, 20)
    }

    /// The per-process sequence number, read in place (`0` means
    /// unsequenced; see [`MeterHeader::seq`]).
    pub fn seq(&self) -> u32 {
        read_u32(self.bytes, 12)
    }

    /// Decodes the full message, allocating owned bodies.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownTraceType`], [`DecodeError::Truncated`]
    /// (body shorter than its trace type requires) or
    /// [`DecodeError::BadName`].
    pub fn to_msg(&self) -> Result<MeterMsg, DecodeError> {
        let header = self.header();
        let body = MeterBody::decode(header.trace_type, self.body_bytes())?;
        Ok(MeterMsg { header, body })
    }
}

/// A streaming, zero-copy iterator over concatenated meter messages.
///
/// Yields one [`MeterRecord`] per complete frame; stops (returns
/// `None`) at the end of the buffer or at a clean partial tail — use
/// [`remainder`](MeterDecoder::remainder) to recover bytes that need
/// more input stitched on. A malformed frame is yielded once as
/// `Err`, after which the iterator is fused; `remainder` then points
/// at the offending bytes so callers can resynchronize.
///
/// ```
/// use dpm_meter::{MeterDecoder, MeterMsg, MeterBody, MeterFork, MeterHeader, trace_type};
/// let msg = MeterMsg {
///     header: MeterHeader { trace_type: trace_type::FORK, ..Default::default() },
///     body: MeterBody::Fork(MeterFork { pid: 1, pc: 2, new_pid: 3 }),
/// };
/// let mut wire = msg.encode();
/// wire.extend_from_slice(&msg.encode());
/// let records: Vec<_> = MeterDecoder::new(&wire).collect::<Result<_, _>>().unwrap();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].trace_type(), trace_type::FORK);
/// assert_eq!(records[0].to_msg().unwrap().body, msg.body);
/// ```
#[derive(Debug, Clone)]
pub struct MeterDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    fused: bool,
}

impl<'a> MeterDecoder<'a> {
    /// Starts decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> MeterDecoder<'a> {
        MeterDecoder {
            buf,
            pos: 0,
            fused: false,
        }
    }

    /// Bytes consumed by successfully yielded records.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// The unconsumed tail: empty after a fully decoded buffer, a
    /// partial frame awaiting more input, or the malformed bytes that
    /// stopped iteration.
    pub fn remainder(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
}

impl<'a> Iterator for MeterDecoder<'a> {
    type Item = Result<MeterRecord<'a>, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.fused || self.pos >= self.buf.len() {
            return None;
        }
        match MeterRecord::parse(&self.buf[self.pos..]) {
            Ok(record) => {
                self.pos += record.len();
                Some(Ok(record))
            }
            Err(DecodeError::Truncated { .. }) => {
                // Clean partial tail: wait for more input.
                self.fused = true;
                None
            }
            Err(e) => {
                self.fused = true;
                Some(Err(e))
            }
        }
    }
}

/// Error decoding a meter message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer holds fewer bytes than the message needs.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The header's size field is smaller than a header.
    BadSize {
        /// The offending size.
        size: u32,
    },
    /// The header's trace type is not one of [`trace_type`]'s values.
    UnknownTraceType {
        /// The offending value.
        trace_type: u32,
    },
    /// A socket name field could not be decoded.
    BadName(NameDecodeError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "meter message truncated: need {need} bytes, have {have}")
            }
            DecodeError::BadSize { size } => write!(f, "meter message size {size} is too small"),
            DecodeError::UnknownTraceType { trace_type } => {
                write!(f, "unknown trace type {trace_type}")
            }
            DecodeError::BadName(e) => write!(f, "bad socket name: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::BadName(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NameDecodeError> for DecodeError {
    fn from(e: NameDecodeError) -> DecodeError {
        DecodeError::BadName(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(trace: u32) -> MeterHeader {
        MeterHeader {
            size: 0,
            machine: 5,
            cpu_time: 9_999,
            seq: 0,
            proc_time: 40,
            trace_type: trace,
        }
    }

    fn round_trip(body: MeterBody) -> MeterMsg {
        let msg = MeterMsg {
            header: header(body.trace_type()),
            body,
        };
        let bytes = msg.encode();
        let (back, used) = MeterMsg::decode(&bytes).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(back.body, msg.body);
        assert_eq!(back.header.machine, msg.header.machine);
        assert_eq!(back.header.cpu_time, msg.header.cpu_time);
        assert_eq!(back.header.proc_time, msg.header.proc_time);
        assert_eq!(back.header.trace_type, msg.body.trace_type());
        back
    }

    #[test]
    fn send_round_trip_with_and_without_name() {
        round_trip(MeterBody::Send(MeterSendMsg {
            pid: 2120,
            pc: 0x452,
            sock: 4,
            msg_length: 128,
            dest_name: Some(SockName::inet(0, 228)),
        }));
        round_trip(MeterBody::Send(MeterSendMsg {
            pid: 2120,
            pc: 0x452,
            sock: 4,
            msg_length: 128,
            dest_name: None,
        }));
    }

    #[test]
    fn every_body_round_trips() {
        let name = || Some(SockName::unix("/tmp/f1"));
        round_trip(MeterBody::RecvCall(MeterRecvCall {
            pid: 1,
            pc: 2,
            sock: 3,
        }));
        round_trip(MeterBody::Recv(MeterRecvMsg {
            pid: 1,
            pc: 2,
            sock: 3,
            msg_length: 4,
            source_name: name(),
        }));
        round_trip(MeterBody::SockCrt(MeterSockCrt {
            pid: 1,
            pc: 2,
            sock: 3,
            domain: 2,
            sock_type: 1,
            protocol: 0,
        }));
        round_trip(MeterBody::Dup(MeterDup {
            pid: 1,
            pc: 2,
            sock: 3,
            new_sock: 4,
        }));
        round_trip(MeterBody::DestSock(MeterDestSock {
            pid: 1,
            pc: 2,
            sock: 3,
        }));
        round_trip(MeterBody::Fork(MeterFork {
            pid: 1,
            pc: 2,
            new_pid: 99,
        }));
        round_trip(MeterBody::Accept(MeterAccept {
            pid: 1,
            pc: 2,
            sock: 3,
            new_sock: 4,
            sock_name: name(),
            peer_name: Some(SockName::inet(7, 9)),
        }));
        round_trip(MeterBody::Connect(MeterConnect {
            pid: 1,
            pc: 2,
            sock: 3,
            sock_name: Some(SockName::Internal(12)),
            peer_name: name(),
        }));
        round_trip(MeterBody::TermProc(MeterTermProc {
            pid: 1,
            pc: 2,
            reason: TermReason::Killed,
        }));
    }

    /// Golden test for Fig. 3.2 / Appendix A: the send event's fields
    /// sit at the documented byte offsets *within the body*:
    /// `pid,0,4  pc,4,4  sock,8,4  msgLength,12,4  destNameLen,16,4
    /// destName,20,16`.
    #[test]
    fn send_field_offsets_match_figure_3_2() {
        let msg = MeterMsg {
            header: header(trace_type::SEND),
            body: MeterBody::Send(MeterSendMsg {
                pid: 0x11111111,
                pc: 0x22222222,
                sock: 0x33333333,
                msg_length: 0x44444444,
                dest_name: Some(SockName::inet(0x0d9d_020c, 0x0102)),
            }),
        };
        let b = msg.encode();
        let body = &b[HEADER_LEN..];
        assert_eq!(read_u32(body, 0), 0x11111111, "pid at offset 0");
        assert_eq!(read_u32(body, 4), 0x22222222, "pc at offset 4");
        assert_eq!(read_u32(body, 8), 0x33333333, "sock at offset 8");
        assert_eq!(read_u32(body, 12), 0x44444444, "msgLength at offset 12");
        assert_eq!(read_u32(body, 16), 8, "destNameLen at offset 16");
        assert_eq!(body.len(), 20 + NAME_LEN, "destName is the last 16 bytes");
        // Total message size: 24-byte header + 36-byte body.
        assert_eq!(b.len(), 60);
        assert_eq!(read_u32(&b, 0), 60, "header size field");
    }

    /// Golden test for Fig. 4.1: the accept message layout.
    #[test]
    fn accept_layout_matches_figure_4_1() {
        let msg = MeterMsg {
            header: header(trace_type::ACCEPT),
            body: MeterBody::Accept(MeterAccept {
                pid: 10,
                pc: 20,
                sock: 30,
                new_sock: 40,
                sock_name: Some(SockName::inet(1, 2)),
                peer_name: Some(SockName::inet(3, 4)),
            }),
        };
        let b = msg.encode();
        // header: size, machine, cpuTime, procTime, traceType
        assert_eq!(read_u32(&b, 0) as usize, b.len());
        assert_eq!(u16::from_le_bytes([b[4], b[5]]), 5);
        assert_eq!(read_u32(&b, 8), 9_999);
        assert_eq!(read_u32(&b, 16), 40);
        assert_eq!(read_u32(&b, 20), trace_type::ACCEPT);
        let body = &b[HEADER_LEN..];
        assert_eq!(read_u32(body, 0), 10, "pid");
        assert_eq!(read_u32(body, 4), 20, "pc");
        assert_eq!(read_u32(body, 8), 30, "socket accepting connection");
        assert_eq!(read_u32(body, 12), 40, "new socket created for connection");
        assert_eq!(read_u32(body, 16), 8, "sockNameLen");
        assert_eq!(read_u32(body, 20), 8, "peerNameLen");
        assert_eq!(body.len(), 24 + 2 * NAME_LEN);
    }

    #[test]
    fn header_is_24_bytes_with_dummy() {
        let msg = MeterMsg {
            header: header(trace_type::FORK),
            body: MeterBody::Fork(MeterFork {
                pid: 1,
                pc: 2,
                new_pid: 3,
            }),
        };
        let b = msg.encode();
        assert_eq!(b.len(), HEADER_LEN + 12);
        // dummy field (offset 12) is always zero on the wire.
        assert_eq!(read_u32(&b, 12), 0);
    }

    #[test]
    fn decode_all_concatenated_stream() {
        let mut buf = Vec::new();
        let msgs: Vec<MeterMsg> = (0..5)
            .map(|i| MeterMsg {
                header: header(trace_type::FORK),
                body: MeterBody::Fork(MeterFork {
                    pid: i,
                    pc: 0,
                    new_pid: i + 100,
                }),
            })
            .collect();
        for m in &msgs {
            m.encode_into(&mut buf);
        }
        let decoded = MeterMsg::decode_all(&buf).unwrap();
        assert_eq!(decoded.len(), 5);
        for (d, m) in decoded.iter().zip(&msgs) {
            assert_eq!(d.body, m.body);
        }
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        let msg = MeterMsg {
            header: header(trace_type::SEND),
            body: MeterBody::Send(MeterSendMsg {
                pid: 1,
                pc: 2,
                sock: 3,
                msg_length: 4,
                dest_name: None,
            }),
        };
        let b = msg.encode();
        assert!(matches!(
            MeterMsg::decode(&b[..10]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            MeterMsg::decode(&b[..b.len() - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        let mut bad = b.clone();
        bad[20..24].copy_from_slice(&77u32.to_le_bytes());
        assert!(matches!(
            MeterMsg::decode(&bad),
            Err(DecodeError::UnknownTraceType { trace_type: 77 })
        ));
        let mut tiny = b;
        tiny[0..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            MeterMsg::decode(&tiny),
            Err(DecodeError::BadSize { size: 3 })
        ));
    }

    /// `MAX_METER_MSG` is an invariant of the wire format: nothing
    /// `encode` can produce comes anywhere near it, so a size field
    /// above it is always stream corruption.
    #[test]
    fn encoded_messages_never_exceed_max_meter_msg() {
        let name = || Some(SockName::unix("/tmp/a-very-long-path"));
        let bodies = [
            MeterBody::Send(MeterSendMsg {
                pid: u32::MAX,
                pc: u32::MAX,
                sock: u32::MAX,
                msg_length: u32::MAX,
                dest_name: name(),
            }),
            MeterBody::Recv(MeterRecvMsg {
                pid: 1,
                pc: 2,
                sock: 3,
                msg_length: 4,
                source_name: name(),
            }),
            MeterBody::Accept(MeterAccept {
                pid: 1,
                pc: 2,
                sock: 3,
                new_sock: 4,
                sock_name: name(),
                peer_name: name(),
            }),
            MeterBody::Connect(MeterConnect {
                pid: 1,
                pc: 2,
                sock: 3,
                sock_name: name(),
                peer_name: name(),
            }),
            MeterBody::SockCrt(MeterSockCrt {
                pid: 1,
                pc: 2,
                sock: 3,
                domain: 2,
                sock_type: 1,
                protocol: 0,
            }),
        ];
        for body in bodies {
            let msg = MeterMsg {
                header: header(body.trace_type()),
                body,
            };
            let n = msg.encode().len();
            assert!(
                n <= MAX_METER_MSG,
                "encoded {n} bytes exceeds MAX_METER_MSG ({MAX_METER_MSG})"
            );
        }
        // The largest body (accept: 24 bytes + two names) stays small.
        const { assert!(HEADER_LEN + 24 + 2 * NAME_LEN <= MAX_METER_MSG) };
    }

    #[test]
    fn decoder_iterates_stream_without_copying() {
        let msgs: Vec<MeterMsg> = (0..4)
            .map(|i| MeterMsg {
                header: header(trace_type::FORK),
                body: MeterBody::Fork(MeterFork {
                    pid: i,
                    pc: 0,
                    new_pid: i + 100,
                }),
            })
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            m.encode_into(&mut wire);
        }
        let mut decoder = MeterDecoder::new(&wire);
        for (i, m) in msgs.iter().enumerate() {
            let record = decoder.next().expect("record").expect("valid");
            // The record borrows the original wire bytes in place.
            assert_eq!(
                record.bytes().as_ptr(),
                wire[i * record.len()..].as_ptr(),
                "record {i} is a borrow, not a copy"
            );
            assert_eq!(record.machine(), 5);
            assert_eq!(record.trace_type(), trace_type::FORK);
            assert_eq!(record.to_msg().unwrap().body, m.body);
        }
        assert!(decoder.next().is_none());
        assert_eq!(decoder.consumed(), wire.len());
        assert!(decoder.remainder().is_empty());
    }

    #[test]
    fn decoder_stops_at_partial_tail_with_remainder() {
        let msg = MeterMsg {
            header: header(trace_type::FORK),
            body: MeterBody::Fork(MeterFork {
                pid: 1,
                pc: 2,
                new_pid: 3,
            }),
        };
        let mut wire = msg.encode();
        let full = wire.len();
        wire.extend_from_slice(&msg.encode()[..10]); // partial second frame
        let mut decoder = MeterDecoder::new(&wire);
        assert!(decoder.next().unwrap().is_ok());
        assert!(decoder.next().is_none(), "partial tail is not an error");
        assert_eq!(decoder.consumed(), full);
        assert_eq!(decoder.remainder().len(), 10);
    }

    #[test]
    fn decoder_fuses_on_bad_size_and_exposes_bad_tail() {
        let msg = MeterMsg {
            header: header(trace_type::FORK),
            body: MeterBody::Fork(MeterFork {
                pid: 1,
                pc: 2,
                new_pid: 3,
            }),
        };
        let mut wire = msg.encode();
        let good = wire.len();
        let mut bad = msg.encode();
        bad[0..4].copy_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(&bad);
        let mut decoder = MeterDecoder::new(&wire);
        assert!(decoder.next().unwrap().is_ok());
        assert!(matches!(
            decoder.next(),
            Some(Err(DecodeError::BadSize { size: 3 }))
        ));
        assert!(decoder.next().is_none(), "decoder is fused after an error");
        assert_eq!(decoder.remainder().len(), wire.len() - good);
    }

    #[test]
    fn oversize_size_field_is_corruption_not_truncation() {
        let msg = MeterMsg {
            header: header(trace_type::FORK),
            body: MeterBody::Fork(MeterFork {
                pid: 1,
                pc: 2,
                new_pid: 3,
            }),
        };
        let mut wire = msg.encode();
        wire[0..4].copy_from_slice(&(MAX_METER_MSG as u32 + 1).to_le_bytes());
        assert!(matches!(
            MeterRecord::parse(&wire),
            Err(DecodeError::BadSize { .. })
        ));
    }

    #[test]
    fn trace_type_names() {
        assert_eq!(trace_type::name(trace_type::SEND), Some("send"));
        assert_eq!(trace_type::name(trace_type::ACCEPT), Some("accept"));
        assert_eq!(trace_type::name(1234), None);
    }

    #[test]
    fn body_pid_accessor() {
        let b = MeterBody::Dup(MeterDup {
            pid: 42,
            pc: 0,
            sock: 1,
            new_sock: 2,
        });
        assert_eq!(b.pid(), 42);
        assert_eq!(b.trace_type(), trace_type::DUP);
    }
}
