//! Meter event flags — the Rust `<meterflags.h>`.
//!
//! A metered process carries a 32-bit mask in its process-table entry
//! indicating which events are to be metered (paper §3.2 and §4.1). One
//! selects the types of events to be metered by setting flags for the
//! process through the `setmeter(2)` system call; children inherit the
//! mask on `fork`.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Not, Sub};
use std::str::FromStr;

/// A set of meter event flags.
///
/// The bits mirror the constants of `<meterflags.h>`:
/// `M_ACCEPT`, `M_CONNECT`, `M_SEND`, `M_RECEIVECALL`, `M_RECEIVE`,
/// `M_SOCKET`, `M_DUP`, `M_DESTSOCKET`, `M_FORK`, `M_TERMPROC`,
/// `M_ALL`, and `M_IMMEDIATE`.
///
/// `M_IMMEDIATE` is not an event: it indicates that meter messages are
/// to be sent immediately rather than buffered for greater efficiency
/// (Appendix C). [`MeterFlags::ALL`] covers every *event* flag but not
/// `M_IMMEDIATE`, matching the paper's `M_ALL`.
///
/// # Example
///
/// ```
/// use dpm_meter::MeterFlags;
///
/// let f = MeterFlags::SEND | MeterFlags::RECEIVE | MeterFlags::FORK;
/// assert!(f.contains(MeterFlags::SEND));
/// assert!(!f.contains(MeterFlags::ACCEPT));
/// assert_eq!(f.to_string(), "fork send receive");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MeterFlags(u32);

impl MeterFlags {
    /// Process accepts a connection (`M_ACCEPT`).
    pub const ACCEPT: MeterFlags = MeterFlags(0x0001);
    /// Process initiates a connection (`M_CONNECT`).
    pub const CONNECT: MeterFlags = MeterFlags(0x0002);
    /// Process sends a message (`M_SEND`).
    pub const SEND: MeterFlags = MeterFlags(0x0004);
    /// Process makes a call to receive a message (`M_RECEIVECALL`).
    pub const RECEIVECALL: MeterFlags = MeterFlags(0x0008);
    /// Process receives a message (`M_RECEIVE`).
    pub const RECEIVE: MeterFlags = MeterFlags(0x0010);
    /// Process creates a socket (`M_SOCKET`).
    pub const SOCKET: MeterFlags = MeterFlags(0x0020);
    /// Process duplicates a socket or file descriptor (`M_DUP`).
    pub const DUP: MeterFlags = MeterFlags(0x0040);
    /// Process closes a socket (`M_DESTSOCKET`).
    pub const DESTSOCKET: MeterFlags = MeterFlags(0x0080);
    /// Process forks (`M_FORK`).
    pub const FORK: MeterFlags = MeterFlags(0x0100);
    /// Process terminates (`M_TERMPROC`).
    pub const TERMPROC: MeterFlags = MeterFlags(0x0200);
    /// Meter all events (`M_ALL`). Does not include [`MeterFlags::IMMEDIATE`].
    pub const ALL: MeterFlags = MeterFlags(0x03ff);
    /// Send meter messages immediately rather than buffered (`M_IMMEDIATE`).
    pub const IMMEDIATE: MeterFlags = MeterFlags(0x8000);

    /// The empty flag set (`NONE` in the `setmeter(2)` interface).
    pub const NONE: MeterFlags = MeterFlags(0);

    /// Creates a flag set from a raw bit mask.
    ///
    /// Unknown bits are preserved; they simply never match an event.
    /// The kernel stores the mask verbatim, exactly as 4.2BSD did.
    pub const fn from_bits(bits: u32) -> MeterFlags {
        MeterFlags(bits)
    }

    /// Returns the raw bit mask.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Returns `true` if every flag in `other` is set in `self`.
    pub const fn contains(self, other: MeterFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no flags at all are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if any *event* flag is set (ignoring `M_IMMEDIATE`).
    pub const fn meters_anything(self) -> bool {
        self.0 & Self::ALL.0 != 0
    }

    /// The set of flags in `self` or `other`.
    pub const fn union(self, other: MeterFlags) -> MeterFlags {
        MeterFlags(self.0 | other.0)
    }

    /// The set of flags in `self` but not in `other`.
    pub const fn difference(self, other: MeterFlags) -> MeterFlags {
        MeterFlags(self.0 & !other.0)
    }

    /// Iterates over the individual event flags that are set.
    pub fn iter(self) -> impl Iterator<Item = MeterFlags> {
        ALL_FLAGS
            .iter()
            .map(|&(f, _)| f)
            .filter(move |f| self.contains(*f))
    }

    /// The flag's command-line name as used by the controller's
    /// `setflags` command (paper §4.3), e.g. `"send"` or `"termproc"`.
    ///
    /// Returns `None` when `self` is not a single named flag.
    pub fn name(self) -> Option<&'static str> {
        ALL_FLAGS.iter().find(|&&(f, _)| f == self).map(|&(_, n)| n)
    }
}

/// Every single-bit flag together with its `setflags` name.
const ALL_FLAGS: &[(MeterFlags, &str)] = &[
    (MeterFlags::FORK, "fork"),
    (MeterFlags::TERMPROC, "termproc"),
    (MeterFlags::SEND, "send"),
    (MeterFlags::RECEIVECALL, "receivecall"),
    (MeterFlags::RECEIVE, "receive"),
    (MeterFlags::SOCKET, "socket"),
    (MeterFlags::DUP, "dup"),
    (MeterFlags::DESTSOCKET, "destsocket"),
    (MeterFlags::ACCEPT, "accept"),
    (MeterFlags::CONNECT, "connect"),
    (MeterFlags::IMMEDIATE, "immediate"),
];

impl BitOr for MeterFlags {
    type Output = MeterFlags;
    fn bitor(self, rhs: MeterFlags) -> MeterFlags {
        self.union(rhs)
    }
}

impl BitOrAssign for MeterFlags {
    fn bitor_assign(&mut self, rhs: MeterFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for MeterFlags {
    type Output = MeterFlags;
    fn bitand(self, rhs: MeterFlags) -> MeterFlags {
        MeterFlags(self.0 & rhs.0)
    }
}

impl Sub for MeterFlags {
    type Output = MeterFlags;
    fn sub(self, rhs: MeterFlags) -> MeterFlags {
        self.difference(rhs)
    }
}

impl Not for MeterFlags {
    type Output = MeterFlags;
    fn not(self) -> MeterFlags {
        MeterFlags(!self.0)
    }
}

impl fmt::Debug for MeterFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MeterFlags({self})")
    }
}

impl fmt::Display for MeterFlags {
    /// Formats as the space-separated `setflags` names, e.g.
    /// `"send receive fork"`. The empty set formats as `"none"` and the
    /// full event set as `"all"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        if *self == MeterFlags::ALL {
            return f.write_str("all");
        }
        let mut first = true;
        for &(flag, name) in ALL_FLAGS {
            if self.contains(flag) {
                if !first {
                    f.write_str(" ")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::LowerHex for MeterFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for MeterFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for MeterFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for MeterFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

/// Error returned when parsing a flag name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFlagError {
    name: String,
}

impl fmt::Display for ParseFlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown meter flag name `{}`", self.name)
    }
}

impl std::error::Error for ParseFlagError {}

impl FromStr for MeterFlags {
    type Err = ParseFlagError;

    /// Parses a single flag name as used on the controller command
    /// line: one of `fork termproc send receivecall receive socket dup
    /// destsocket accept connect immediate`, or the shorthand `all`
    /// and `none`.
    ///
    /// A leading `-` is **not** handled here; the controller interprets
    /// `-send` as "reset the send flag" at a higher level (paper §4.3).
    fn from_str(s: &str) -> Result<MeterFlags, ParseFlagError> {
        match s {
            "all" => return Ok(MeterFlags::ALL),
            "none" => return Ok(MeterFlags::NONE),
            _ => {}
        }
        ALL_FLAGS
            .iter()
            .find(|&&(_, n)| n == s)
            .map(|&(f, _)| f)
            .ok_or_else(|| ParseFlagError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_distinct_bits() {
        let mut seen = 0u32;
        for &(f, _) in ALL_FLAGS {
            assert_eq!(f.bits().count_ones(), 1, "{f} is not a single bit");
            assert_eq!(seen & f.bits(), 0, "{f} overlaps another flag");
            seen |= f.bits();
        }
    }

    #[test]
    fn all_covers_every_event_flag() {
        for &(f, name) in ALL_FLAGS {
            if name == "immediate" {
                assert!(!MeterFlags::ALL.contains(f));
            } else {
                assert!(MeterFlags::ALL.contains(f), "{name} missing from M_ALL");
            }
        }
    }

    #[test]
    fn union_and_difference() {
        let f = MeterFlags::SEND | MeterFlags::RECEIVE;
        assert!(f.contains(MeterFlags::SEND));
        assert!(f.contains(MeterFlags::RECEIVE));
        let g = f - MeterFlags::SEND;
        assert!(!g.contains(MeterFlags::SEND));
        assert!(g.contains(MeterFlags::RECEIVE));
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for &(f, name) in ALL_FLAGS {
            assert_eq!(f.to_string(), name);
            assert_eq!(name.parse::<MeterFlags>().unwrap(), f);
        }
        assert_eq!("all".parse::<MeterFlags>().unwrap(), MeterFlags::ALL);
        assert_eq!("none".parse::<MeterFlags>().unwrap(), MeterFlags::NONE);
        assert_eq!(MeterFlags::ALL.to_string(), "all");
        assert_eq!(MeterFlags::NONE.to_string(), "none");
    }

    #[test]
    fn unknown_name_is_an_error() {
        let err = "sendd".parse::<MeterFlags>().unwrap_err();
        assert!(err.to_string().contains("sendd"));
    }

    #[test]
    fn immediate_is_not_an_event() {
        assert!(!MeterFlags::IMMEDIATE.meters_anything());
        assert!((MeterFlags::IMMEDIATE | MeterFlags::SEND).meters_anything());
    }

    #[test]
    fn multi_flag_display_order_matches_manual() {
        // The user's manual lists fork first and connect last (§4.3).
        let f = MeterFlags::CONNECT | MeterFlags::FORK | MeterFlags::SEND;
        assert_eq!(f.to_string(), "fork send connect");
    }

    #[test]
    fn iter_yields_set_flags() {
        let f = MeterFlags::SEND | MeterFlags::ACCEPT;
        let got: Vec<_> = f.iter().collect();
        assert_eq!(got, vec![MeterFlags::SEND, MeterFlags::ACCEPT]);
    }
}
