//! Golden test pinning the exposition formats. Downstream scrapers
//! and the CI artifact parse these texts; a format change must show
//! up here as a deliberate diff, not an accident.

use dpm_telemetry::Registry;

fn sample_registry() -> Registry {
    let r = Registry::new();
    r.counter("meterd", "rpc_retries", "bsd1->bsd2").add(3);
    r.counter("filter", "accepted", "").add(120);
    r.gauge("live", "reorder_pending", "").set(2);
    let h = r.histogram("store", "seal_us", "s0");
    for v in [100u64, 200, 300, 5000] {
        h.record(v);
    }
    r
}

#[test]
fn prometheus_exposition_is_pinned() {
    let got = sample_registry().snapshot().render_prometheus();
    let want = "\
dpm_filter_accepted 120
dpm_live_reorder_pending 2
dpm_meterd_rpc_retries{label=\"bsd1->bsd2\"} 3
dpm_store_seal_us_count{label=\"s0\"} 4
dpm_store_seal_us_sum{label=\"s0\"} 5600
dpm_store_seal_us_max{label=\"s0\"} 5000
dpm_store_seal_us{label=\"s0\",quantile=\"0.5\"} 255
dpm_store_seal_us{label=\"s0\",quantile=\"0.95\"} 5000
dpm_store_seal_us{label=\"s0\",quantile=\"0.99\"} 5000
";
    assert_eq!(got, want, "Prometheus text format drifted");
}

#[test]
fn json_snapshot_is_pinned() {
    let got = sample_registry().snapshot().render_json();
    let want = "\
{
\"filter/accepted\": {\"type\": \"counter\", \"value\": 120},
\"live/reorder_pending\": {\"type\": \"gauge\", \"value\": 2},
\"meterd/rpc_retries{bsd1->bsd2}\": {\"type\": \"counter\", \"value\": 3},
\"store/seal_us{s0}\": {\"type\": \"histogram\", \"count\": 4, \"sum\": 5600, \"max\": 5000, \"p50\": 255, \"p95\": 5000, \"p99\": 5000}
}
";
    assert_eq!(got, want, "line-JSON snapshot format drifted");
}

#[test]
fn stats_readout_aggregates_across_labels() {
    let r = sample_registry();
    r.counter("meterd", "rpc_retries", "bsd1->bsd3").add(2);
    let txt = r.snapshot().render_stats(Some("meterd"));
    let want = "\
meterd/rpc_retries: 5
  bsd1->bsd2: 3
  bsd1->bsd3: 2
";
    assert_eq!(txt, want, "stats readout format drifted");
}
