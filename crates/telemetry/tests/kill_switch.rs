//! The runtime kill switch, in its own test binary: toggling the
//! process-global ENABLED flag would race with recording tests that
//! share a binary, so this one runs alone.

use dpm_telemetry::{set_enabled, Counter, Gauge, Histogram};

#[test]
fn kill_switch_stops_all_recording() {
    let c = Counter::new();
    let g = Gauge::new();
    let h = Histogram::new();

    set_enabled(false);
    c.inc();
    g.set(7);
    h.record(100);
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0);
    assert_eq!(h.snapshot().count, 0);

    set_enabled(true);
    c.inc();
    g.set(7);
    h.record(100);
    assert_eq!(c.get(), 1);
    assert_eq!(g.get(), 7);
    assert_eq!(h.snapshot().count, 1);
}
