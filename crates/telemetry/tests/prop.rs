//! Property tests for the log2 histogram: merge is a commutative
//! monoid, quantile readout stays within the rank bucket's edges, and
//! counts saturate instead of wrapping at capacity.

use proptest::prelude::*;

use dpm_telemetry::{bucket_bounds, HistSnapshot, Histogram, HIST_BUCKETS};

fn hist_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Power-of-two values spanning all magnitudes, not just small ints.
fn value() -> impl Strategy<Value = u64> {
    (0u32..64).prop_map(|shift| 1u64 << shift)
}

fn values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0u64),
            1u64..1024,
            value().prop_map(|p| p.saturating_sub(1)),
            value(),
            Just(u64::MAX),
        ],
        0..40,
    )
}

/// The bucket `[lo, hi]` that `v` falls in.
fn bounds_of(v: u64) -> (u64, u64) {
    (0..HIST_BUCKETS)
        .map(bucket_bounds)
        .find(|&(lo, hi)| lo <= v && v <= hi)
        .expect("buckets cover u64")
}

proptest! {
    #[test]
    fn merge_is_commutative(a in values(), b in values()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
    }

    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
    }

    #[test]
    fn empty_is_the_merge_identity(a in values()) {
        let ha = hist_of(&a);
        prop_assert_eq!(ha.merge(&HistSnapshot::default()), ha);
    }

    #[test]
    fn quantile_stays_within_the_rank_bucket(vals in values(), qpm in 0u64..=1000) {
        prop_assume!(!vals.is_empty());
        let s = hist_of(&vals);
        let q = qpm as f64 / 1000.0;
        let got = s.quantile(q);

        // The exact order statistic at this rank.
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];

        // The readout may not leave the bucket the true value lives in.
        let (lo, hi) = bounds_of(exact);
        prop_assert!(
            got >= lo && got <= hi,
            "quantile({q}) = {got} outside bucket [{lo}, {hi}] of exact {exact}"
        );
        prop_assert!(got <= s.max, "quantile({q}) = {got} above max {}", s.max);
    }

    #[test]
    fn counts_saturate_at_capacity(n in (u64::MAX - 64)..=u64::MAX, b in 0usize..HIST_BUCKETS) {
        let mut big = HistSnapshot {
            count: n,
            sum: n,
            max: bucket_bounds(b).1,
            buckets: [0; HIST_BUCKETS],
        };
        big.buckets[b] = n;
        let m = big.merge(&big);
        prop_assert!(m.count >= big.count, "merge lost counts: {} < {}", m.count, big.count);
        prop_assert_eq!(m.count, n.saturating_add(n));
        prop_assert_eq!(m.buckets[b], n.saturating_add(n));
        prop_assert_eq!(m.max, big.max);
        // Quantiles still read out inside the populated bucket.
        let (lo, hi) = bucket_bounds(b);
        let q = m.quantile(0.99);
        prop_assert!(q >= lo && q <= hi);
    }
}
