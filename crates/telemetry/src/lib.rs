//! `dpm-telemetry` — self-telemetry for the distributed programs
//! monitor.
//!
//! The monitor watches user programs; this crate watches the monitor.
//! It is dependency-free and exposes three primitives plus a process
//! global of each:
//!
//! - a [`Registry`] of lock-free [`Counter`]s, [`Gauge`]s, and
//!   log2-bucketed [`Histogram`]s, keyed `(component, name, label)`,
//!   snapshottable and renderable as Prometheus-style text, line
//!   JSON, or the controller's `stats` readout;
//! - a [`FlightRecorder`] ring of recent internal events, dumped as a
//!   causal timeline on invariant failure or panic;
//! - a shared time base: [`epoch`]/[`now_us`] give every component
//!   the same real-time origin, so timestamps stamped in one stage
//!   (e.g. a `LogStore` append) can be subtracted in another (the
//!   live engine) to build end-to-end staleness histograms.
//!
//! ## Clock domains
//!
//! The simulation has two time domains. *Virtual* time is the
//! discrete-event clock, viewed through deliberately skewed
//! per-machine clocks — meter records carry a virtual `cpu_time`
//! stamped by the emitting machine, so emit→ingest staleness is
//! computed against the *ingesting* machine's clock and is only as
//! honest as the skew between the two (the paper's own caveat).
//! *Real* time is [`now_us`]: wall-clock microseconds since a
//! process-wide [`epoch`]. Store append timestamps use real time, so
//! append→seal, append→apply, and append→window staleness are exact.
//! The two domains are never mixed in a single histogram.
//!
//! ## Cost and the kill switch
//!
//! Recording is a few relaxed atomic ops; registration (which takes a
//! lock) happens once per call site, with the handle cached. The
//! runtime kill switch ([`set_enabled`]) turns every recording call
//! into one relaxed load and a branch — the overhead benchmark
//! compares enabled vs disabled on the ingest path. The `noop` cargo
//! feature compiles recording bodies out entirely for a
//! belt-and-braces floor.

mod flight;
mod metrics;
mod registry;

pub use flight::{FlightEvent, FlightRecorder, FLIGHT_CAPACITY};
pub use metrics::{bucket_bounds, Counter, Gauge, HistSnapshot, Histogram, HIST_BUCKETS};
pub use registry::{MetricSnapshot, MetricValue, Registry, TelemetrySnapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry recording is live. Checked (relaxed) inside
/// every recording call.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns all telemetry recording on or off at runtime. Readouts keep
/// working either way; while off they simply stop moving.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide real-time origin. First caller pins it; every
/// component measures against the same instant, which is what makes
/// cross-stage timestamp arithmetic meaningful.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds of real time since [`epoch`].
#[inline]
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// The process-global metric registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The process-global flight recorder.
pub fn flight() -> &'static FlightRecorder {
    static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
    FLIGHT.get_or_init(FlightRecorder::default)
}

/// Notes an event on the global flight recorder.
pub fn note(component: &str, label: &str, what: impl Into<String>) {
    flight().note(component, label, what);
}

static LAST_DUMP: Mutex<Option<String>> = Mutex::new(None);

/// Dumps the global flight recorder to stderr with `reason` as the
/// headline, remembers the rendered text for [`last_dump`], and
/// returns it. Called by the chaos invariant checkers on failure and
/// by the installed panic hook.
pub fn dump_failure(reason: &str) -> String {
    let txt = flight().render(reason);
    eprintln!("{txt}");
    *LAST_DUMP.lock().unwrap() = Some(txt.clone());
    txt
}

/// The most recent [`dump_failure`] output, if any. Lets tests assert
/// on the dump without scraping stderr.
pub fn last_dump() -> Option<String> {
    LAST_DUMP.lock().unwrap().clone()
}

/// Installs a panic hook (once, chaining the previous hook) that
/// dumps the flight recorder when any thread panics — a component
/// dying mid-pipeline leaves a timeline behind.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let what = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            let loc = info
                .location()
                .map(|l| format!(" at {}:{}", l.file(), l.line()))
                .unwrap_or_default();
            // Tests exercise panics on purpose (should_panic, chaos
            // probes); only dump when the recorder saw real traffic.
            if !flight().is_empty() {
                dump_failure(&format!("panic: {what}{loc}"));
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_failure_is_retained_for_inspection() {
        note("test", "bsd1->bsd2", "link dropped");
        let txt = dump_failure("unit test reason");
        assert!(txt.contains("unit test reason"));
        assert_eq!(last_dump().as_deref(), Some(txt.as_str()));
    }

    #[test]
    fn now_us_is_monotonic_from_a_shared_epoch() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
