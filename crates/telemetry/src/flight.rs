//! The flight recorder: a fixed-capacity ring of recent internal
//! events, dumped as a causal timeline when an invariant checker
//! fails or a component panics.
//!
//! Counters say *how often*; the flight recorder says *in what
//! order*. Components note milestone events (a segment sealed, an RPC
//! gave up, a partition opened) as they happen; the ring keeps the
//! most recent [`FlightRecorder::capacity`] of them and forgets the
//! rest. Nothing is written anywhere until [`dump_failure`] fires.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the telemetry epoch ([`crate::now_us`]).
    pub at_us: u64,
    /// Pipeline component that noted the event (`meterd`, `store`, ...).
    pub component: String,
    /// Instance label — machine, link, or shard (may be empty).
    pub label: String,
    /// What happened.
    pub what: String,
}

/// A bounded ring buffer of [`FlightEvent`]s.
///
/// A mutex is fine here: events are milestones (seals, retries,
/// faults), not per-record traffic, so contention is negligible and
/// the ordering guarantee a lock gives makes the dumped timeline
/// trustworthy.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
}

/// Default ring capacity — enough to cover the tail of any chaos run.
pub const FLIGHT_CAPACITY: usize = 1024;

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding the most recent `cap` events.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends an event, evicting the oldest at capacity.
    pub fn note(&self, component: &str, label: &str, what: impl Into<String>) {
        if !crate::enabled() {
            return;
        }
        let ev = FlightEvent {
            at_us: crate::now_us(),
            component: component.to_string(),
            label: label.to_string(),
            what: what.into(),
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether nothing has been noted (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all retained events.
    pub fn clear(&self) {
        self.ring.lock().unwrap().clear();
    }

    /// Renders the timeline as text: a header with `reason`, then one
    /// `+<t>us component[label] what` line per event, oldest first.
    pub fn render(&self, reason: &str) -> String {
        let ring = self.ring.lock().unwrap();
        let mut out = String::new();
        out.push_str(&format!(
            "=== flight recorder: {} ({} events) ===\n",
            reason,
            ring.len()
        ));
        for ev in ring.iter() {
            if ev.label.is_empty() {
                out.push_str(&format!("+{}us {} {}\n", ev.at_us, ev.component, ev.what));
            } else {
                out.push_str(&format!(
                    "+{}us {}[{}] {}\n",
                    ev.at_us, ev.component, ev.label, ev.what
                ));
            }
        }
        out.push_str("=== end flight recorder ===\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.note("t", "", format!("event {i}"));
        }
        let evs = fr.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].what, "event 2");
        assert_eq!(evs[2].what, "event 4");
    }

    #[test]
    fn render_names_component_and_label() {
        let fr = FlightRecorder::new(8);
        fr.note("meterd", "a->b", "rpc gave up after 5 tries");
        fr.note("store", "", "segment 3 sealed");
        let txt = fr.render("test failure");
        assert!(txt.contains("flight recorder: test failure (2 events)"));
        assert!(txt.contains("meterd[a->b] rpc gave up after 5 tries"));
        assert!(txt.contains("store segment 3 sealed"));
    }
}
