//! The metric registry: named, labelled metrics with snapshot and
//! rendering support.
//!
//! Metrics are keyed by `(component, name, label)` — component is the
//! pipeline stage (`meterd`, `filter`, `store`, `live`, `e2e`, ...),
//! name the quantity, and label the instance (a machine, a link like
//! `bsd1->bsd2`, a shard). Registration is get-or-create and returns
//! a shared handle; hot paths register once and hold the `Arc`, so
//! the registry lock is never on a per-record path.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, HistSnapshot, Histogram};

/// A registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Event count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Distribution snapshot (boxed: a `HistSnapshot` carries its
    /// whole bucket array, far larger than the scalar variants).
    Histogram(Box<HistSnapshot>),
}

/// One metric in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Pipeline stage (`meterd`, `filter`, `store`, `live`, `e2e`, ...).
    pub component: String,
    /// Quantity name (`rpc_retries`, `flush_batch_bytes`, ...).
    pub name: String,
    /// Instance label (machine, link, shard); empty for singletons.
    pub label: String,
    /// The observed value.
    pub value: MetricValue,
}

/// A point-in-time copy of every registered metric, sorted by
/// `(component, name, label)`.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// The metrics, in key order.
    pub metrics: Vec<MetricSnapshot>,
}

/// A collection of named metrics.
///
/// Most code uses the process-global registry via
/// [`crate::registry`]; tests that need isolation build their own.
#[derive(Debug, Default)]
pub struct Registry {
    map: Mutex<BTreeMap<(String, String, String), Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter `(component, name, label)`, created on first use.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn counter(&self, component: &str, name: &str, label: &str) -> Arc<Counter> {
        let mut map = self.map.lock().unwrap();
        let m = map
            .entry(key(component, name, label))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match m {
            Metric::Counter(c) => c.clone(),
            other => mismatch(component, name, label, "counter", other.kind()),
        }
    }

    /// The gauge `(component, name, label)`, created on first use.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn gauge(&self, component: &str, name: &str, label: &str) -> Arc<Gauge> {
        let mut map = self.map.lock().unwrap();
        let m = map
            .entry(key(component, name, label))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match m {
            Metric::Gauge(g) => g.clone(),
            other => mismatch(component, name, label, "gauge", other.kind()),
        }
    }

    /// The histogram `(component, name, label)`, created on first use.
    ///
    /// # Panics
    /// If the key is already registered as a different metric kind.
    pub fn histogram(&self, component: &str, name: &str, label: &str) -> Arc<Histogram> {
        let mut map = self.map.lock().unwrap();
        let m = map
            .entry(key(component, name, label))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match m {
            Metric::Histogram(h) => h.clone(),
            other => mismatch(component, name, label, "histogram", other.kind()),
        }
    }

    /// Copies every registered metric into a sorted snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let map = self.map.lock().unwrap();
        let metrics = map
            .iter()
            .map(|((component, name, label), m)| MetricSnapshot {
                component: component.clone(),
                name: name.clone(),
                label: label.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        TelemetrySnapshot { metrics }
    }
}

fn key(component: &str, name: &str, label: &str) -> (String, String, String) {
    (component.to_string(), name.to_string(), label.to_string())
}

fn mismatch(component: &str, name: &str, label: &str, want: &str, got: &str) -> ! {
    panic!(
        "telemetry metric {component}/{name}{{{label}}} registered as {got}, requested as {want}"
    )
}

impl TelemetrySnapshot {
    /// The metrics whose component matches `filter` (all when `None`).
    pub fn filtered(&self, filter: Option<&str>) -> Vec<&MetricSnapshot> {
        self.metrics
            .iter()
            .filter(|m| filter.is_none_or(|f| m.component == f))
            .collect()
    }

    /// Renders Prometheus-style text exposition.
    ///
    /// Counters and gauges become one sample each,
    /// `dpm_<component>_<name>{label="<label>"} <value>` (the label
    /// clause omitted when empty). Histograms expand to `_count`,
    /// `_sum`, and `_max` samples plus one `{quantile="..."}` sample
    /// each for p50/p95/p99. The format is pinned by a golden test.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let base = format!("dpm_{}_{}", m.component, m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", base, label_clause(&m.label, &[]), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", base, label_clause(&m.label, &[]), v);
                }
                MetricValue::Histogram(h) => {
                    let lc = label_clause(&m.label, &[]);
                    let _ = writeln!(out, "{base}_count{lc} {}", h.count);
                    let _ = writeln!(out, "{base}_sum{lc} {}", h.sum);
                    let _ = writeln!(out, "{base}_max{lc} {}", h.max);
                    for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                        let qc = label_clause(&m.label, &[("quantile", q)]);
                        let _ = writeln!(out, "{base}{qc} {v}");
                    }
                }
            }
        }
        out
    }

    /// Renders a line-JSON snapshot following the `bench_report`
    /// conventions: one `"component/name{label}": {...}` entry per
    /// line inside a single object, keys sorted.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for m in &self.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let k = if m.label.is_empty() {
                format!("{}/{}", m.component, m.name)
            } else {
                format!("{}/{}{{{}}}", m.component, m.name, m.label)
            };
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(
                        out,
                        "\"{}\": {{\"type\": \"counter\", \"value\": {}}}",
                        k, v
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"{}\": {{\"type\": \"gauge\", \"value\": {}}}", k, v);
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"{}\": {{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        k,
                        h.count,
                        h.sum,
                        h.max,
                        h.p50(),
                        h.p95(),
                        h.p99()
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the human-oriented `stats` readout the controller
    /// session prints: metrics grouped by `component/name`, counters
    /// summed and histograms merged across labels, with a per-label
    /// breakdown indented under each group.
    pub fn render_stats(&self, filter: Option<&str>) -> String {
        let picked = self.filtered(filter);
        if picked.is_empty() {
            return match filter {
                Some(f) => format!("no telemetry for component '{f}'\n"),
                None => "no telemetry recorded\n".to_string(),
            };
        }
        // Group by (component, name); keys arrive sorted so labels
        // within a group are contiguous and ordered.
        let mut out = String::new();
        let mut i = 0;
        while i < picked.len() {
            let j = picked[i..]
                .iter()
                .take_while(|m| m.component == picked[i].component && m.name == picked[i].name)
                .count()
                + i;
            let group = &picked[i..j];
            render_stats_group(&mut out, group);
            i = j;
        }
        out
    }
}

fn render_stats_group(out: &mut String, group: &[&MetricSnapshot]) {
    let head = format!("{}/{}", group[0].component, group[0].name);
    match &group[0].value {
        MetricValue::Counter(_) => {
            let total: u64 = group
                .iter()
                .map(|m| match m.value {
                    MetricValue::Counter(v) => v,
                    _ => 0,
                })
                .sum();
            let _ = writeln!(out, "{head}: {total}");
            if group.len() > 1 || !group[0].label.is_empty() {
                for m in group {
                    if let MetricValue::Counter(v) = m.value {
                        let _ = writeln!(out, "  {}: {}", display_label(&m.label), v);
                    }
                }
            }
        }
        MetricValue::Gauge(_) => {
            let total: i64 = group
                .iter()
                .map(|m| match m.value {
                    MetricValue::Gauge(v) => v,
                    _ => 0,
                })
                .sum();
            let _ = writeln!(out, "{head}: {total}");
            if group.len() > 1 || !group[0].label.is_empty() {
                for m in group {
                    if let MetricValue::Gauge(v) = m.value {
                        let _ = writeln!(out, "  {}: {}", display_label(&m.label), v);
                    }
                }
            }
        }
        MetricValue::Histogram(_) => {
            let merged = group
                .iter()
                .fold(HistSnapshot::default(), |acc, m| match &m.value {
                    MetricValue::Histogram(h) => acc.merge(h),
                    _ => acc,
                });
            let _ = writeln!(
                out,
                "{head}: count={} mean={:.1} p50={} p95={} p99={} max={}",
                merged.count,
                merged.mean(),
                merged.p50(),
                merged.p95(),
                merged.p99(),
                merged.max
            );
            if group.len() > 1 || !group[0].label.is_empty() {
                for m in group {
                    if let MetricValue::Histogram(h) = &m.value {
                        let _ = writeln!(
                            out,
                            "  {}: count={} p50={} p99={} max={}",
                            display_label(&m.label),
                            h.count,
                            h.p50(),
                            h.p99(),
                            h.max
                        );
                    }
                }
            }
        }
    }
}

fn display_label(label: &str) -> &str {
    if label.is_empty() {
        "(unlabelled)"
    } else {
        label
    }
}

fn label_clause(label: &str, extra: &[(&str, &str)]) -> String {
    let mut parts = Vec::new();
    if !label.is_empty() {
        parts.push(format!("label=\"{label}\""));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("store", "seals", "s0");
        let b = r.counter("store", "seals", "s0");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "registered as counter, requested as gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("store", "seals", "");
        r.gauge("store", "seals", "");
    }

    #[test]
    fn snapshot_is_sorted_by_key() {
        let r = Registry::new();
        r.counter("z", "last", "");
        r.counter("a", "first", "b");
        r.counter("a", "first", "a");
        let s = r.snapshot();
        let keys: Vec<_> = s
            .metrics
            .iter()
            .map(|m| format!("{}/{}/{}", m.component, m.name, m.label))
            .collect();
        assert_eq!(keys, ["a/first/a", "a/first/b", "z/last/"]);
    }

    #[test]
    fn stats_groups_and_sums_across_labels() {
        let r = Registry::new();
        r.counter("meterd", "rpc_retries", "a->b").add(3);
        r.counter("meterd", "rpc_retries", "a->c").add(2);
        let txt = r.snapshot().render_stats(None);
        assert!(txt.contains("meterd/rpc_retries: 5"), "{txt}");
        assert!(txt.contains("  a->b: 3"), "{txt}");
        assert!(txt.contains("  a->c: 2"), "{txt}");
        let none = r.snapshot().render_stats(Some("live"));
        assert!(none.contains("no telemetry for component 'live'"));
    }
}
