//! The metric primitives: lock-free counters, gauges, and log2
//! latency histograms.
//!
//! Everything here follows the `WireStats` discipline the simulator
//! already uses for wire accounting: plain atomics with relaxed
//! ordering, mutated from any thread without coordination, read by
//! copying into a plain snapshot struct. Cross-counter skew in a
//! snapshot is irrelevant for coarse statistics; what matters is that
//! the hot path never takes a lock and never allocates.
//!
//! All recording calls honor the global kill switch
//! ([`crate::set_enabled`]) — with telemetry disabled a call is one
//! relaxed load and a branch, which is what the instrumentation
//! overhead experiment compares against. The `noop` cargo feature
//! compiles the bodies out entirely.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Whether recording calls should do anything. See the module docs of
/// [`crate`] for the kill switch and the `noop` feature.
#[inline]
fn on() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        crate::enabled()
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        if on() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the count.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, pending bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if on() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Moves the level by `d` (negative to decrease).
    #[inline]
    pub fn add(&self, d: i64) {
        if on() {
            self.0.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`. 64 power-of-two
/// buckets cover the whole `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// The bucket index a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A lock-free latency/size histogram over log2 buckets.
///
/// Recording is four relaxed atomic ops (bucket, count, sum, max);
/// readout copies into a [`HistSnapshot`], which merges and answers
/// quantile queries.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if !on() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the histogram into a plain snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] — plain data, mergeable,
/// with quantile readout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Merges two snapshots. Counts saturate at `u64::MAX` instead of
    /// wrapping, which keeps the merge associative and commutative
    /// even at capacity (the saturation cap is order-independent).
    #[must_use]
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_add(other.buckets[i])),
        }
    }

    /// The value at quantile `q` in `[0, 1]`, resolved to the upper
    /// edge of the bucket holding that rank (clamped by the observed
    /// maximum, which lives inside the top occupied bucket — so the
    /// answer always stays within the rank bucket's edges). Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// The median (see [`HistSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i, "lower edge of bucket {i}");
            assert_eq!(bucket_of(hi), i, "upper edge of bucket {i}");
        }
    }

    #[test]
    fn quantiles_read_out_in_order() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert_eq!(s.p50(), 3, "rank 3 of 5 lands in bucket [2,3]");
        assert!(s.p95() >= 512 && s.p95() <= 1000);
        assert!(s.p99() >= 512 && s.p99() <= 1000);
        assert_eq!(s.quantile(1.0), 1000, "p100 is the exact max");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_adds_and_saturates() {
        let a = Histogram::new();
        a.record(4);
        let b = Histogram::new();
        b.record(1000);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.max, 1000);
        let mut big = HistSnapshot {
            count: u64::MAX - 1,
            sum: u64::MAX - 1,
            max: 9,
            buckets: [0; HIST_BUCKETS],
        };
        big.buckets[1] = u64::MAX - 1;
        let m = big.merge(&big);
        assert_eq!(m.count, u64::MAX, "counts saturate at capacity");
        assert_eq!(m.buckets[1], u64::MAX);
    }
}
