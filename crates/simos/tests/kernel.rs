//! Integration tests for the simulated 4.2BSD kernel: IPC semantics,
//! process control, and the metering machinery of §3.2 / Appendix C.

use dpm_meter::{trace_type, MeterBody, MeterFlags, MeterMsg, SockName, TermReason};
use dpm_simnet::{ClockSpec, NetConfig};
use dpm_simos::{
    BindTo, Cluster, Domain, FlagSel, Pid, PidSel, Proc, RunState, Sig, SockSel, SockType,
    SysError, SysResult, Uid,
};
use parking_lot::Mutex;
use std::sync::Arc;

const U: Uid = Uid(100);

fn two_machines() -> Arc<Cluster> {
    Cluster::builder()
        .net(NetConfig::ideal())
        .seed(1)
        .machine("red")
        .machine("green")
        .build()
}

/// Spawns a collector that accepts `conns` meter connections on
/// `port` of `machine` (sequentially — stream buffering makes that
/// safe) and appends everything it reads to the shared buffer.
fn spawn_collector_n(
    cluster: &Arc<Cluster>,
    machine: &str,
    port: u16,
    conns: usize,
) -> (Pid, Arc<Mutex<Vec<u8>>>) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let out = buf.clone();
    let pid = cluster
        .spawn_user(machine, "collector", U, move |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(port))?;
            p.listen(s, 8)?;
            // Accept every expected connection before draining any of
            // them: a connector blocks until accepted, and the data
            // triggering one stream's EOF may depend on another
            // connection having been established.
            let mut open: Vec<u32> = Vec::new();
            for _ in 0..conns {
                let (conn, _) = p.accept(s)?;
                open.push(conn);
            }
            for conn in open {
                loop {
                    let data = p.read(conn, 4096)?;
                    if data.is_empty() {
                        break;
                    }
                    out.lock().extend_from_slice(&data);
                }
                p.close(conn)?;
            }
            Ok(())
        })
        .unwrap();
    (pid, buf)
}

/// One-connection collector, the common case.
fn spawn_collector(cluster: &Arc<Cluster>, machine: &str, port: u16) -> (Pid, Arc<Mutex<Vec<u8>>>) {
    spawn_collector_n(cluster, machine, port, 1)
}

/// Connects a stream socket to `(host, port)` and installs it as the
/// meter socket of `target` with the given flags — what the
/// meterdaemon does for every metered process.
fn meter_process(p: &Proc, target: Pid, flags: MeterFlags, host: &str, port: u16) -> SysResult<()> {
    // Retry with real sleeps: the collector thread may not have bound
    // its port yet, and a refused connect would leave the suspended
    // target unstarted forever.
    let mut tries = 0;
    let s = loop {
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        match p.connect_host(s, host, port) {
            Ok(()) => break s,
            Err(SysError::Econnrefused) if tries < 2000 => {
                p.close(s)?;
                tries += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    };
    p.setmeter(PidSel::Pid(target), FlagSel::Set(flags), SockSel::Fd(s))?;
    p.close(s)
}

#[test]
fn datagram_round_trip_carries_source_name() {
    let cluster = two_machines();
    let green = cluster.machine("green").unwrap();
    let red = cluster.machine("red").unwrap();

    let rx = cluster
        .spawn_user("green", "rx", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(s, BindTo::Port(53))?;
            let (data, src) = p.recvfrom(s, 100)?;
            assert_eq!(data, b"query");
            // The sender was auto-bound, so its name is known.
            match src {
                Some(SockName::Inet { host, .. }) => assert_eq!(host, 0), // red
                other => panic!("unexpected source {other:?}"),
            }
            Ok(())
        })
        .unwrap();

    let tx = cluster
        .spawn_user("red", "tx", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let host = p.cluster().resolve_host("green")?;
            p.sendto(
                s,
                b"query",
                &SockName::Inet {
                    host: host.0,
                    port: 53,
                },
            )?;
            Ok(())
        })
        .unwrap();

    assert_eq!(green.wait_exit(rx), Some(TermReason::Normal));
    assert_eq!(red.wait_exit(tx), Some(TermReason::Normal));
    cluster.shutdown();
}

#[test]
fn datagram_connect_then_send_uses_default_peer() {
    let cluster = two_machines();
    let green = cluster.machine("green").unwrap();
    let rx = cluster
        .spawn_user("green", "rx", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(s, BindTo::Port(99))?;
            let (data, _) = p.recvfrom(s, 10)?;
            assert_eq!(data, b"hi");
            Ok(())
        })
        .unwrap();
    let tx = cluster
        .spawn_user("red", "tx", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let host = p.cluster().resolve_host("green")?;
            p.connect(
                s,
                &SockName::Inet {
                    host: host.0,
                    port: 99,
                },
            )?;
            p.write(s, b"hi")?;
            Ok(())
        })
        .unwrap();
    assert_eq!(green.wait_exit(rx), Some(TermReason::Normal));
    assert_eq!(
        cluster.machine("red").unwrap().wait_exit(tx),
        Some(TermReason::Normal)
    );
    cluster.shutdown();
}

#[test]
fn stream_is_reliable_and_ordered_across_many_writes() {
    let cluster = two_machines();
    let green = cluster.machine("green").unwrap();
    let server = cluster
        .spawn_user("green", "server", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(2000))?;
            p.listen(s, 4)?;
            let (conn, _) = p.accept(s)?;
            let mut got = Vec::new();
            loop {
                let chunk = p.read(conn, 64)?;
                if chunk.is_empty() {
                    break;
                }
                got.extend_from_slice(&chunk);
            }
            let want: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
            assert_eq!(got, want, "stream bytes reordered or lost");
            Ok(())
        })
        .unwrap();
    let client = cluster
        .spawn_user("red", "client", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.connect_host(s, "green", 2000)?;
            let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
            for chunk in data.chunks(100) {
                p.write(s, chunk)?;
            }
            p.close(s)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(green.wait_exit(server), Some(TermReason::Normal));
    assert_eq!(
        cluster.machine("red").unwrap().wait_exit(client),
        Some(TermReason::Normal)
    );
    cluster.shutdown();
}

#[test]
fn lossy_network_drops_datagrams_but_never_stream_bytes() {
    let cluster = Cluster::builder()
        .net(NetConfig::lossy())
        .seed(3)
        .machine("red")
        .machine("green")
        .build();
    let green = cluster.machine("green").unwrap();

    // Datagrams: send 200, expect visibly fewer to arrive.
    let n_recv = Arc::new(Mutex::new(0usize));
    let n = n_recv.clone();
    let rx = cluster
        .spawn_user("green", "rx", U, move |p| {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(s, BindTo::Port(7))?;
            loop {
                let (data, _) = p.recvfrom(s, 16)?;
                if data == b"done" {
                    break;
                }
                *n.lock() += 1;
            }
            Ok(())
        })
        .unwrap();
    let tx = cluster
        .spawn_user("red", "tx", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let host = p.cluster().resolve_host("green")?;
            let dest = SockName::Inet {
                host: host.0,
                port: 7,
            };
            for _ in 0..200 {
                p.sendto(s, b"ping", &dest)?;
            }
            // A reliable "done" has to go over a stream… but to keep
            // this self-contained, spam the sentinel until it lands.
            for _ in 0..200 {
                p.sendto(s, b"done", &dest)?;
            }
            Ok(())
        })
        .unwrap();
    cluster.machine("red").unwrap().wait_exit(tx);
    green.wait_exit(rx);
    let received = *n_recv.lock();
    assert!(received < 200, "no datagrams lost in a 20%-loss network");
    assert!(received > 50, "implausibly many datagrams lost: {received}");
    assert!(cluster.wire_stats().snapshot().datagrams_lost > 0);
    cluster.shutdown();
}

#[test]
fn connect_to_unbound_port_is_refused() {
    let cluster = two_machines();
    let c = cluster
        .spawn_user("red", "c", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            assert_eq!(
                p.connect_host(s, "green", 12345),
                Err(SysError::Econnrefused)
            );
            Ok(())
        })
        .unwrap();
    assert_eq!(
        cluster.machine("red").unwrap().wait_exit(c),
        Some(TermReason::Normal)
    );
    cluster.shutdown();
}

#[test]
fn eof_and_epipe_after_close() {
    let cluster = two_machines();
    let green = cluster.machine("green").unwrap();
    let server = cluster
        .spawn_user("green", "server", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(2100))?;
            p.listen(s, 1)?;
            let (conn, _) = p.accept(s)?;
            assert_eq!(p.read(conn, 100)?, b"bye");
            assert_eq!(p.read(conn, 100)?, b"", "expected EOF after peer close");
            // Writing into the dead connection breaks the pipe.
            assert_eq!(p.write(conn, b"x"), Err(SysError::Epipe));
            Ok(())
        })
        .unwrap();
    let client = cluster
        .spawn_user("red", "client", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.connect_host(s, "green", 2100)?;
            p.write(s, b"bye")?;
            p.close(s)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(green.wait_exit(server), Some(TermReason::Normal));
    assert_eq!(
        cluster.machine("red").unwrap().wait_exit(client),
        Some(TermReason::Normal)
    );
    cluster.shutdown();
}

#[test]
fn unix_domain_sockets_work_within_a_machine() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let server = cluster
        .spawn_user("red", "server", U, |p| {
            let s = p.socket(Domain::Unix, SockType::Stream)?;
            p.bind(s, BindTo::Path("/tmp/srv".into()))?;
            p.listen(s, 1)?;
            let (conn, peer) = p.accept(s)?;
            assert!(
                matches!(peer, SockName::Internal(_)),
                "auto-bound unix name"
            );
            assert_eq!(p.read(conn, 10)?, b"local");
            Ok(())
        })
        .unwrap();
    let client = cluster
        .spawn_user("red", "client", U, |p| {
            let s = p.socket(Domain::Unix, SockType::Stream)?;
            p.connect(s, &SockName::UnixPath("/tmp/srv".into()))?;
            p.write(s, b"local")?;
            Ok(())
        })
        .unwrap();
    assert_eq!(red.wait_exit(server), Some(TermReason::Normal));
    assert_eq!(red.wait_exit(client), Some(TermReason::Normal));
    cluster.shutdown();
}

#[test]
fn socketpair_connects_both_ends() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let pid = cluster
        .spawn_user("red", "pair", U, |p| {
            let (a, b) = p.socketpair()?;
            p.write(a, b"ab")?;
            assert_eq!(p.read(b, 10)?, b"ab");
            p.write(b, b"ba")?;
            assert_eq!(p.read(a, 10)?, b"ba");
            Ok(())
        })
        .unwrap();
    assert_eq!(red.wait_exit(pid), Some(TermReason::Normal));
    cluster.shutdown();
}

#[test]
fn bind_errors() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let pid = cluster
        .spawn_user("red", "b", U, |p| {
            let s1 = p.socket(Domain::Inet, SockType::Stream)?;
            let s2 = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s1, BindTo::Port(80))?;
            assert_eq!(p.bind(s2, BindTo::Port(80)), Err(SysError::Eaddrinuse));
            assert_eq!(
                p.bind(s2, BindTo::Path("/x".into())),
                Err(SysError::Einval),
                "path bind on an inet socket"
            );
            assert_eq!(p.bind(99, BindTo::Port(81)), Err(SysError::Ebadf));
            // double bind
            assert_eq!(p.bind(s1, BindTo::Port(82)), Err(SysError::Einval));
            Ok(())
        })
        .unwrap();
    assert_eq!(red.wait_exit(pid), Some(TermReason::Normal));
    cluster.shutdown();
}

#[test]
fn fork_child_inherits_descriptors_and_parent_sees_termination() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let pid = cluster
        .spawn_user("red", "parent", U, |p| {
            let (a, b) = p.socketpair()?;
            let child = p.fork_with(move |c| {
                // The child writes through the inherited descriptor.
                c.write(b, b"from child")?;
                Ok(())
            })?;
            assert_eq!(p.read(a, 100)?, b"from child");
            let (dead, reason) = p.wait_child()?;
            assert_eq!(dead, child);
            assert_eq!(reason, TermReason::Normal);
            Ok(())
        })
        .unwrap();
    assert_eq!(red.wait_exit(pid), Some(TermReason::Normal));
    cluster.shutdown();
}

#[test]
fn stop_cont_kill_control_a_process() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let looper = red.spawn_fn("looper", U, None, true, |p| loop {
        p.compute_ms(1)?;
    });
    // Let it run, then stop it.
    while red.proc_cpu_us(looper).unwrap() == 0 {
        std::thread::yield_now();
    }
    red.signal(None, looper, Sig::Stop).unwrap();
    // Wait until the thread actually parks at a syscall boundary.
    let mut spins = 0;
    let cpu_at_stop = loop {
        let a = red.proc_cpu_us(looper).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = red.proc_cpu_us(looper).unwrap();
        if a == b {
            break b;
        }
        spins += 1;
        assert!(spins < 1000, "process never stopped");
    };
    assert_eq!(red.proc_state(looper), Some(RunState::Stopped));
    std::thread::sleep(std::time::Duration::from_millis(5));
    assert_eq!(
        red.proc_cpu_us(looper).unwrap(),
        cpu_at_stop,
        "stopped process burned CPU"
    );
    // Resume, verify progress, then kill.
    red.signal(None, looper, Sig::Cont).unwrap();
    while red.proc_cpu_us(looper).unwrap() == cpu_at_stop {
        std::thread::yield_now();
    }
    red.signal(None, looper, Sig::Kill).unwrap();
    assert_eq!(red.wait_exit(looper), Some(TermReason::Killed));
    cluster.shutdown();
}

#[test]
fn kill_unblocks_a_blocked_accept() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let pid = cluster
        .spawn_user("red", "blocked", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(2200))?;
            p.listen(s, 1)?;
            let _ = p.accept(s)?; // nobody will ever connect
            unreachable!("accept returned without a connector");
        })
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(10));
    red.signal(None, pid, Sig::Kill).unwrap();
    assert_eq!(red.wait_exit(pid), Some(TermReason::Killed));
    cluster.shutdown();
}

#[test]
fn suspended_process_runs_only_after_start() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let flag = Arc::new(Mutex::new(false));
    let f = flag.clone();
    let pid = red.spawn_fn("suspended", U, None, false, move |_p| {
        *f.lock() = true;
        Ok(())
    });
    assert_eq!(red.proc_state(pid), Some(RunState::Embryo));
    std::thread::sleep(std::time::Duration::from_millis(10));
    assert!(!*flag.lock(), "suspended process executed an instruction");
    red.signal(None, pid, Sig::Cont).unwrap();
    assert_eq!(red.wait_exit(pid), Some(TermReason::Normal));
    assert!(*flag.lock());
    cluster.shutdown();
}

#[test]
fn program_registry_spawn_file_and_console() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    cluster.register_program("greet", |p, args| {
        let who = args
            .first()
            .map(String::as_str)
            .unwrap_or("world")
            .to_owned();
        p.write(1, format!("hello {who}\n").as_bytes())?;
        Ok(())
    });
    cluster.install_program_file("red", "/bin/greet", "greet");
    let spawner = cluster
        .spawn_user("red", "daemonish", U, |p| {
            let child = p.spawn_file("/bin/greet", vec!["unix".into()], None)?;
            // Created suspended, as §3.5.1 requires.
            p.kill(child, dpm_simos::Sig::Cont)?;
            let (dead, reason) = p.wait_child()?;
            assert_eq!(dead, child);
            assert_eq!(reason, TermReason::Normal);
            // Console output is visible to the host.
            let out = p.machine().console_output(child).unwrap();
            assert_eq!(String::from_utf8_lossy(&out), "hello unix\n");
            // Errors for bad files:
            assert_eq!(
                p.spawn_file("/bin/missing", vec![], None),
                Err(SysError::Enoent)
            );
            p.machine()
                .fs()
                .write("/bin/junk", b"not a program".to_vec());
            assert_eq!(
                p.spawn_file("/bin/junk", vec![], None),
                Err(SysError::Enoexec)
            );
            Ok(())
        })
        .unwrap();
    assert_eq!(red.wait_exit(spawner), Some(TermReason::Normal));
    cluster.shutdown();
}

#[test]
fn console_stdin_feeds_and_eofs() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let pid = cluster
        .spawn_user("red", "cat", U, |p| {
            let mut lines = Vec::new();
            while let Some(line) = p.read_line(0)? {
                lines.push(line);
            }
            assert_eq!(lines, vec!["first".to_owned(), "second".to_owned()]);
            Ok(())
        })
        .unwrap();
    red.feed_stdin(pid, b"first\nsecond\n");
    red.close_stdin(pid);
    assert_eq!(red.wait_exit(pid), Some(TermReason::Normal));
    cluster.shutdown();
}

// ---------------------------------------------------------------------
// Metering
// ---------------------------------------------------------------------

/// Runs a simple metered workload and returns the decoded meter
/// messages the collector received.
fn metered_workload(flags: MeterFlags, buffer_msgs: u32) -> Vec<MeterMsg> {
    let cluster = Cluster::builder()
        .net(NetConfig::ideal())
        .seed(9)
        .meter_buffer(buffer_msgs)
        .machine("red")
        .machine("blue")
        .build();
    let red = cluster.machine("red").unwrap();
    let blue = cluster.machine("blue").unwrap();
    let (collector, buf) = spawn_collector(&cluster, "blue", 4000);

    // The workload: talk to a local echo-ish datagram peer.
    let worker = red.spawn_fn("worker", U, None, false, |p| {
        let s = p.socket(Domain::Inet, SockType::Datagram)?;
        p.bind(s, BindTo::Port(5555))?;
        let peer = p.socket(Domain::Inet, SockType::Datagram)?;
        let me = p.cluster().resolve_host("red")?;
        for i in 0..5u8 {
            p.sendto(
                peer,
                &[i; 8],
                &SockName::Inet {
                    host: me.0,
                    port: 5555,
                },
            )?;
            let (_data, _src) = p.recvfrom(s, 64)?;
        }
        let d = p.dup(peer)?;
        p.close(d)?;
        Ok(())
    });

    // A stand-in meterdaemon meters the suspended worker, then starts it.
    let daemon = red.spawn_fn("daemon", U, None, true, move |p| {
        meter_process(&p, worker, flags, "blue", 4000)?;
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    red.wait_exit(daemon);
    red.wait_exit(worker);
    blue.wait_exit(collector);
    let bytes = buf.lock().clone();
    cluster.shutdown();
    MeterMsg::decode_all(&bytes).expect("well-formed meter stream")
}

#[test]
fn metered_process_produces_decodable_event_stream() {
    let flags = MeterFlags::ALL | MeterFlags::IMMEDIATE;
    let msgs = metered_workload(flags, 8);
    // 2 socket creates + 5 sends + 5 recvcalls + 5 recvs + dup +
    // 2 closes (dup'd fd and... the workload closes only `d`) + termproc.
    let count = |t: u32| msgs.iter().filter(|m| m.header.trace_type == t).count();
    assert_eq!(count(trace_type::SOCKET), 2);
    assert_eq!(count(trace_type::SEND), 5);
    assert_eq!(count(trace_type::RECEIVECALL), 5);
    assert_eq!(count(trace_type::RECEIVE), 5);
    assert_eq!(count(trace_type::DUP), 1);
    assert_eq!(count(trace_type::DESTSOCKET), 1);
    assert_eq!(count(trace_type::TERMPROC), 1);
    // Every message is stamped with the right machine id (red == 0).
    assert!(msgs.iter().all(|m| m.header.machine == 0));
    // Send bodies carry the destination name (datagrams).
    for m in &msgs {
        if let MeterBody::Send(s) = &m.body {
            assert_eq!(s.msg_length, 8);
            assert!(matches!(s.dest_name, Some(SockName::Inet { .. })));
        }
    }
}

#[test]
fn flag_selection_filters_event_kinds() {
    let msgs = metered_workload(MeterFlags::SEND | MeterFlags::IMMEDIATE, 8);
    assert!(!msgs.is_empty());
    assert!(
        msgs.iter().all(|m| m.header.trace_type == trace_type::SEND),
        "only send events were flagged"
    );
    assert_eq!(msgs.len(), 5);
}

#[test]
fn buffering_delivers_the_same_events_as_immediate() {
    let flags = MeterFlags::ALL;
    let buffered = metered_workload(flags, 6);
    let immediate = metered_workload(flags | MeterFlags::IMMEDIATE, 6);
    let kinds = |ms: &[MeterMsg]| {
        let mut v: Vec<u32> = ms.iter().map(|m| m.header.trace_type).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(kinds(&buffered), kinds(&immediate));
    // Termination flushed the tail: the last event is termproc.
    assert_eq!(
        buffered.last().unwrap().header.trace_type,
        trace_type::TERMPROC
    );
}

#[test]
fn meter_messages_have_monotone_cpu_time_per_process() {
    let msgs = metered_workload(MeterFlags::ALL, 4);
    let stamps: Vec<u32> = msgs.iter().map(|m| m.header.cpu_time).collect();
    let mut sorted = stamps.clone();
    sorted.sort_unstable();
    assert_eq!(stamps, sorted, "single-machine event stamps out of order");
    // procTime is quantized to 10 ms.
    assert!(msgs.iter().all(|m| m.header.proc_time % 10 == 0));
}

#[test]
fn meter_socket_is_invisible_to_the_metered_process() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let (collector, _buf) = spawn_collector(&cluster, "green", 4100);

    let fds_before = Arc::new(Mutex::new(0u32));
    let fb = fds_before.clone();
    let worker = red.spawn_fn("worker", U, None, false, move |p| {
        // A metered process allocating a socket must get the same fd it
        // would get unmetered: the meter connection consumed no slot.
        let s = p.socket(Domain::Inet, SockType::Datagram)?;
        *fb.lock() = s;
        Ok(())
    });
    let daemon = red.spawn_fn("daemon", U, None, true, move |p| {
        meter_process(&p, worker, MeterFlags::ALL, "green", 4100)?;
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    red.wait_exit(daemon);
    red.wait_exit(worker);
    assert_eq!(*fds_before.lock(), 3, "first fd after stdio must be 3");
    cluster.machine("green").unwrap().wait_exit(collector);
    cluster.shutdown();
}

#[test]
fn setmeter_permission_and_argument_errors() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let victim = red.spawn_fn("victim", Uid(200), None, false, |p| {
        p.compute_ms(1)?;
        Ok(())
    });
    let tester = red.spawn_fn("tester", Uid(100), None, true, move |p| {
        // Different uid: EPERM.
        assert_eq!(
            p.setmeter(
                PidSel::Pid(victim),
                FlagSel::Set(MeterFlags::ALL),
                SockSel::NoChange
            ),
            Err(SysError::Eperm)
        );
        // Unknown pid: ESRCH.
        assert_eq!(
            p.setmeter(PidSel::Pid(Pid(99999)), FlagSel::None, SockSel::NoChange),
            Err(SysError::Esrch)
        );
        // Bad socket descriptor: ESRCH ("the socket does not exist").
        assert_eq!(
            p.setmeter(
                PidSel::Current,
                FlagSel::Set(MeterFlags::ALL),
                SockSel::Fd(77)
            ),
            Err(SysError::Esrch)
        );
        // Wrong kind of socket: EINVAL.
        let dg = p.socket(Domain::Inet, SockType::Datagram)?;
        assert_eq!(
            p.setmeter(PidSel::Current, FlagSel::NoChange, SockSel::Fd(dg)),
            Err(SysError::Einval)
        );
        let ux = p.socket(Domain::Unix, SockType::Stream)?;
        assert_eq!(
            p.setmeter(PidSel::Current, FlagSel::NoChange, SockSel::Fd(ux)),
            Err(SysError::Einval)
        );
        // Setting flags on self works; Set replaces, None clears.
        p.setmeter(
            PidSel::Current,
            FlagSel::Set(MeterFlags::SEND),
            SockSel::NoChange,
        )?;
        assert_eq!(p.getmeter(PidSel::Current)?, MeterFlags::SEND);
        p.setmeter(
            PidSel::Current,
            FlagSel::Set(MeterFlags::FORK),
            SockSel::NoChange,
        )?;
        assert_eq!(
            p.getmeter(PidSel::Current)?,
            MeterFlags::FORK,
            "Set must replace"
        );
        p.setmeter(PidSel::Current, FlagSel::None, SockSel::NoChange)?;
        assert_eq!(p.getmeter(PidSel::Current)?, MeterFlags::NONE);
        Ok(())
    });
    assert_eq!(red.wait_exit(tester), Some(TermReason::Normal));
    red.signal(None, victim, Sig::Kill).unwrap();
    red.wait_exit(victim);
    cluster.shutdown();
}

#[test]
fn root_may_meter_anyone() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let victim = red.spawn_fn("victim", Uid(200), None, false, |p| {
        p.compute_ms(1)?;
        Ok(())
    });
    let root = red.spawn_fn("root", Uid::ROOT, None, true, move |p| {
        p.setmeter(
            PidSel::Pid(victim),
            FlagSel::Set(MeterFlags::ALL),
            SockSel::NoChange,
        )?;
        p.kill(victim, Sig::Cont)?;
        Ok(())
    });
    assert_eq!(red.wait_exit(root), Some(TermReason::Normal));
    assert_eq!(red.wait_exit(victim), Some(TermReason::Normal));
    cluster.shutdown();
}

#[test]
fn fork_children_inherit_metering() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let (collector, buf) = spawn_collector(&cluster, "green", 4200);

    let worker = red.spawn_fn("parent", U, None, false, |p| {
        let child = p.fork_with(|c| {
            // The child is metered without ever calling setmeter.
            let s = c.socket(Domain::Inet, SockType::Datagram)?;
            c.close(s)?;
            Ok(())
        })?;
        let _ = p.wait_child()?;
        let _ = child;
        Ok(())
    });
    let daemon = red.spawn_fn("daemon", U, None, true, move |p| {
        meter_process(
            &p,
            worker,
            MeterFlags::ALL | MeterFlags::IMMEDIATE,
            "green",
            4200,
        )?;
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    red.wait_exit(daemon);
    red.wait_exit(worker);
    cluster.machine("green").unwrap().wait_exit(collector);
    let msgs = MeterMsg::decode_all(&buf.lock()).unwrap();
    cluster.shutdown();

    let fork_evt = msgs
        .iter()
        .find_map(|m| match &m.body {
            MeterBody::Fork(f) => Some(*f),
            _ => None,
        })
        .expect("fork event present");
    let child_pid = fork_evt.new_pid;
    let child_events: Vec<_> = msgs.iter().filter(|m| m.body.pid() == child_pid).collect();
    assert!(
        child_events
            .iter()
            .any(|m| m.header.trace_type == trace_type::SOCKET),
        "child's socket create was metered"
    );
    assert!(
        child_events
            .iter()
            .any(|m| m.header.trace_type == trace_type::TERMPROC),
        "child's termination was metered"
    );
}

#[test]
fn accept_and_connect_events_pair_by_names() {
    let cluster = two_machines();
    let red = cluster.machine("red").unwrap();
    let green = cluster.machine("green").unwrap();
    let (collector, buf) = spawn_collector_n(&cluster, "green", 4300, 2);

    let server = red.spawn_fn("server", U, None, false, |p| {
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        p.bind(s, BindTo::Port(2500))?;
        p.listen(s, 2)?;
        let (conn, _) = p.accept(s)?;
        let _ = p.read(conn, 100)?;
        Ok(())
    });
    let client = green.spawn_fn("client", U, None, false, |p| {
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        p.connect_host(s, "red", 2500)?;
        p.write(s, b"x")?;
        Ok(())
    });
    let daemon_r = red.spawn_fn("daemon-r", U, None, true, move |p| {
        meter_process(
            &p,
            server,
            MeterFlags::ALL | MeterFlags::IMMEDIATE,
            "green",
            4300,
        )?;
        p.kill(server, Sig::Cont)?;
        Ok(())
    });
    red.wait_exit(daemon_r);
    let daemon_g = green.spawn_fn("daemon-g", U, None, true, move |p| {
        meter_process(
            &p,
            client,
            MeterFlags::ALL | MeterFlags::IMMEDIATE,
            "green",
            4300,
        )?;
        p.kill(client, Sig::Cont)?;
        Ok(())
    });
    green.wait_exit(daemon_g);
    red.wait_exit(server);
    green.wait_exit(client);
    green.wait_exit(collector);
    let msgs = MeterMsg::decode_all(&buf.lock()).unwrap();
    cluster.shutdown();

    let accept = msgs
        .iter()
        .find_map(|m| match &m.body {
            MeterBody::Accept(a) => Some(a.clone()),
            _ => None,
        })
        .expect("accept event");
    let connect = msgs
        .iter()
        .find_map(|m| match &m.body {
            MeterBody::Connect(c) => Some(c.clone()),
            _ => None,
        })
        .expect("connect event");
    // The pairing rule the analysis uses: the connector's sock_name is
    // the acceptor's peer_name and vice versa.
    assert_eq!(connect.sock_name, accept.peer_name);
    assert_eq!(connect.peer_name, accept.sock_name);
    assert_ne!(accept.sock, accept.new_sock);
}

#[test]
fn clock_skew_shows_up_in_cross_machine_stamps() {
    let cluster = Cluster::builder()
        .net(NetConfig::ideal())
        .machine_with_clock(
            "ahead",
            ClockSpec {
                offset_us: 60_000_000, // one minute ahead
                skew_ppm: 0,
            },
        )
        .machine_with_clock("behind", ClockSpec::default())
        .build();
    let ahead = cluster.machine("ahead").unwrap();
    let behind = cluster.machine("behind").unwrap();
    let a = ahead.spawn_fn("a", U, None, true, |p| {
        p.compute_ms(5)?;
        Ok(())
    });
    let b = behind.spawn_fn("b", U, None, true, |p| {
        p.compute_ms(5)?;
        Ok(())
    });
    ahead.wait_exit(a);
    behind.wait_exit(b);
    assert!(
        ahead.clock().now_ms() >= behind.clock().now_ms() + 59_000,
        "machine clocks should disagree by about a minute"
    );
    cluster.shutdown();
}
