//! Edge cases of the kernel metering machinery: the `setmeter(2)`
//! manual page's fine print, buffer-threshold boundaries, lost
//! messages, inheritance depth, and accounting granularity.

use dpm_meter::{trace_type, MeterFlags, MeterMsg, TermReason};
use dpm_simnet::NetConfig;
use dpm_simos::{
    BindTo, Cluster, Domain, FlagSel, Pid, PidSel, Proc, Sig, SockSel, SockType, SysResult, Uid,
};
use parking_lot::Mutex;
use std::sync::Arc;

const U: Uid = Uid(100);

fn cluster(buffer: u32) -> Arc<Cluster> {
    Cluster::builder()
        .net(NetConfig::ideal())
        .seed(2)
        .meter_buffer(buffer)
        .machine("work")
        .machine("mon")
        .build()
}

fn collector(c: &Arc<Cluster>, port: u16) -> (Pid, Arc<Mutex<Vec<u8>>>) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let out = buf.clone();
    let pid = c
        .spawn_user("mon", "collector", U, move |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(port))?;
            p.listen(s, 8)?;
            let (conn, _) = p.accept(s)?;
            loop {
                let d = p.read(conn, 8192)?;
                if d.is_empty() {
                    break;
                }
                out.lock().extend_from_slice(&d);
            }
            Ok(())
        })
        .unwrap();
    (pid, buf)
}

fn meter(p: &Proc, target: Pid, flags: MeterFlags, port: u16) -> SysResult<()> {
    let s = p.socket(Domain::Inet, SockType::Stream)?;
    p.connect_host(s, "mon", port)?;
    p.setmeter(PidSel::Pid(target), FlagSel::Set(flags), SockSel::Fd(s))?;
    p.close(s)
}

/// "The socket must be connected to be used, though this is not
/// checked. Meter messages are lost if they are sent on an unconnected
/// socket." (App. C)
#[test]
fn unconnected_meter_socket_loses_messages_silently() {
    let c = cluster(2);
    let work = c.machine("work").unwrap();
    let worker = work.spawn_fn("worker", U, None, false, |p| {
        for _ in 0..10 {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            p.close(s)?;
        }
        Ok(())
    });
    let setup = work.spawn_fn("setup", U, None, true, move |p| {
        // A never-connected Internet stream socket is *accepted*.
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        p.setmeter(
            PidSel::Pid(worker),
            FlagSel::Set(MeterFlags::ALL),
            SockSel::Fd(s),
        )?;
        p.close(s)?;
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    assert_eq!(work.wait_exit(setup), Some(TermReason::Normal));
    assert_eq!(work.wait_exit(worker), Some(TermReason::Normal));
    // Nothing crossed the wire and nothing crashed.
    assert_eq!(c.wire_stats().snapshot().meter_frames, 0);
    c.shutdown();
}

/// Buffer-threshold boundary: with threshold N, exactly N events make
/// exactly one frame; N+1 events make one frame plus the termination
/// flush.
#[test]
fn flush_happens_exactly_at_the_threshold() {
    for (events, expect_frames) in [(3u32, 1u64), (4, 2)] {
        let c = cluster(3);
        let work = c.machine("work").unwrap();
        let mon = c.machine("mon").unwrap();
        let (cpid, buf) = collector(&c, 4000);
        // `events` socket-create events and nothing else (termproc is
        // unflagged so the tail only flushes, adding no event).
        let worker = work.spawn_fn("worker", U, None, false, move |p| {
            for _ in 0..events {
                let s = p.socket(Domain::Inet, SockType::Datagram)?;
                // close is unflagged below
                let _ = s;
            }
            Ok(())
        });
        let setup = work.spawn_fn("setup", U, None, true, move |p| {
            meter(&p, worker, MeterFlags::SOCKET, 4000)?;
            p.kill(worker, Sig::Cont)?;
            Ok(())
        });
        work.wait_exit(setup);
        work.wait_exit(worker);
        mon.wait_exit(cpid);
        let msgs = MeterMsg::decode_all(&buf.lock()).unwrap();
        assert_eq!(msgs.len() as u32, events);
        assert_eq!(
            c.wire_stats().snapshot().meter_frames,
            expect_frames,
            "{events} events, threshold 3"
        );
        c.shutdown();
    }
}

/// Metering survives two generations of fork.
#[test]
fn grandchildren_inherit_metering() {
    let c = cluster(1);
    let work = c.machine("work").unwrap();
    let mon = c.machine("mon").unwrap();
    let (cpid, buf) = collector(&c, 4000);
    let worker = work.spawn_fn("gen0", U, None, false, |p| {
        p.fork_with(|child| {
            child.fork_with(|grandchild| {
                let s = grandchild.socket(Domain::Inet, SockType::Datagram)?;
                let _ = s;
                Ok(())
            })?;
            let _ = child.wait_child()?;
            Ok(())
        })?;
        let _ = p.wait_child()?;
        Ok(())
    });
    let setup = work.spawn_fn("setup", U, None, true, move |p| {
        meter(
            &p,
            worker,
            MeterFlags::FORK | MeterFlags::SOCKET | MeterFlags::TERMPROC,
            4000,
        )?;
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    work.wait_exit(setup);
    work.wait_exit(worker);
    mon.wait_exit(cpid);
    let msgs = MeterMsg::decode_all(&buf.lock()).unwrap();
    c.shutdown();
    let forks = msgs
        .iter()
        .filter(|m| m.header.trace_type == trace_type::FORK)
        .count();
    let sockets = msgs
        .iter()
        .filter(|m| m.header.trace_type == trace_type::SOCKET)
        .count();
    let terms = msgs
        .iter()
        .filter(|m| m.header.trace_type == trace_type::TERMPROC)
        .count();
    assert_eq!(forks, 2, "two fork events");
    assert_eq!(sockets, 1, "grandchild's socket event was metered");
    assert_eq!(terms, 3, "all three generations' terminations");
}

/// `procTime` is reported in 10 ms increments (§4.1), and `cpuTime`
/// stamps are non-decreasing per process.
#[test]
fn records_respect_accounting_granularity() {
    let c = cluster(4);
    let work = c.machine("work").unwrap();
    let mon = c.machine("mon").unwrap();
    let (cpid, buf) = collector(&c, 4000);
    let worker = work.spawn_fn("worker", U, None, false, |p| {
        for i in 0..10 {
            p.compute_ms(3 + i)?;
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let _ = s;
        }
        Ok(())
    });
    let setup = work.spawn_fn("setup", U, None, true, move |p| {
        meter(&p, worker, MeterFlags::SOCKET | MeterFlags::TERMPROC, 4000)?;
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    work.wait_exit(setup);
    work.wait_exit(worker);
    mon.wait_exit(cpid);
    let msgs = MeterMsg::decode_all(&buf.lock()).unwrap();
    c.shutdown();
    assert!(!msgs.is_empty());
    let mut last_cpu = 0;
    let mut last_proc = 0;
    for m in &msgs {
        assert_eq!(m.header.proc_time % 10, 0, "10 ms granularity");
        assert!(m.header.cpu_time >= last_cpu, "local stamps monotone");
        assert!(m.header.proc_time >= last_proc, "cpu accounting monotone");
        last_cpu = m.header.cpu_time;
        last_proc = m.header.proc_time;
    }
    // The worker burned 3+4+…+12 = 75 ms; the final record's procTime
    // must reflect it (quantized down).
    assert!(msgs.last().unwrap().header.proc_time >= 70);
}

/// Closing the filter's end of the meter connection makes subsequent
/// flushes vanish without disturbing the metered process.
#[test]
fn filter_death_does_not_disturb_the_metered_process() {
    let c = cluster(1);
    let work = c.machine("work").unwrap();
    let mon = c.machine("mon").unwrap();
    // A collector that reads one frame and hangs up.
    let quit = Arc::new(Mutex::new(0usize));
    let q = quit.clone();
    let cpid = c
        .spawn_user("mon", "rude-collector", U, move |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(4000))?;
            p.listen(s, 8)?;
            let (conn, _) = p.accept(s)?;
            let d = p.read(conn, 8192)?;
            *q.lock() = d.len();
            p.close(conn)?; // hang up mid-session
            Ok(())
        })
        .unwrap();
    let worker = work.spawn_fn("worker", U, None, false, |p| {
        for _ in 0..50 {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let _ = s;
            p.compute_ms(1)?;
        }
        Ok(())
    });
    let setup = work.spawn_fn("setup", U, None, true, move |p| {
        meter(&p, worker, MeterFlags::ALL | MeterFlags::IMMEDIATE, 4000)?;
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    work.wait_exit(setup);
    assert_eq!(
        work.wait_exit(worker),
        Some(TermReason::Normal),
        "worker unaffected by the filter hanging up"
    );
    mon.wait_exit(cpid);
    assert!(
        *quit.lock() > 0,
        "at least one frame arrived before the hangup"
    );
    c.shutdown();
}

/// `getmeter` honors the same ownership rule as `setmeter`.
#[test]
fn getmeter_permissions() {
    let c = cluster(8);
    let work = c.machine("work").unwrap();
    let victim = work.spawn_fn("victim", Uid(200), None, false, |p| {
        p.compute_ms(1)?;
        Ok(())
    });
    let other = work.spawn_fn("other", Uid(100), None, true, move |p| {
        assert_eq!(
            p.getmeter(PidSel::Pid(victim)),
            Err(dpm_simos::SysError::Eperm)
        );
        assert_eq!(p.getmeter(PidSel::Current), Ok(MeterFlags::NONE));
        Ok(())
    });
    work.wait_exit(other);
    work.signal(None, victim, Sig::Kill).unwrap();
    work.wait_exit(victim);
    c.shutdown();
}

/// Changing the meter connection mid-run: records before the switch go
/// to the first filter, records after go to the second, and nothing is
/// lost at the boundary (the switch-time flush).
#[test]
fn switching_meter_sockets_loses_nothing() {
    let c = cluster(4);
    let work = c.machine("work").unwrap();
    let mon = c.machine("mon").unwrap();
    let (c1, buf1) = collector(&c, 4001);
    let (c2, buf2) = collector(&c, 4002);
    let gate = Arc::new(Mutex::new(false));
    let g = gate.clone();
    let worker = work.spawn_fn("worker", U, None, false, move |p| {
        for _ in 0..5 {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let _ = s;
        }
        // Wait for the switch.
        while !*g.lock() {
            p.sleep_ms(1)?;
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        for _ in 0..7 {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let _ = s;
        }
        Ok(())
    });
    let gate2 = gate.clone();
    let setup = work.spawn_fn("setup", Uid::ROOT, None, true, move |p| {
        meter(&p, worker, MeterFlags::SOCKET, 4001)?;
        p.kill(worker, Sig::Cont)?;
        // Let the first phase run.
        while work_events(&p, worker) < 5 {
            p.sleep_ms(1)?;
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        meter(&p, worker, MeterFlags::SOCKET, 4002)?;
        *gate2.lock() = true;
        Ok(())
    });
    fn work_events(p: &Proc, pid: Pid) -> u32 {
        // Syscall count proxy: CPU charged grows with each event.
        p.machine().proc_cpu_us(pid).unwrap_or(0) as u32 / 150
    }
    work.wait_exit(setup);
    work.wait_exit(worker);
    mon.wait_exit(c1);
    mon.wait_exit(c2);
    let m1 = MeterMsg::decode_all(&buf1.lock()).unwrap();
    let m2 = MeterMsg::decode_all(&buf2.lock()).unwrap();
    c.shutdown();
    let socks1 = m1
        .iter()
        .filter(|m| m.header.trace_type == trace_type::SOCKET)
        .count();
    let socks2 = m2
        .iter()
        .filter(|m| m.header.trace_type == trace_type::SOCKET)
        .count();
    assert_eq!(
        socks1 + socks2,
        12,
        "all 12 socket events captured: {socks1}+{socks2}"
    );
    assert!(socks1 >= 5, "first filter got the first phase");
    assert!(socks2 >= 1, "second filter got the tail");
}
