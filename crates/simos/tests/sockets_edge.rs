//! Socket-layer edge cases: backlog, non-blocking variants,
//! descriptor sharing, rebinding, datagram truncation, and domain
//! routing rules.

use dpm_meter::{SockName, TermReason};
use dpm_simnet::NetConfig;
use dpm_simos::{BindTo, Cluster, Domain, SockType, SysError, Uid};
use std::sync::Arc;

const U: Uid = Uid(100);

fn cluster() -> Arc<Cluster> {
    Cluster::builder()
        .net(NetConfig::ideal())
        .seed(3)
        .machine("a")
        .machine("b")
        .build()
}

#[test]
fn backlog_overflow_refuses_excess_connectors() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    // A listener with backlog 2 that never accepts: it blocks reading
    // its (never-fed) console until killed.
    let lazy = c
        .spawn_user("b", "lazy", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(3000))?;
            p.listen(s, 2)?;
            let _ = p.read(0, 1)?; // parks forever
            Ok(())
        })
        .unwrap();
    let started = Arc::new(parking_lot::Mutex::new(0u32));
    let client = {
        let started = started.clone();
        c.spawn_user("a", "clients", U, move |p| {
            // Two connects park in the backlog (they block, so spawn
            // children to issue them).
            for _ in 0..2 {
                let started = started.clone();
                p.fork_with(move |cp| {
                    let s = cp.socket(Domain::Inet, SockType::Stream)?;
                    *started.lock() += 1;
                    // Blocks forever (never accepted) until killed.
                    let _ = cp.connect_host(s, "b", 3000);
                    Ok(())
                })?;
            }
            // Wait (in real time — the children are real threads) for
            // both connects to be in flight, plus a beat to park.
            while *started.lock() < 2 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            std::thread::sleep(std::time::Duration::from_millis(30));
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            assert_eq!(
                p.connect_host(s, "b", 3000),
                Err(SysError::Econnrefused),
                "third connection exceeds the backlog"
            );
            Ok(())
        })
        .unwrap()
    };
    assert_eq!(a.wait_exit(client), Some(TermReason::Normal));
    let b = c.machine("b").unwrap();
    b.signal(None, lazy, dpm_simos::Sig::Kill).unwrap();
    b.wait_exit(lazy);
    c.shutdown();
}

#[test]
fn nonblocking_accept_and_read() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "nb", U, |p| {
            let l = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(l, BindTo::Port(3100))?;
            p.listen(l, 2)?;
            assert_eq!(p.accept_nb(l)?, None, "no pending connection yet");
            // Connect to ourselves from a child.
            p.fork_with(|cp| {
                let s = cp.socket(Domain::Inet, SockType::Stream)?;
                cp.connect_host(s, "a", 3100)?;
                cp.write(s, b"ping")?;
                cp.sleep_ms(200)?;
                Ok(())
            })?;
            // Poll until the connection shows up.
            let conn = loop {
                if let Some((conn, _)) = p.accept_nb(l)? {
                    break conn;
                }
                p.sleep_ms(1)?;
                std::thread::sleep(std::time::Duration::from_micros(200));
            };
            // Non-blocking read polls until data lands.
            let data = loop {
                if let Some(d) = p.read_nb(conn, 64)? {
                    break d;
                }
                p.sleep_ms(1)?;
                std::thread::sleep(std::time::Duration::from_micros(200));
            };
            assert_eq!(data, b"ping");
            let _ = p.wait_child()?;
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn dup_shares_the_socket_and_survives_closing_the_original() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "dup", U, |p| {
            let (x, y) = p.socketpair()?;
            let x2 = p.dup(x)?;
            p.close(x)?;
            // The duplicate still reaches the peer.
            p.write(x2, b"via dup")?;
            assert_eq!(p.read(y, 64)?, b"via dup");
            // And the peer still reaches the duplicate.
            p.write(y, b"back")?;
            assert_eq!(p.read(x2, 64)?, b"back");
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn port_is_reusable_after_the_socket_dies() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "rebind", U, |p| {
            let s1 = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(s1, BindTo::Port(3200))?;
            let s2 = p.socket(Domain::Inet, SockType::Datagram)?;
            assert_eq!(p.bind(s2, BindTo::Port(3200)), Err(SysError::Eaddrinuse));
            p.close(s1)?;
            p.bind(s2, BindTo::Port(3200))?; // now free
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn datagram_reads_truncate_to_the_buffer() {
    // "A datagram is read as a complete message. Each new read will
    // obtain bytes from a new message." (§3.1)
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "trunc", U, |p| {
            let rx = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(rx, BindTo::Port(3300))?;
            let tx = p.socket(Domain::Inet, SockType::Datagram)?;
            let me = p.cluster().resolve_host("a")?;
            let dest = SockName::Inet {
                host: me.0,
                port: 3300,
            };
            p.sendto(tx, b"0123456789", &dest)?;
            p.sendto(tx, b"second", &dest)?;
            let (d1, _) = p.recvfrom(rx, 4)?;
            assert_eq!(d1, b"0123", "truncated to the buffer");
            let (d2, _) = p.recvfrom(rx, 64)?;
            assert_eq!(d2, b"second", "the rest of message one is gone");
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn unix_domain_names_do_not_cross_machines() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    // Bind a unix datagram path on machine b.
    let server = c
        .spawn_user("b", "unixd", U, |p| {
            let s = p.socket(Domain::Unix, SockType::Datagram)?;
            p.bind(s, BindTo::Path("/tmp/svc".into()))?;
            // Expect exactly one message — the local one.
            let (d, _) = p.recvfrom(s, 64)?;
            assert_eq!(d, b"local");
            Ok(())
        })
        .unwrap();
    // A sender on machine a using the same path reaches nothing on b.
    let remote = c
        .spawn_user("a", "remote", U, |p| {
            let s = p.socket(Domain::Unix, SockType::Datagram)?;
            // Routed to machine a's own (empty) binding table: dropped.
            p.sendto(s, b"from-a", &SockName::UnixPath("/tmp/svc".into()))?;
            Ok(())
        })
        .unwrap();
    a.wait_exit(remote);
    // The local sender gets through.
    let local = c
        .spawn_user("b", "local", U, |p| {
            let s = p.socket(Domain::Unix, SockType::Datagram)?;
            p.sendto(s, b"local", &SockName::UnixPath("/tmp/svc".into()))?;
            Ok(())
        })
        .unwrap();
    let b = c.machine("b").unwrap();
    assert_eq!(b.wait_exit(local), Some(TermReason::Normal));
    assert_eq!(b.wait_exit(server), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn oversized_datagrams_are_rejected() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "big", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Datagram)?;
            let dest = SockName::Inet { host: 1, port: 9 };
            let big = vec![0u8; 70_000];
            assert_eq!(p.sendto(s, &big, &dest), Err(SysError::Emsgsize));
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn stream_sendto_and_datagram_listen_are_rejected() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "misuse", U, |p| {
            let st = p.socket(Domain::Inet, SockType::Stream)?;
            assert_eq!(
                p.sendto(st, b"x", &SockName::Inet { host: 0, port: 1 }),
                Err(SysError::Eopnotsupp)
            );
            let dg = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(dg, BindTo::Port(3400))?;
            assert_eq!(p.listen(dg, 1), Err(SysError::Eopnotsupp));
            // Listening requires a bound name.
            let unbound = p.socket(Domain::Inet, SockType::Stream)?;
            assert_eq!(p.listen(unbound, 1), Err(SysError::Einval));
            // Reading an unconnected stream is ENOTCONN.
            assert_eq!(p.read(unbound, 4), Err(SysError::Enotconn));
            // Writing it too.
            assert_eq!(p.write(unbound, b"x"), Err(SysError::Enotconn));
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn double_connect_is_eisconn() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let server = c
        .spawn_user("b", "srv", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(3500))?;
            p.listen(s, 2)?;
            let (conn, _) = p.accept(s)?;
            let _ = p.read(conn, 64)?;
            Ok(())
        })
        .unwrap();
    let client = c
        .spawn_user("a", "cli", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.connect_host(s, "b", 3500)?;
            assert_eq!(
                p.connect_host(s, "b", 3500),
                Err(SysError::Eisconn),
                "second connect on a connected socket"
            );
            p.write(s, b"x")?;
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(client), Some(TermReason::Normal));
    c.machine("b").unwrap().wait_exit(server);
    c.shutdown();
}

#[test]
fn wire_stats_count_frames_and_bytes() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let before = c.wire_stats().snapshot();
    let server = c
        .spawn_user("b", "srv", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(3600))?;
            p.listen(s, 1)?;
            let (conn, _) = p.accept(s)?;
            let mut got = 0;
            while got < 300 {
                let d = p.read(conn, 512)?;
                if d.is_empty() {
                    break;
                }
                got += d.len();
            }
            Ok(())
        })
        .unwrap();
    let client = c
        .spawn_user("a", "cli", U, |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.connect_host(s, "b", 3600)?;
            for _ in 0..3 {
                p.write(s, &[9u8; 100])?;
            }
            Ok(())
        })
        .unwrap();
    a.wait_exit(client);
    c.machine("b").unwrap().wait_exit(server);
    let after = c.wire_stats().snapshot().since(&before);
    assert_eq!(after.frames, 3, "three stream writes");
    assert_eq!(after.bytes, 300);
    assert_eq!(after.meter_frames, 0, "nothing metered here");
    assert_eq!(after.meter_byte_fraction(), 0.0);
    c.shutdown();
}

#[test]
fn select_multiplexes_datagram_stream_and_listener() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "selector", U, |p| {
            // Three very different descriptors in one read set.
            let dg = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(dg, BindTo::Port(3700))?;
            let listener = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(listener, BindTo::Port(3701))?;
            p.listen(listener, 2)?;
            let (sa, sb) = p.socketpair()?;

            // 1. Datagram readiness.
            let me = p.cluster().resolve_host("a")?;
            let tx = p.socket(Domain::Inet, SockType::Datagram)?;
            p.sendto(
                tx,
                b"dgram",
                &SockName::Inet {
                    host: me.0,
                    port: 3700,
                },
            )?;
            let ready = p.select(&[dg, listener, sa])?;
            assert_eq!(ready, vec![dg]);
            let (d, _) = p.recvfrom(dg, 64)?;
            assert_eq!(d, b"dgram");

            // 2. Stream data readiness.
            p.write(sb, b"stream")?;
            let ready = p.select(&[dg, listener, sa])?;
            assert_eq!(ready, vec![sa]);
            assert_eq!(p.read(sa, 64)?, b"stream");

            // 3. Listener readiness via a connecting child.
            p.fork_with(|cp| {
                let s = cp.socket(Domain::Inet, SockType::Stream)?;
                cp.connect_host(s, "a", 3701)?;
                Ok(())
            })?;
            let ready = p.select(&[dg, listener, sa])?;
            assert_eq!(ready, vec![listener]);
            let (_conn, _) = p.accept(listener)?;
            let _ = p.wait_child()?;

            // 4. EOF counts as readable.
            p.close(sb)?;
            let ready = p.select(&[dg, sa])?;
            assert_eq!(ready, vec![sa]);
            assert_eq!(p.read(sa, 64)?, b"", "EOF");

            // 5. Argument validation.
            assert_eq!(p.select(&[]), Err(SysError::Einval));
            assert_eq!(p.select(&[99]), Err(SysError::Ebadf));
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}

#[test]
fn select_blocks_until_something_arrives_and_kill_unblocks_it() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "selector", U, |p| {
            let dg = p.socket(Domain::Inet, SockType::Datagram)?;
            p.bind(dg, BindTo::Port(3800))?;
            let _ = p.select(&[dg])?; // nothing ever arrives
            unreachable!("select returned without data");
        })
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    a.signal(None, pid, dpm_simos::Sig::Kill).unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Killed));
    c.shutdown();
}

#[test]
fn shutdown_write_gives_half_close_semantics() {
    let c = cluster();
    let a = c.machine("a").unwrap();
    let pid = c
        .spawn_user("a", "halfclose", U, |p| {
            let (x, y) = p.socketpair()?;
            p.write(x, b"request")?;
            p.shutdown_write(x)?;
            // Our write side is closed…
            assert_eq!(p.write(x, b"more"), Err(SysError::Epipe));
            // …the peer drains the data, then sees end-of-file…
            assert_eq!(p.read(y, 64)?, b"request");
            assert_eq!(p.read(y, 64)?, b"", "EOF after shutdown");
            // …but the peer can still answer on the other direction.
            p.write(y, b"reply")?;
            assert_eq!(p.read(x, 64)?, b"reply");
            // Misuse errors.
            let dg = p.socket(Domain::Inet, SockType::Datagram)?;
            assert_eq!(p.shutdown_write(dg), Err(SysError::Eopnotsupp));
            let idle = p.socket(Domain::Inet, SockType::Stream)?;
            assert_eq!(p.shutdown_write(idle), Err(SysError::Enotconn));
            Ok(())
        })
        .unwrap();
    assert_eq!(a.wait_exit(pid), Some(TermReason::Normal));
    c.shutdown();
}
