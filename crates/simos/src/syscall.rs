//! The system-call interface: what a simulated program can do.
//!
//! A [`Proc`] is handed to every program body and plays the role of
//! the 4.2BSD system-call trap: `socket`, `bind`, `listen`, `connect`,
//! `accept`, `send`/`sendto`, `recv`/`recvfrom`, `read`, `write`,
//! `close`, `dup`, `socketpair`, `fork`, signals, `wait`, and the
//! paper's `setmeter(2)` (Appendix C).
//!
//! Metering is **transparent**: none of these interfaces change when a
//! process is metered, and the meter connection never appears in the
//! descriptor table (§2.2, §3.2).

use crate::cluster::Cluster;
use crate::error::{SysError, SysResult};
use crate::machine::{FlushPlan, Machine, Wait};
use crate::metering;
use crate::process::{Desc, Pid, RunState, Sig, Uid};
use crate::socket::{
    Dgram, Domain, PendingConn, RemoteSock, SockId, SockKind, SockType, Socket, StreamState,
};
use dpm_meter::{
    MeterAccept, MeterBody, MeterConnect, MeterDestSock, MeterDup, MeterFlags, MeterFork,
    MeterRecvCall, MeterRecvMsg, MeterSendMsg, MeterSockCrt, SockName, TermReason,
};
use dpm_simnet::HostId;
use std::sync::Arc;

/// A file descriptor.
pub type Fd = u32;

/// Where to bind a socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindTo {
    /// An Internet-domain port on this machine.
    Port(u16),
    /// A UNIX-domain path on this machine.
    Path(String),
}

/// Process selector for [`Proc::setmeter`] (the manual page's
/// `SELF or an integer process id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PidSel {
    /// The calling process (`-1` in the C interface).
    Current,
    /// A specific process on the same machine.
    Pid(Pid),
}

/// Flag selector for [`Proc::setmeter`]
/// (`NONE, NO_CHANGE or flags indicating the events to be metered`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagSel {
    /// Turn all flags off.
    None,
    /// Leave the flags unchanged.
    NoChange,
    /// Replace the mask with these flags.
    Set(MeterFlags),
}

/// Meter-connection selector for [`Proc::setmeter`]
/// (`NONE, NO_CHANGE or a meter connection socket`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockSel {
    /// Close the meter connection, if one exists.
    None,
    /// Leave the meter connection unchanged.
    NoChange,
    /// Install the socket behind this descriptor *of the calling
    /// process* as the target's meter socket. The descriptor is
    /// duplicated for the metered process but not placed in its
    /// descriptor table (§3.2).
    Fd(Fd),
}

/// Handle through which a simulated process makes system calls.
///
/// Cloning a `Proc` models a second thread of control in the same
/// process (the meterdaemon uses one for its SIGCHLD-style handler);
/// all clones share the one process-table entry.
#[derive(Clone)]
pub struct Proc {
    machine: Arc<Machine>,
    pid: Pid,
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("pid", &self.pid)
            .field("machine", &self.machine.name())
            .finish()
    }
}

impl Proc {
    pub(crate) fn new(machine: Arc<Machine>, pid: Pid) -> Proc {
        Proc { machine, pid }
    }

    /// The calling process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The owning user.
    pub fn uid(&self) -> Uid {
        self.machine.proc_uid(self.pid).unwrap_or_default()
    }

    /// The machine this process runs on.
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The literal host name of this process's machine.
    pub fn hostname(&self) -> &str {
        self.machine.name()
    }

    /// The cluster.
    pub fn cluster(&self) -> Arc<Cluster> {
        self.machine.cluster()
    }

    // ------------------------------------------------------------------
    // Prologue
    // ------------------------------------------------------------------

    /// System-call prologue: honors stop/kill control, synchronizes
    /// the process's virtual time with global time, charges the base
    /// system-call cost, and returns the fake "PC" (the syscall
    /// ordinal) recorded in meter messages.
    fn enter(&self) -> SysResult<u32> {
        // Block while stopped; abort when killed.
        self.machine.wait_on(self.pid, |_k| Ok(Wait::Ready(())))?;
        let cost = self.cluster().config().costs.syscall_us;
        let global = self.machine.clock().global().clone();
        let mut k = self.machine.kern.lock();
        let p = k.proc_mut(self.pid)?;
        p.local_us = p.local_us.max(global.now_us());
        p.local_us += cost;
        p.cpu_us += cost;
        p.syscall_count += 1;
        let pc = p.syscall_count;
        let local = p.local_us;
        drop(k);
        global.advance_to_us(local);
        Ok(pc)
    }

    /// Burns `ms` milliseconds of CPU — the program's "computation"
    /// (internal events, §1.2). Advances the process's clock and
    /// charges its CPU accounting.
    ///
    /// # Errors
    ///
    /// [`SysError::Killed`] if a kill signal is pending.
    pub fn compute_ms(&self, ms: u64) -> SysResult<()> {
        self.compute_us(ms * 1000)
    }

    /// Like [`Proc::compute_ms`] with microsecond resolution.
    pub fn compute_us(&self, us: u64) -> SysResult<()> {
        self.machine.wait_on(self.pid, |_k| Ok(Wait::Ready(())))?;
        let global = self.machine.clock().global().clone();
        let mut k = self.machine.kern.lock();
        let p = k.proc_mut(self.pid)?;
        p.local_us = p.local_us.max(global.now_us());
        p.local_us += us;
        p.cpu_us += us;
        let local = p.local_us;
        drop(k);
        global.advance_to_us(local);
        Ok(())
    }

    /// Sleeps `ms` milliseconds of virtual time without charging CPU.
    ///
    /// # Errors
    ///
    /// [`SysError::Killed`] if a kill signal is pending.
    pub fn sleep_ms(&self, ms: u64) -> SysResult<()> {
        self.machine.wait_on(self.pid, |_k| Ok(Wait::Ready(())))?;
        let global = self.machine.clock().global().clone();
        let mut k = self.machine.kern.lock();
        let p = k.proc_mut(self.pid)?;
        p.local_us = p.local_us.max(global.now_us()) + ms * 1000;
        let local = p.local_us;
        drop(k);
        global.advance_to_us(local);
        Ok(())
    }

    /// The machine's local clock in milliseconds as this process sees
    /// it — what `time(2)` would return.
    pub fn time_ms(&self) -> u32 {
        let k = self.machine.kern.lock();
        let local = k
            .procs
            .get(&self.pid)
            .map(|p| p.local_us)
            .unwrap_or_default();
        self.machine.clock().at_ms(local)
    }

    fn finish(&self, plans: Vec<FlushPlan>) {
        if !plans.is_empty() {
            let cluster = self.cluster();
            self.machine.run_plans(&cluster, plans);
        }
    }

    // ------------------------------------------------------------------
    // Socket creation and naming
    // ------------------------------------------------------------------

    /// `socket(2)`: creates an endpoint of communication.
    pub fn socket(&self, domain: Domain, stype: SockType) -> SysResult<Fd> {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let mut plans = Vec::new();
        let fd = {
            let mut k = self.machine.kern.lock();
            let sid = k.alloc_sock(|id| Socket::new(id, domain, stype));
            let p = k.proc_mut(self.pid)?;
            let fd = p.alloc_fd(Desc::Sock(sid));
            plans.extend(metering::emit(
                &mut k,
                &self.machine,
                &cluster,
                self.pid,
                MeterBody::SockCrt(MeterSockCrt {
                    pid: self.pid.0,
                    pc,
                    sock: sid.0,
                    domain: domain.as_u32(),
                    sock_type: stype.as_u32(),
                    protocol: 0,
                }),
            ));
            fd
        };
        self.finish(plans);
        Ok(fd)
    }

    /// `bind(2)`: gives the socket a name so others can send to it.
    ///
    /// # Errors
    ///
    /// `EBADF` for a bad descriptor, `EINVAL` if already bound or the
    /// address kind does not match the socket's domain, `EADDRINUSE`
    /// if the port or path is taken.
    pub fn bind(&self, fd: Fd, to: BindTo) -> SysResult<SockName> {
        self.enter()?;
        let host = self.machine.id().0;
        let mut k = self.machine.kern.lock();
        let sid = k.fd_sock(self.pid, fd)?;
        let name = match (&to, k.sock_mut(sid)?.domain) {
            (BindTo::Port(p), Domain::Inet) => SockName::Inet { host, port: *p },
            (BindTo::Path(p), Domain::Unix) => SockName::UnixPath(p.clone()),
            _ => return Err(SysError::Einval),
        };
        if k.sock_mut(sid)?.name.is_some() {
            return Err(SysError::Einval);
        }
        match &name {
            SockName::Inet { port, .. } => {
                if k.inet_binds.contains_key(port) {
                    return Err(SysError::Eaddrinuse);
                }
                k.inet_binds.insert(*port, sid);
            }
            SockName::UnixPath(p) => {
                if k.unix_binds.contains_key(p) {
                    return Err(SysError::Eaddrinuse);
                }
                k.unix_binds.insert(p.clone(), sid);
            }
            SockName::Internal(_) => unreachable!("bind never makes internal names"),
        }
        k.sock_mut(sid)?.name = Some(name.clone());
        Ok(name)
    }

    /// Auto-binds an unbound socket so it has a name to appear in
    /// meter records and datagram sources. Internet sockets get an
    /// ephemeral port; UNIX-domain sockets get an internally generated
    /// unique name (as socketpairs do, §4.1).
    fn autobind(
        k: &mut crate::machine::KernState,
        cluster: &Cluster,
        host: u32,
        sid: SockId,
    ) -> SysResult<SockName> {
        if let Some(n) = &k.sock_mut(sid)?.name {
            return Ok(n.clone());
        }
        let domain = k.sock_mut(sid)?.domain;
        let name = match domain {
            Domain::Inet => {
                let port = k.eph_port();
                k.inet_binds.insert(port, sid);
                SockName::Inet { host, port }
            }
            Domain::Unix => SockName::Internal(cluster.alloc_internal()),
        };
        k.sock_mut(sid)?.name = Some(name.clone());
        Ok(name)
    }

    /// `listen(2)`: marks a stream socket as accepting connections,
    /// with a queue of at most `backlog` pending requests.
    ///
    /// # Errors
    ///
    /// `EOPNOTSUPP` on a datagram socket, `EINVAL` if the socket is
    /// connected or unbound.
    pub fn listen(&self, fd: Fd, backlog: usize) -> SysResult<()> {
        self.enter()?;
        let mut k = self.machine.kern.lock();
        let sid = k.fd_sock(self.pid, fd)?;
        let sock = k.sock_mut(sid)?;
        if sock.name.is_none() {
            return Err(SysError::Einval);
        }
        match &mut sock.kind {
            SockKind::Stream { state, .. } => match state {
                StreamState::Idle => {
                    *state = StreamState::Listening {
                        backlog: backlog.max(1),
                        pending: Default::default(),
                    };
                    Ok(())
                }
                StreamState::Listening { backlog: b, .. } => {
                    *b = backlog.max(1);
                    Ok(())
                }
                _ => Err(SysError::Einval),
            },
            SockKind::Datagram { .. } => Err(SysError::Eopnotsupp),
        }
    }

    /// The name bound to a socket, if any.
    pub fn sock_name(&self, fd: Fd) -> SysResult<Option<SockName>> {
        let k = self.machine.kern.lock();
        let sid = k.fd_sock(self.pid, fd)?;
        Ok(k.socks.get(&sid).and_then(|s| s.name.clone()))
    }

    /// The peer's name for a connected stream socket.
    pub fn peer_name(&self, fd: Fd) -> SysResult<Option<SockName>> {
        let k = self.machine.kern.lock();
        let sid = k.fd_sock(self.pid, fd)?;
        Ok(k.socks.get(&sid).and_then(|s| match &s.kind {
            SockKind::Stream {
                state: StreamState::Connected { peer_name, .. },
                ..
            } => Some(peer_name.clone()),
            _ => None,
        }))
    }

    // ------------------------------------------------------------------
    // Connections
    // ------------------------------------------------------------------

    /// `connect(2)` by literal host name and port, the way processes
    /// exchange addresses in the measurement system (§3.5.4).
    ///
    /// # Errors
    ///
    /// `ENOENT` for an unknown host, plus everything
    /// [`Proc::connect`] can return.
    pub fn connect_host(&self, fd: Fd, host: &str, port: u16) -> SysResult<()> {
        let hid = self.cluster().resolve_host(host)?;
        self.connect(fd, &SockName::Inet { host: hid.0, port })
    }

    /// `connect(2)`: initiates a connection on a stream socket
    /// (blocking until accepted or refused), or sets the default
    /// destination of a datagram socket.
    ///
    /// # Errors
    ///
    /// `ECONNREFUSED` when nothing is listening at `name` or its
    /// pending queue is full; `EISCONN` if already connected;
    /// `EINVAL`/`EBADF` for argument problems.
    pub fn connect(&self, fd: Fd, name: &SockName) -> SysResult<()> {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let my_host = self.machine.id();

        // Phase 1 (own kernel): validate, auto-bind, mark Connecting.
        let (sid, src_name, stype, t_send) = {
            let mut k = self.machine.kern.lock();
            let sid = k.fd_sock(self.pid, fd)?;
            let stype = k.sock_mut(sid)?.stype;
            let src_name = Self::autobind(&mut k, &cluster, my_host.0, sid)?;
            if stype == SockType::Stream {
                let sock = k.sock_mut(sid)?;
                match &mut sock.kind {
                    SockKind::Stream { state, .. } => match state {
                        StreamState::Idle | StreamState::Refused => {
                            *state = StreamState::Connecting
                        }
                        StreamState::Connected { .. } => return Err(SysError::Eisconn),
                        _ => return Err(SysError::Einval),
                    },
                    SockKind::Datagram { .. } => unreachable!(),
                }
            }
            let t_send = k.proc_ref(self.pid)?.local_us;
            (sid, src_name, stype, t_send)
        };

        if stype == SockType::Datagram {
            // Datagram connect: remember the default destination.
            let mut plans = Vec::new();
            {
                let mut k = self.machine.kern.lock();
                if let SockKind::Datagram { default_peer, .. } = &mut k.sock_mut(sid)?.kind {
                    *default_peer = Some(name.clone());
                }
                plans.extend(metering::emit(
                    &mut k,
                    &self.machine,
                    &cluster,
                    self.pid,
                    MeterBody::Connect(MeterConnect {
                        pid: self.pid.0,
                        pc,
                        sock: sid.0,
                        sock_name: Some(src_name),
                        peer_name: Some(name.clone()),
                    }),
                ));
            }
            self.finish(plans);
            return Ok(());
        }

        // Phase 2: park a connection request at the listener.
        let dst_machine = self.route(&cluster, name)?;
        if cluster.connect_blocked(my_host, dst_machine.id(), t_send) {
            // An injected partition refuses new connections outright;
            // the caller sees the same error as a dead listener and is
            // expected to retry after the heal.
            let mut k = self.machine.kern.lock();
            if let Ok(sock) = k.sock_mut(sid) {
                if let SockKind::Stream { state, .. } = &mut sock.kind {
                    *state = StreamState::Idle;
                }
            }
            return Err(SysError::Econnrefused);
        }
        let latency = cluster.sample_latency(my_host, dst_machine.id());
        let parked = dst_machine.push_pending(
            name,
            PendingConn {
                from: RemoteSock {
                    host: my_host,
                    sock: sid,
                },
                peer_name: src_name.clone(),
                visible_at_us: t_send + latency,
            },
        );
        if let Err(e) = parked {
            let mut k = self.machine.kern.lock();
            if let Ok(sock) = k.sock_mut(sid) {
                if let SockKind::Stream { state, .. } = &mut sock.kind {
                    *state = StreamState::Idle;
                }
            }
            return Err(e);
        }

        // Phase 3: block until the acceptor completes (or refuses) us.
        let sid_copy = sid;
        self.machine.wait_on(self.pid, move |k| {
            let floor = match k.socks.get(&sid_copy) {
                None => return Err(SysError::Ebadf),
                Some(s) => match &s.kind {
                    SockKind::Stream {
                        state, rx_floor_us, ..
                    } => match state {
                        StreamState::Connected { .. } => *rx_floor_us,
                        StreamState::Refused => return Err(SysError::Econnrefused),
                        StreamState::Connecting => return Ok(Wait::Block),
                        _ => return Err(SysError::Einval),
                    },
                    SockKind::Datagram { .. } => return Err(SysError::Einval),
                },
            };
            let p = k.proc_mut(self.pid)?;
            p.local_us = p.local_us.max(floor);
            Ok(Wait::Ready(()))
        })?;

        // Phase 4: meter the connect.
        let mut plans = Vec::new();
        {
            let mut k = self.machine.kern.lock();
            plans.extend(metering::emit(
                &mut k,
                &self.machine,
                &cluster,
                self.pid,
                MeterBody::Connect(MeterConnect {
                    pid: self.pid.0,
                    pc,
                    sock: sid.0,
                    sock_name: Some(src_name),
                    peer_name: Some(name.clone()),
                }),
            ));
        }
        self.finish(plans);
        Ok(())
    }

    /// `accept(2)`: blocks until a connection request arrives on the
    /// listening socket `fd`, then creates and returns the new
    /// connection socket and the connector's name. "The accepting
    /// process's original socket is only used for the establishment of
    /// connections" (§3.1).
    ///
    /// # Errors
    ///
    /// `EINVAL` if the socket is not listening; `EBADF` for a bad
    /// descriptor; [`SysError::Killed`] if killed while blocked.
    pub fn accept(&self, fd: Fd) -> SysResult<(Fd, SockName)> {
        self.accept_inner(fd, true)
            .map(|opt| opt.expect("blocking accept returned None"))
    }

    /// Non-blocking `accept`: returns `Ok(None)` when no connection
    /// request is pending (or the process is currently stopped).
    ///
    /// # Errors
    ///
    /// As [`Proc::accept`].
    pub fn accept_nb(&self, fd: Fd) -> SysResult<Option<(Fd, SockName)>> {
        self.accept_inner(fd, false)
    }

    fn accept_inner(&self, fd: Fd, blocking: bool) -> SysResult<Option<(Fd, SockName)>> {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let my_host = self.machine.id();

        let cond = |k: &mut crate::machine::KernState| {
            let sid = k.fd_sock(self.pid, fd)?;
            let listener_name = {
                let sock = k.sock_mut(sid)?;
                sock.name.clone().ok_or(SysError::Einval)?
            };
            let pend = {
                let sock = k.sock_mut(sid)?;
                match &mut sock.kind {
                    SockKind::Stream {
                        state: StreamState::Listening { pending, .. },
                        ..
                    } => match pending.pop_front() {
                        Some(p) => p,
                        None => return Ok(Wait::Block),
                    },
                    _ => return Err(SysError::Einval),
                }
            };
            // Jump to the request's arrival time (discrete-event style).
            let local = {
                let p = k.proc_mut(self.pid)?;
                p.local_us = p.local_us.max(pend.visible_at_us);
                p.local_us
            };
            let new_sid = k.alloc_sock(|id| {
                let mut s = Socket::new(id, Domain::Inet, SockType::Stream);
                s.name = Some(listener_name.clone());
                s.kind = SockKind::Stream {
                    state: StreamState::Connected {
                        peer: pend.from,
                        peer_name: pend.peer_name.clone(),
                    },
                    rx: Default::default(),
                    rx_floor_us: local,
                    rx_eof: false,
                    wr_closed: false,
                };
                s
            });
            let new_fd = k.proc_mut(self.pid)?.alloc_fd(Desc::Sock(new_sid));
            Ok(Wait::Ready((
                sid,
                new_sid,
                new_fd,
                listener_name,
                pend,
                local,
            )))
        };

        let got = if blocking {
            Some(self.machine.wait_on(self.pid, cond)?)
        } else {
            self.machine.poll_on(self.pid, cond)?
        };
        let Some((sid, new_sid, new_fd, listener_name, pend, local)) = got else {
            return Ok(None);
        };
        self.machine.clock().global().advance_to_us(local);

        // Complete the connector's half.
        let latency = cluster.sample_latency(my_host, pend.from.host);
        let completed = cluster
            .machine_by_id(pend.from.host)
            .map(|m| {
                m.complete_connection(
                    pend.from.sock,
                    RemoteSock {
                        host: my_host,
                        sock: new_sid,
                    },
                    listener_name.clone(),
                    local + latency,
                )
            })
            .unwrap_or(false);
        if !completed {
            // The connector vanished mid-handshake; the new socket is
            // immediately half-closed.
            self.machine.peer_closed(new_sid);
        }

        // Meter the accept.
        let mut plans = Vec::new();
        {
            let mut k = self.machine.kern.lock();
            plans.extend(metering::emit(
                &mut k,
                &self.machine,
                &cluster,
                self.pid,
                MeterBody::Accept(MeterAccept {
                    pid: self.pid.0,
                    pc,
                    sock: sid.0,
                    new_sock: new_sid.0,
                    sock_name: Some(listener_name),
                    peer_name: Some(pend.peer_name.clone()),
                }),
            ));
        }
        self.finish(plans);
        Ok(Some((new_fd, pend.peer_name)))
    }

    /// `socketpair(2)`: a pair of connected stream sockets with
    /// internally generated unique names. Meters as two creates plus a
    /// connect and an accept — "all four messages are produced" (§3.2).
    pub fn socketpair(&self) -> SysResult<(Fd, Fd)> {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let my_host = self.machine.id();
        let mut plans = Vec::new();
        let (fd_a, fd_b) = {
            let mut k = self.machine.kern.lock();
            let name_a = SockName::Internal(cluster.alloc_internal());
            let name_b = SockName::Internal(cluster.alloc_internal());
            let local = k.proc_ref(self.pid)?.local_us;
            let sid_a = k.alloc_sock(|id| {
                let mut s = Socket::new(id, Domain::Unix, SockType::Stream);
                s.name = Some(name_a.clone());
                s
            });
            let sid_b = k.alloc_sock(|id| {
                let mut s = Socket::new(id, Domain::Unix, SockType::Stream);
                s.name = Some(name_b.clone());
                s
            });
            for (sid, peer_sid, peer_name) in [
                (sid_a, sid_b, name_b.clone()),
                (sid_b, sid_a, name_a.clone()),
            ] {
                let sock = k.sock_mut(sid)?;
                sock.kind = SockKind::Stream {
                    state: StreamState::Connected {
                        peer: RemoteSock {
                            host: my_host,
                            sock: peer_sid,
                        },
                        peer_name,
                    },
                    rx: Default::default(),
                    rx_floor_us: local,
                    rx_eof: false,
                    wr_closed: false,
                };
            }
            let p = k.proc_mut(self.pid)?;
            let fd_a = p.alloc_fd(Desc::Sock(sid_a));
            let fd_b = p.alloc_fd(Desc::Sock(sid_b));
            for body in [
                MeterBody::SockCrt(MeterSockCrt {
                    pid: self.pid.0,
                    pc,
                    sock: sid_a.0,
                    domain: Domain::Unix.as_u32(),
                    sock_type: SockType::Stream.as_u32(),
                    protocol: 0,
                }),
                MeterBody::SockCrt(MeterSockCrt {
                    pid: self.pid.0,
                    pc,
                    sock: sid_b.0,
                    domain: Domain::Unix.as_u32(),
                    sock_type: SockType::Stream.as_u32(),
                    protocol: 0,
                }),
                MeterBody::Connect(MeterConnect {
                    pid: self.pid.0,
                    pc,
                    sock: sid_a.0,
                    sock_name: Some(name_a.clone()),
                    peer_name: Some(name_b.clone()),
                }),
                MeterBody::Accept(MeterAccept {
                    pid: self.pid.0,
                    pc,
                    sock: sid_b.0,
                    new_sock: sid_b.0,
                    sock_name: Some(name_b),
                    peer_name: Some(name_a),
                }),
            ] {
                plans.extend(metering::emit(
                    &mut k,
                    &self.machine,
                    &cluster,
                    self.pid,
                    body,
                ));
            }
            (fd_a, fd_b)
        };
        self.finish(plans);
        Ok((fd_a, fd_b))
    }

    fn route(&self, cluster: &Arc<Cluster>, name: &SockName) -> SysResult<Arc<Machine>> {
        match name {
            SockName::Inet { host, .. } => cluster
                .machine_by_id(HostId(*host))
                .ok_or(SysError::Econnrefused),
            SockName::UnixPath(_) => Ok(self.machine.clone()),
            SockName::Internal(_) => Err(SysError::Einval),
        }
    }

    // ------------------------------------------------------------------
    // Data transfer
    // ------------------------------------------------------------------

    /// `send(2)`/`write(2)` on a connected socket (or the console for
    /// un-redirected stdio). All the `write` varieties are one meter
    /// event (§3.2). Returns the number of bytes sent.
    ///
    /// # Errors
    ///
    /// `EPIPE` if the peer has closed; `ENOTCONN` on an unconnected
    /// socket.
    pub fn write(&self, fd: Fd, data: &[u8]) -> SysResult<usize> {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let desc = {
            let k = self.machine.kern.lock();
            k.proc_ref(self.pid)?.desc(fd).ok_or(SysError::Ebadf)?
        };
        match desc {
            Desc::Console => {
                let mut k = self.machine.kern.lock();
                k.proc_mut(self.pid)?.console_out.extend_from_slice(data);
                Ok(data.len())
            }
            Desc::Sock(sid) => self.write_sock(pc, &cluster, sid, data),
        }
    }

    fn write_sock(
        &self,
        pc: u32,
        cluster: &Arc<Cluster>,
        sid: SockId,
        data: &[u8],
    ) -> SysResult<usize> {
        let my_host = self.machine.id();
        enum Out {
            Stream { peer: RemoteSock, visible: u64 },
            Dgram { dest: SockName, t_send: u64 },
        }
        let mut plans = Vec::new();
        let out = {
            let mut k = self.machine.kern.lock();
            let sock = k.sock_mut(sid)?;
            let out = match &sock.kind {
                SockKind::Stream {
                    state, wr_closed, ..
                } => match state {
                    StreamState::Connected { .. } if *wr_closed => return Err(SysError::Epipe),
                    StreamState::Connected { peer, .. } => {
                        let peer = *peer;
                        let latency = cluster.sample_latency(my_host, peer.host);
                        let t_send = k.proc_ref(self.pid)?.local_us;
                        // A partition delays stream bytes until its heal
                        // time; the stream stays reliable and ordered.
                        let extra = cluster.stream_extra(my_host, peer.host, t_send);
                        Out::Stream {
                            peer,
                            visible: t_send + latency + extra,
                        }
                    }
                    StreamState::PeerClosed => return Err(SysError::Epipe),
                    _ => return Err(SysError::Enotconn),
                },
                SockKind::Datagram { default_peer, .. } => match default_peer {
                    Some(d) => {
                        let dest = d.clone();
                        let t_send = k.proc_ref(self.pid)?.local_us;
                        Out::Dgram { dest, t_send }
                    }
                    None => return Err(SysError::Enotconn),
                },
            };
            // One send meter event, name available only for datagrams
            // ("when one writes across a connection, the name of the
            // recipient is not available", §4.1).
            let dest_name = match &out {
                Out::Stream { .. } => None,
                Out::Dgram { dest, .. } => Some(dest.clone()),
            };
            plans.extend(metering::emit(
                &mut k,
                &self.machine,
                cluster,
                self.pid,
                MeterBody::Send(MeterSendMsg {
                    pid: self.pid.0,
                    pc,
                    sock: sid.0,
                    msg_length: data.len() as u32,
                    dest_name,
                }),
            ));
            out
        };
        self.finish(plans);
        match out {
            Out::Stream { peer, visible } => {
                cluster
                    .stats
                    .record_frame(data.len(), peer.host != self.machine.id());
                let delivered = cluster
                    .machine_by_id(peer.host)
                    .map(|m| m.deliver_segment(peer.sock, data.to_vec(), visible))
                    .unwrap_or(false);
                if delivered {
                    Ok(data.len())
                } else {
                    Err(SysError::Epipe)
                }
            }
            Out::Dgram { dest, t_send } => {
                self.ship_dgram(cluster, sid, &dest, data, t_send)?;
                Ok(data.len())
            }
        }
    }

    /// `sendto(2)`: sends one datagram to a named socket.
    ///
    /// # Errors
    ///
    /// `EOPNOTSUPP` on a stream socket; `EINVAL` for an internal name;
    /// `EMSGSIZE` for datagrams over 64 KiB.
    pub fn sendto(&self, fd: Fd, data: &[u8], dest: &SockName) -> SysResult<usize> {
        let pc = self.enter()?;
        if data.len() > 65536 {
            return Err(SysError::Emsgsize);
        }
        let cluster = self.cluster();
        let my_host = self.machine.id().0;
        let mut plans = Vec::new();
        let (sid, t_send) = {
            let mut k = self.machine.kern.lock();
            let sid = k.fd_sock(self.pid, fd)?;
            if k.sock_mut(sid)?.stype != SockType::Datagram {
                return Err(SysError::Eopnotsupp);
            }
            Self::autobind(&mut k, &cluster, my_host, sid)?;
            let t_send = k.proc_ref(self.pid)?.local_us;
            plans.extend(metering::emit(
                &mut k,
                &self.machine,
                &cluster,
                self.pid,
                MeterBody::Send(MeterSendMsg {
                    pid: self.pid.0,
                    pc,
                    sock: sid.0,
                    msg_length: data.len() as u32,
                    dest_name: Some(dest.clone()),
                }),
            ));
            (sid, t_send)
        };
        self.finish(plans);
        self.ship_dgram(&cluster, sid, dest, data, t_send)?;
        Ok(data.len())
    }

    /// Routes a datagram through the loss/latency model and enqueues
    /// it at the destination (if it survives).
    fn ship_dgram(
        &self,
        cluster: &Arc<Cluster>,
        sid: SockId,
        dest: &SockName,
        data: &[u8],
        t_send: u64,
    ) -> SysResult<()> {
        let dst_machine = self.route(cluster, dest).map_err(|_| SysError::Einval)?;
        let src_name = {
            let k = self.machine.kern.lock();
            k.socks.get(&sid).and_then(|s| s.name.clone())
        };
        cluster
            .stats
            .record_frame(data.len(), dst_machine.id() != self.machine.id());
        // The fault injector resolves the send into zero (lost), one,
        // or two (duplicated) deliveries; absent an injected fault the
        // random loss/latency model decides as before.
        let deliveries = cluster.datagram_deliveries(self.machine.id(), dst_machine.id(), t_send);
        if deliveries.is_empty() {
            cluster.stats.record_loss();
            return Ok(()); // the sender cannot tell (§3.1)
        }
        let dst_sid = {
            let k = dst_machine.kern.lock();
            match dest {
                SockName::Inet { port, .. } => k.inet_binds.get(port).copied(),
                SockName::UnixPath(p) => k.unix_binds.get(p).copied(),
                SockName::Internal(_) => None,
            }
        };
        if let Some(dst_sid) = dst_sid {
            for latency_us in deliveries {
                dst_machine.deliver_dgram(
                    dst_sid,
                    Dgram {
                        data: data.to_vec(),
                        src: src_name.clone(),
                        visible_at_us: t_send + latency_us,
                    },
                );
            }
        } else {
            // No socket bound at the destination: the datagram
            // disappears, exactly like UDP to a dead port.
            cluster.stats.record_loss();
        }
        Ok(())
    }

    /// `read(2)`/`recv(2)`: reads bytes from a socket or the console,
    /// blocking until something is available. For streams, "as many
    /// bytes as possible are delivered for each read without regard
    /// for whether or not the bytes originated from the same message";
    /// for datagrams each read obtains one complete message (§3.1).
    /// Returns an empty vector at end-of-file.
    ///
    /// # Errors
    ///
    /// `ENOTCONN` for an unconnected stream socket; `EBADF`;
    /// [`SysError::Killed`].
    pub fn read(&self, fd: Fd, max: usize) -> SysResult<Vec<u8>> {
        self.recvfrom_inner(fd, max, true).map(|r| match r {
            Some((data, _)) => data,
            None => unreachable!("blocking read returned None"),
        })
    }

    /// `recvfrom(2)`: like [`Proc::read`] but also reports the
    /// sender's socket name when the kernel knows it (datagrams).
    ///
    /// # Errors
    ///
    /// As [`Proc::read`].
    pub fn recvfrom(&self, fd: Fd, max: usize) -> SysResult<(Vec<u8>, Option<SockName>)> {
        self.recvfrom_inner(fd, max, true)
            .map(|r| r.expect("blocking recvfrom returned None"))
    }

    /// Non-blocking read; `Ok(None)` when nothing is available yet.
    ///
    /// # Errors
    ///
    /// As [`Proc::read`].
    pub fn read_nb(&self, fd: Fd, max: usize) -> SysResult<Option<Vec<u8>>> {
        self.recvfrom_inner(fd, max, false)
            .map(|r| r.map(|(data, _)| data))
    }

    /// Non-blocking `recvfrom`; `Ok(None)` when nothing is available.
    ///
    /// # Errors
    ///
    /// As [`Proc::read`].
    pub fn recvfrom_nb(
        &self,
        fd: Fd,
        max: usize,
    ) -> SysResult<Option<(Vec<u8>, Option<SockName>)>> {
        self.recvfrom_inner(fd, max, false)
    }

    /// `select(2)`, read-set only: blocks until at least one of the
    /// given descriptors is readable — data buffered, a connection
    /// request pending on a listener, end-of-file reached, or console
    /// input available — and returns the ready ones in `fds` order.
    ///
    /// The returned descriptors are *hints*, exactly as with the real
    /// call: a subsequent blocking `read`/`accept` on one of them is
    /// guaranteed not to block.
    ///
    /// # Errors
    ///
    /// `EBADF` if any descriptor is invalid; `EINVAL` on an empty set;
    /// [`SysError::Killed`] if killed while blocked.
    pub fn select(&self, fds: &[Fd]) -> SysResult<Vec<Fd>> {
        self.enter()?;
        if fds.is_empty() {
            return Err(SysError::Einval);
        }
        let fds = fds.to_vec();
        let me = self.pid;
        let global = self.machine.clock().global().clone();
        self.machine.wait_on(me, move |k| loop {
            let now = k.proc_ref(me)?.local_us;
            let mut ready = Vec::new();
            let mut earliest: Option<u64> = None;
            for &fd in &fds {
                let desc = k.proc_ref(me)?.desc(fd).ok_or(SysError::Ebadf)?;
                match desc {
                    Desc::Console => {
                        let p = k.proc_ref(me)?;
                        if !p.console_in.is_empty() || p.console_eof {
                            ready.push(fd);
                        }
                    }
                    Desc::Sock(sid) => {
                        let sock = k.socks.get(&sid).ok_or(SysError::Ebadf)?;
                        match &sock.kind {
                            SockKind::Datagram { rx, .. } => {
                                if let Some(t) = rx.iter().map(|d| d.visible_at_us).min() {
                                    if t <= now {
                                        ready.push(fd);
                                    } else {
                                        earliest = Some(earliest.map_or(t, |e: u64| e.min(t)));
                                    }
                                }
                            }
                            SockKind::Stream {
                                state, rx, rx_eof, ..
                            } => {
                                if let StreamState::Listening { pending, .. } = state {
                                    if let Some(t) = pending.iter().map(|p| p.visible_at_us).min() {
                                        if t <= now {
                                            ready.push(fd);
                                        } else {
                                            earliest = Some(earliest.map_or(t, |e: u64| e.min(t)));
                                        }
                                    }
                                } else if let Some(seg) = rx.front() {
                                    if seg.visible_at_us <= now {
                                        ready.push(fd);
                                    } else {
                                        let t = seg.visible_at_us;
                                        earliest = Some(earliest.map_or(t, |e: u64| e.min(t)));
                                    }
                                } else if *rx_eof
                                    || matches!(
                                        state,
                                        StreamState::PeerClosed | StreamState::Refused
                                    )
                                {
                                    ready.push(fd); // EOF is readable
                                }
                            }
                        }
                    }
                }
            }
            if !ready.is_empty() {
                return Ok(Wait::Ready(ready));
            }
            // Nothing visible yet. If something is in flight, jump to
            // its arrival (discrete-event style) and re-evaluate; only
            // park on the condition variable when truly nothing is
            // coming.
            match earliest {
                Some(t) => {
                    let p = k.proc_mut(me)?;
                    p.local_us = p.local_us.max(t);
                    global.advance_to_us(p.local_us);
                    // fall through the loop and re-evaluate
                }
                None => return Ok(Wait::Block),
            }
        })
    }

    fn recvfrom_inner(
        &self,
        fd: Fd,
        max: usize,
        blocking: bool,
    ) -> SysResult<Option<(Vec<u8>, Option<SockName>)>> {
        let pc = self.enter()?;
        if max == 0 {
            return Ok(Some((Vec::new(), None)));
        }
        let cluster = self.cluster();
        let desc = {
            let k = self.machine.kern.lock();
            k.proc_ref(self.pid)?.desc(fd).ok_or(SysError::Ebadf)?
        };
        let sid = match desc {
            Desc::Console => {
                return self.read_console(max, blocking);
            }
            Desc::Sock(s) => s,
        };

        // The receive *call* is an event of its own (§4.1:
        // `METERRECEIVECALL`, "ready to receive a message").
        let mut plans = Vec::new();
        {
            let mut k = self.machine.kern.lock();
            plans.extend(metering::emit(
                &mut k,
                &self.machine,
                &cluster,
                self.pid,
                MeterBody::RecvCall(MeterRecvCall {
                    pid: self.pid.0,
                    pc,
                    sock: sid.0,
                }),
            ));
        }
        self.finish(plans);

        let cond = |k: &mut crate::machine::KernState| {
            let now_global = self.machine.clock().global().now_us();
            let local = k.proc_ref(self.pid)?.local_us.max(now_global);
            let sock = k.sock_mut(sid)?;
            match &mut sock.kind {
                SockKind::Datagram { rx, .. } => {
                    // Deliver in visibility order, which models
                    // reordering: a delayed datagram is overtaken.
                    let idx = rx
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, d)| d.visible_at_us)
                        .map(|(i, _)| i);
                    match idx {
                        None => Ok(Wait::Block),
                        Some(i) => {
                            let d = rx.remove(i).expect("index valid");
                            let p = k.proc_mut(self.pid)?;
                            p.local_us = p.local_us.max(d.visible_at_us).max(local);
                            // Datagrams are read as complete messages;
                            // each new read obtains bytes from a new
                            // message (§3.1) — excess is truncated.
                            let mut data = d.data;
                            data.truncate(max);
                            Ok(Wait::Ready((data, d.src)))
                        }
                    }
                }
                SockKind::Stream {
                    state, rx, rx_eof, ..
                } => {
                    if rx.is_empty() {
                        if *rx_eof {
                            return Ok(Wait::Ready((Vec::new(), None))); // half-closed EOF
                        }
                        return match state {
                            StreamState::Connected { .. } => Ok(Wait::Block),
                            StreamState::PeerClosed | StreamState::Refused => {
                                Ok(Wait::Ready((Vec::new(), None))) // EOF
                            }
                            _ => Err(SysError::Enotconn),
                        };
                    }
                    // Jump to the first segment's arrival, then drain
                    // every segment visible by that instant.
                    let t0 = rx.front().expect("nonempty").visible_at_us.max(local);
                    let mut out = Vec::new();
                    while out.len() < max {
                        match rx.front_mut() {
                            Some(seg) if seg.visible_at_us <= t0 => {
                                let want = max - out.len();
                                if seg.data.len() <= want {
                                    out.extend_from_slice(&seg.data);
                                    rx.pop_front();
                                } else {
                                    out.extend_from_slice(&seg.data[..want]);
                                    seg.data.drain(..want);
                                }
                            }
                            _ => break,
                        }
                    }
                    let p = k.proc_mut(self.pid)?;
                    p.local_us = p.local_us.max(t0);
                    Ok(Wait::Ready((out, None)))
                }
            }
        };

        let got = if blocking {
            Some(self.machine.wait_on(self.pid, cond)?)
        } else {
            self.machine.poll_on(self.pid, cond)?
        };
        let Some((data, src)) = got else {
            return Ok(None);
        };
        {
            let k = self.machine.kern.lock();
            if let Ok(p) = k.proc_ref(self.pid) {
                self.machine.clock().global().advance_to_us(p.local_us);
            }
        }

        // The completed receive is the second event — only when data
        // actually arrived (end-of-file is not a message).
        if !data.is_empty() {
            let mut plans = Vec::new();
            {
                let mut k = self.machine.kern.lock();
                plans.extend(metering::emit(
                    &mut k,
                    &self.machine,
                    &cluster,
                    self.pid,
                    MeterBody::Recv(MeterRecvMsg {
                        pid: self.pid.0,
                        pc,
                        sock: sid.0,
                        msg_length: data.len() as u32,
                        source_name: src.clone(),
                    }),
                ));
            }
            self.finish(plans);
        }
        Ok(Some((data, src)))
    }

    fn read_console(
        &self,
        max: usize,
        blocking: bool,
    ) -> SysResult<Option<(Vec<u8>, Option<SockName>)>> {
        let cond = |k: &mut crate::machine::KernState| {
            let p = k.proc_mut(self.pid)?;
            if p.console_in.is_empty() {
                if p.console_eof {
                    return Ok(Wait::Ready((Vec::new(), None)));
                }
                return Ok(Wait::Block);
            }
            let n = p.console_in.len().min(max);
            let data: Vec<u8> = p.console_in.drain(..n).collect();
            Ok(Wait::Ready((data, None)))
        };
        if blocking {
            self.machine.wait_on(self.pid, cond).map(Some)
        } else {
            self.machine.poll_on(self.pid, cond)
        }
    }

    /// Convenience: reads one `\n`-terminated line (the newline is
    /// stripped). Returns `None` at end-of-file before any bytes.
    ///
    /// # Errors
    ///
    /// As [`Proc::read`].
    pub fn read_line(&self, fd: Fd) -> SysResult<Option<String>> {
        let mut line = Vec::new();
        loop {
            let byte = self.read(fd, 1)?;
            if byte.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                break;
            }
            if byte[0] == b'\n' {
                break;
            }
            line.push(byte[0]);
        }
        Ok(Some(String::from_utf8_lossy(&line).into_owned()))
    }

    /// `shutdown(2)`, write half: no more data will be sent on this
    /// connection from this side. The peer reads the remaining
    /// buffered bytes and then end-of-file, while *its* writes — the
    /// other direction of the connection — keep working. This is how
    /// the meterdaemon marks the end of a redirected standard-input
    /// file (§3.5.2) without tearing down the stdout gateway.
    ///
    /// # Errors
    ///
    /// `ENOTCONN` on an unconnected socket; `EOPNOTSUPP` on a
    /// datagram socket; `EBADF` on a bad descriptor.
    pub fn shutdown_write(&self, fd: Fd) -> SysResult<()> {
        self.enter()?;
        let cluster = self.cluster();
        let peer = {
            let mut k = self.machine.kern.lock();
            let sid = k.fd_sock(self.pid, fd)?;
            let sock = k.sock_mut(sid)?;
            match &mut sock.kind {
                SockKind::Stream {
                    state, wr_closed, ..
                } => match state {
                    StreamState::Connected { peer, .. } => {
                        *wr_closed = true;
                        Some(*peer)
                    }
                    StreamState::PeerClosed => {
                        *wr_closed = true;
                        None
                    }
                    _ => return Err(SysError::Enotconn),
                },
                SockKind::Datagram { .. } => return Err(SysError::Eopnotsupp),
            }
        };
        if let Some(peer) = peer {
            if let Some(m) = cluster.machine_by_id(peer.host) {
                m.set_rx_eof(peer.sock);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Descriptors
    // ------------------------------------------------------------------

    /// `close(2)`: releases a descriptor. Closing the last reference
    /// destroys the socket (§3.1).
    ///
    /// # Errors
    ///
    /// `EBADF` for a bad descriptor.
    pub fn close(&self, fd: Fd) -> SysResult<()> {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let mut plans = Vec::new();
        let actions = {
            let mut k = self.machine.kern.lock();
            let desc = k.proc_mut(self.pid)?.clear_fd(fd).ok_or(SysError::Ebadf)?;
            match desc {
                Desc::Console => Vec::new(),
                Desc::Sock(sid) => {
                    plans.extend(metering::emit(
                        &mut k,
                        &self.machine,
                        &cluster,
                        self.pid,
                        MeterBody::DestSock(MeterDestSock {
                            pid: self.pid.0,
                            pc,
                            sock: sid.0,
                        }),
                    ));
                    k.release_sock(sid)
                }
            }
        };
        self.finish(plans);
        self.machine.run_close_actions(&cluster, actions);
        Ok(())
    }

    /// `dup(2)`: duplicates a descriptor. Both descriptors share the
    /// one socket (file-table entry), so the meter record's `sock` and
    /// `newSock` carry the same socket address, as they would have on
    /// real 4.2BSD.
    ///
    /// # Errors
    ///
    /// `EBADF` for a bad descriptor.
    pub fn dup(&self, fd: Fd) -> SysResult<Fd> {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let mut plans = Vec::new();
        let new_fd = {
            let mut k = self.machine.kern.lock();
            let desc = k.proc_ref(self.pid)?.desc(fd).ok_or(SysError::Ebadf)?;
            if let Desc::Sock(sid) = desc {
                k.sock_mut(sid)?.refs += 1;
                plans.extend(metering::emit(
                    &mut k,
                    &self.machine,
                    &cluster,
                    self.pid,
                    MeterBody::Dup(MeterDup {
                        pid: self.pid.0,
                        pc,
                        sock: sid.0,
                        new_sock: sid.0,
                    }),
                ));
            }
            k.proc_mut(self.pid)?.alloc_fd(desc)
        };
        self.finish(plans);
        Ok(new_fd)
    }

    // ------------------------------------------------------------------
    // Processes
    // ------------------------------------------------------------------

    /// `fork(2)`, with an explicit child body (Rust cannot duplicate a
    /// running thread). The child inherits the descriptor table — "its
    /// child gains access to the parent's sockets, just as the child
    /// gains access to the parent's open files" (§3.1) — **and the
    /// meter socket and meter flags of the parent** (§3.2), which is
    /// what makes whole-computation metering transparent.
    ///
    /// # Errors
    ///
    /// [`SysError::Killed`] if the caller is being killed.
    pub fn fork_with<F>(&self, body: F) -> SysResult<Pid>
    where
        F: FnOnce(Proc) -> SysResult<()> + Send + 'static,
    {
        let pc = self.enter()?;
        let cluster = self.cluster();
        let child_pid = cluster.alloc_pid();
        let mut plans = Vec::new();
        {
            let mut k = self.machine.kern.lock();
            let parent = k.proc_ref(self.pid)?;
            let mut child = crate::process::ProcEntry::new(
                child_pid,
                Some(self.pid),
                parent.uid,
                format!("{}+", parent.name),
            );
            child.state = RunState::Running;
            child.descs = parent.descs.clone();
            child.local_us = parent.local_us;
            child.meter_sock = parent.meter_sock;
            child.meter_flags = parent.meter_flags;
            let sock_refs: Vec<SockId> = child
                .socket_descs()
                .into_iter()
                .chain(child.meter_sock)
                .collect();
            for sid in sock_refs {
                if let Some(s) = k.socks.get_mut(&sid) {
                    s.refs += 1;
                }
            }
            k.procs.insert(child_pid, child);
            plans.extend(metering::emit(
                &mut k,
                &self.machine,
                &cluster,
                self.pid,
                MeterBody::Fork(MeterFork {
                    pid: self.pid.0,
                    pc,
                    new_pid: child_pid.0,
                }),
            ));
        }
        self.finish(plans);
        self.machine.spawn_thread(child_pid, Box::new(body));
        Ok(child_pid)
    }

    /// Creates a suspended process from an executable file — what the
    /// meterdaemon does for the controller's `addprocess` (§3.5.1).
    /// The file's contents must be `program:<name>` naming a program
    /// registered with [`Cluster::register_program`]. `stdio` may name
    /// a connected socket of the *caller* to become the child's
    /// standard input/output/error gateway (§3.5.2).
    ///
    /// # Errors
    ///
    /// `ENOENT` if the file does not exist on this machine; `ENOEXEC`
    /// if it is not a valid program reference; `EBADF` for a bad
    /// `stdio` descriptor.
    pub fn spawn_file(&self, path: &str, args: Vec<String>, stdio: Option<Fd>) -> SysResult<Pid> {
        self.enter()?;
        let cluster = self.cluster();
        let contents = self
            .machine
            .fs()
            .read_string(path)
            .ok_or(SysError::Enoent)?;
        let prog_name = contents
            .strip_prefix("program:")
            .ok_or(SysError::Enoexec)?
            .trim()
            .to_owned();
        let program = cluster.program(&prog_name).ok_or(SysError::Enoexec)?;
        let stdio_sock = match stdio {
            None => None,
            Some(fd) => {
                let k = self.machine.kern.lock();
                Some(k.fd_sock(self.pid, fd)?)
            }
        };
        let display = path.rsplit('/').next().unwrap_or(path).to_owned();
        let uid = self.uid();
        let pid = self.machine.spawn_inner(
            &display,
            uid,
            Some(self.pid),
            false, // suspended prior to the first instruction
            stdio_sock,
            Box::new(move |proc| program(proc, args)),
        );
        Ok(pid)
    }

    /// `kill(2)`-style signalling of a process **on this machine**,
    /// with 4.2BSD permissions. Cross-machine control must go through
    /// a meterdaemon, exactly as in the paper ("direct control of a
    /// process on another machine is impossible", §3.5.1).
    ///
    /// # Errors
    ///
    /// `ESRCH`/`EPERM` as [`Machine::signal`].
    pub fn kill(&self, pid: Pid, sig: Sig) -> SysResult<()> {
        self.enter()?;
        self.machine.signal(Some(self.uid()), pid, sig)
    }

    /// Waits for any child to terminate, returning its pid and how it
    /// ended.
    ///
    /// # Errors
    ///
    /// `ESRCH` when the process has no children left to wait for.
    pub fn wait_child(&self) -> SysResult<(Pid, TermReason)> {
        self.enter()?;
        let me = self.pid;
        self.machine.wait_on(me, move |k| {
            let has_live_children = k
                .procs
                .values()
                .any(|p| p.parent == Some(me) && !p.state.is_dead());
            let entry = k.proc_mut(me)?;
            match entry.dead_children.pop_front() {
                Some(x) => Ok(Wait::Ready(x)),
                None if has_live_children => Ok(Wait::Block),
                None => Err(SysError::Esrch),
            }
        })
    }

    /// Non-blocking variant of [`Proc::wait_child`]; `Ok(None)` when
    /// no child has terminated yet.
    ///
    /// # Errors
    ///
    /// `ESRCH` when the process has no children at all.
    pub fn wait_child_nb(&self) -> SysResult<Option<(Pid, TermReason)>> {
        self.enter()?;
        let me = self.pid;
        self.machine.poll_on(me, move |k| {
            let entry = k.proc_mut(me)?;
            match entry.dead_children.pop_front() {
                Some(x) => Ok(Wait::Ready(x)),
                None => Ok(Wait::Block),
            }
        })
    }

    // ------------------------------------------------------------------
    // setmeter(2)
    // ------------------------------------------------------------------

    /// `setmeter(2)`: marks a process for metering (Appendix C).
    ///
    /// * `proc` — the process to be metered ([`PidSel::Current`] is
    ///   the manual page's `-1`).
    /// * `flags` — the events to flag; [`FlagSel::Set`] **replaces**
    ///   the previous mask.
    /// * `socket` — the meter connection, "a connected stream socket
    ///   in the Internet domain" belonging to the *caller*. It is
    ///   duplicated for the metered process but never appears in that
    ///   process's descriptor table.
    ///
    /// "A user can request metering only for processes belonging to
    /// that user"; the superuser may meter anything.
    ///
    /// # Errors
    ///
    /// `EPERM` if the target process does not belong to the caller;
    /// `ESRCH` if the target process or the named socket does not
    /// exist; `EINVAL` if the socket is not an Internet-domain stream
    /// socket.
    pub fn setmeter(&self, proc: PidSel, flags: FlagSel, socket: SockSel) -> SysResult<()> {
        self.enter()?;
        let cluster = self.cluster();
        let plans_and_actions = {
            let mut k = self.machine.kern.lock();
            let caller_uid = k.proc_ref(self.pid)?.uid;
            let target = match proc {
                PidSel::Current => self.pid,
                PidSel::Pid(p) => p,
            };
            {
                let t = k.procs.get(&target).ok_or(SysError::Esrch)?;
                if t.state.is_dead() {
                    return Err(SysError::Esrch);
                }
                if !caller_uid.is_root() && t.uid != caller_uid {
                    return Err(SysError::Eperm);
                }
            }
            // Resolve and validate the socket argument first so a bad
            // socket leaves the flags untouched.
            let new_sock = match socket {
                SockSel::NoChange => None,
                SockSel::None => Some(None),
                SockSel::Fd(fd) => {
                    let sid = k.fd_sock(self.pid, fd).map_err(|_| SysError::Esrch)?;
                    let s = k.sock_mut(sid)?;
                    if s.domain != Domain::Inet || s.stype != SockType::Stream {
                        return Err(SysError::Einval);
                    }
                    s.refs += 1; // duplicated for the metered process
                    Some(Some(sid))
                }
            };
            let mut actions = Vec::new();
            let mut plans = Vec::new();
            if let Some(new_sock) = new_sock {
                // Buffered, unsent records would be lost with the old
                // connection; forward them first, as termination does
                // (§3.2's "any unsent messages are forwarded").
                plans.extend(metering::force_flush(
                    &mut k,
                    &self.machine,
                    &cluster,
                    target,
                ));
                let t = k.proc_mut(target)?;
                let old = std::mem::replace(&mut t.meter_sock, new_sock);
                if let Some(old) = old {
                    // "If setmeter() is called specifying a new meter
                    // socket for a process already having one, the old
                    // socket is closed." (§4.1)
                    actions.extend(k.release_sock(old));
                }
            }
            match flags {
                FlagSel::NoChange => {}
                FlagSel::None => k.proc_mut(target)?.meter_flags = MeterFlags::NONE,
                FlagSel::Set(f) => k.proc_mut(target)?.meter_flags = f,
            }
            (plans, actions)
        };
        let (plans, actions) = plans_and_actions;
        self.machine.run_plans(&cluster, plans);
        self.machine.run_close_actions(&cluster, actions);
        Ok(())
    }

    /// The meter flags currently set on a process of this machine
    /// (same permission rule as `setmeter`). Primarily for the
    /// controller's `jobs` listing.
    ///
    /// # Errors
    ///
    /// `ESRCH`/`EPERM` as [`Proc::setmeter`].
    pub fn getmeter(&self, proc: PidSel) -> SysResult<MeterFlags> {
        self.enter()?;
        let k = self.machine.kern.lock();
        let caller_uid = k.proc_ref(self.pid)?.uid;
        let target = match proc {
            PidSel::Current => self.pid,
            PidSel::Pid(p) => p,
        };
        let t = k.procs.get(&target).ok_or(SysError::Esrch)?;
        if !caller_uid.is_root() && t.uid != caller_uid {
            return Err(SysError::Eperm);
        }
        Ok(t.meter_flags)
    }
}
