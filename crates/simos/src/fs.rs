//! A tiny per-machine file system.
//!
//! 4.2BSD had no remote file system ("the lack of such a file system
//! … forced us to implement the latter alternative", §3.5.3), so each
//! simulated machine carries its own flat file store. It holds program
//! "binaries" (whose contents name an entry in the program registry),
//! filter description/template files, command scripts for `source`,
//! redirected-input files, and the filter log files under `/usr/tmp`.
//! The `rcp` utility of §3.5.3 is [`SimFs::copy_from`].

use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A flat, thread-safe map from path to contents.
///
/// Paths are plain strings; there is no directory structure beyond the
/// convention of `/`-separated names, which is all the paper's tools
/// need.
#[derive(Debug, Default)]
pub struct SimFs {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl SimFs {
    /// Creates an empty file system.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// Writes (creates or replaces) a file.
    pub fn write(&self, path: &str, contents: impl Into<Vec<u8>>) {
        self.files.write().insert(path.to_owned(), contents.into());
    }

    /// Appends to a file, creating it if absent. Filter log files are
    /// written this way.
    pub fn append(&self, path: &str, contents: &[u8]) {
        self.files
            .write()
            .entry(path.to_owned())
            .or_default()
            .extend_from_slice(contents);
    }

    /// Reads a file's contents.
    pub fn read(&self, path: &str) -> Option<Vec<u8>> {
        self.files.read().get(path).cloned()
    }

    /// Reads a file as UTF-8 text; `None` if absent or not UTF-8.
    pub fn read_string(&self, path: &str) -> Option<String> {
        self.read(path).and_then(|b| String::from_utf8(b).ok())
    }

    /// Whether the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Removes a file, returning whether it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.write().remove(path).is_some()
    }

    /// Copies `src_path` on `src` to `dst_path` here — the simulated
    /// `rcp` (§3.5.3). Returns `false` when the source does not exist.
    pub fn copy_from(&self, src: &SimFs, src_path: &str, dst_path: &str) -> bool {
        match src.read(src_path) {
            Some(data) => {
                self.write(dst_path, data);
                true
            }
            None => false,
        }
    }

    /// Lists paths with the given prefix, in sorted order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_exists_remove() {
        let fs = SimFs::new();
        assert!(!fs.exists("/a"));
        fs.write("/a", b"hello".to_vec());
        assert!(fs.exists("/a"));
        assert_eq!(fs.read("/a").unwrap(), b"hello");
        assert_eq!(fs.read_string("/a").unwrap(), "hello");
        assert!(fs.remove("/a"));
        assert!(!fs.remove("/a"));
        assert_eq!(fs.read("/a"), None);
    }

    #[test]
    fn append_creates_and_extends() {
        let fs = SimFs::new();
        fs.append("/usr/tmp/log1", b"one\n");
        fs.append("/usr/tmp/log1", b"two\n");
        assert_eq!(fs.read_string("/usr/tmp/log1").unwrap(), "one\ntwo\n");
    }

    #[test]
    fn rcp_between_machines() {
        let local = SimFs::new();
        let remote = SimFs::new();
        local.write("/bin/A", b"program:worker".to_vec());
        assert!(remote.copy_from(&local, "/bin/A", "/bin/A"));
        assert_eq!(remote.read("/bin/A").unwrap(), b"program:worker");
        assert!(!remote.copy_from(&local, "/bin/missing", "/bin/x"));
    }

    #[test]
    fn list_by_prefix_sorted() {
        let fs = SimFs::new();
        fs.write("/usr/tmp/b", vec![]);
        fs.write("/usr/tmp/a", vec![]);
        fs.write("/etc/passwd", vec![]);
        assert_eq!(
            fs.list("/usr/tmp/"),
            vec!["/usr/tmp/a".to_owned(), "/usr/tmp/b".to_owned()]
        );
    }

    #[test]
    fn non_utf8_read_string_is_none() {
        let fs = SimFs::new();
        fs.write("/bin/garbage", vec![0xff, 0xfe]);
        assert_eq!(fs.read_string("/bin/garbage"), None);
        assert!(fs.read("/bin/garbage").is_some());
    }
}
