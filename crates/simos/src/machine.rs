//! A simulated machine: CPU, clock, file system, and resident kernel.
//!
//! "Processes execute on machines, each consisting of a central
//! processor (CPU), memory, and peripheral devices. Machines do not
//! have direct access to each other's memories. Each machine has a
//! portion of the operating system running on it to support process
//! execution, communications, memory management, and device
//! management." (§1.2)
//!
//! Locking discipline: each machine has one kernel mutex and one
//! condition variable. **No code path ever holds two machines' kernel
//! locks at once** — cross-machine effects (message delivery,
//! connection completion, peer-close notification) are computed under
//! the source lock, then applied under the destination lock.

use crate::cluster::Cluster;
use crate::error::{SysError, SysResult};
use crate::fs::SimFs;
use crate::process::{Desc, Pid, ProcEntry, RunState, Sig, Uid};
use crate::socket::{
    Dgram, PendingConn, RemoteSock, Segment, SockId, SockKind, Socket, StreamState,
};
use crate::syscall::Proc;
use dpm_meter::{SockName, TermReason};
use dpm_simnet::{GlobalTime, HostId, MachineClock};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

/// Mutable kernel state of one machine, guarded by the kernel mutex.
#[derive(Debug, Default)]
pub(crate) struct KernState {
    /// Process table.
    pub procs: HashMap<Pid, ProcEntry>,
    /// Socket table ("file table" for sockets).
    pub socks: HashMap<SockId, Socket>,
    /// Next socket id.
    pub next_sock: u32,
    /// Internet-domain port bindings.
    pub inet_binds: HashMap<u16, SockId>,
    /// UNIX-domain path bindings.
    pub unix_binds: HashMap<String, SockId>,
    /// Next ephemeral port for auto-binding (4.2BSD used 1024+).
    pub next_eph_port: u16,
}

impl KernState {
    /// Allocates a socket id and inserts a fresh socket.
    pub fn alloc_sock(&mut self, mk: impl FnOnce(SockId) -> Socket) -> SockId {
        self.next_sock += 1;
        let id = SockId(self.next_sock);
        self.socks.insert(id, mk(id));
        id
    }

    /// Looks up a process entry or fails with `ESRCH`.
    pub fn proc_mut(&mut self, pid: Pid) -> SysResult<&mut ProcEntry> {
        self.procs.get_mut(&pid).ok_or(SysError::Esrch)
    }

    /// Looks up a process entry or fails with `ESRCH`.
    pub fn proc_ref(&self, pid: Pid) -> SysResult<&ProcEntry> {
        self.procs.get(&pid).ok_or(SysError::Esrch)
    }

    /// Resolves a process's descriptor to a socket id.
    pub fn fd_sock(&self, pid: Pid, fd: u32) -> SysResult<SockId> {
        match self.proc_ref(pid)?.desc(fd) {
            Some(Desc::Sock(s)) => Ok(s),
            _ => Err(SysError::Ebadf),
        }
    }

    /// Looks up a socket or fails with `EBADF`.
    pub fn sock_mut(&mut self, id: SockId) -> SysResult<&mut Socket> {
        self.socks.get_mut(&id).ok_or(SysError::Ebadf)
    }

    /// Next free ephemeral port.
    pub fn eph_port(&mut self) -> u16 {
        loop {
            if self.next_eph_port < 1024 {
                self.next_eph_port = 1024;
            }
            let p = self.next_eph_port;
            self.next_eph_port = self.next_eph_port.wrapping_add(1);
            if !self.inet_binds.contains_key(&p) {
                return p;
            }
        }
    }

    /// Drops one reference to a socket; when the last reference goes,
    /// destroys the socket and returns the cross-machine cleanup
    /// actions the caller must apply after releasing this lock.
    pub fn release_sock(&mut self, id: SockId) -> Vec<CloseAction> {
        let Some(sock) = self.socks.get_mut(&id) else {
            return Vec::new();
        };
        sock.refs = sock.refs.saturating_sub(1);
        if sock.refs > 0 {
            return Vec::new();
        }
        let sock = self.socks.remove(&id).expect("socket present");
        if let Some(name) = &sock.name {
            match name {
                SockName::Inet { port, .. } => {
                    if self.inet_binds.get(port) == Some(&id) {
                        self.inet_binds.remove(port);
                    }
                }
                SockName::UnixPath(p) => {
                    if self.unix_binds.get(p) == Some(&id) {
                        self.unix_binds.remove(p);
                    }
                }
                SockName::Internal(_) => {}
            }
        }
        let mut actions = Vec::new();
        if let SockKind::Stream { state, .. } = sock.kind {
            match state {
                StreamState::Connected { peer, .. } => {
                    actions.push(CloseAction::PeerClosed { peer });
                }
                StreamState::Listening { pending, .. } => {
                    for p in pending {
                        actions.push(CloseAction::Refuse { conn: p.from });
                    }
                }
                _ => {}
            }
        }
        actions
    }
}

/// Cross-machine cleanup produced by destroying a socket.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CloseAction {
    /// Tell the connected peer its counterpart has gone.
    PeerClosed {
        /// The remote endpoint of the dead connection.
        peer: RemoteSock,
    },
    /// Tell a parked connector its listener has gone.
    Refuse {
        /// The remote connecting socket.
        conn: RemoteSock,
    },
}

/// A pending delivery of meter messages to a filter, computed under
/// the source kernel lock and executed after it is released.
#[derive(Debug)]
pub(crate) struct FlushPlan {
    /// Remote (possibly local) endpoint of the meter connection: the
    /// filter's socket.
    pub peer: RemoteSock,
    /// Encoded meter messages.
    pub bytes: Vec<u8>,
    /// Global time at which the bytes become visible to the filter.
    pub visible_at_us: u64,
}

/// Outcome of one evaluation of a blocking condition.
pub(crate) enum Wait<T> {
    /// The operation completed with this value.
    Ready(T),
    /// Nothing to do yet; sleep until the kernel changes.
    Block,
}

/// A simulated machine.
pub struct Machine {
    id: HostId,
    name: String,
    clock: MachineClock,
    fs: SimFs,
    cluster: Weak<Cluster>,
    pub(crate) kern: Mutex<KernState>,
    pub(crate) cv: Condvar,
    threads: Mutex<HashMap<Pid, JoinHandle<()>>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl Machine {
    pub(crate) fn new(
        id: HostId,
        name: String,
        global: Arc<GlobalTime>,
        spec: dpm_simnet::ClockSpec,
        cluster: &Arc<Cluster>,
    ) -> Arc<Machine> {
        Arc::new(Machine {
            id,
            name,
            clock: MachineClock::new(global, spec),
            fs: SimFs::new(),
            cluster: Arc::downgrade(cluster),
            kern: Mutex::new(KernState::default()),
            cv: Condvar::new(),
            threads: Mutex::new(HashMap::new()),
        })
    }

    /// The machine's host id (the `machine` field of meter headers).
    pub fn id(&self) -> HostId {
        self.id
    }

    /// The machine's literal host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The machine's (skewed) clock.
    pub fn clock(&self) -> &MachineClock {
        &self.clock
    }

    /// The machine's file system.
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }

    /// The cluster this machine belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has been dropped while machines are still
    /// in use — a usage error, since [`Cluster`] owns its machines.
    pub fn cluster(&self) -> Arc<Cluster> {
        self.cluster.upgrade().expect("cluster dropped")
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Spawns a process running `body` on its own thread.
    ///
    /// With `running = false` the process is created suspended "prior
    /// to the execution of the first instruction" (§3.5.1) and must be
    /// started with [`Machine::signal`]/`Sig::Cont`.
    pub fn spawn_fn<F>(
        self: &Arc<Self>,
        name: &str,
        uid: Uid,
        parent: Option<Pid>,
        running: bool,
        body: F,
    ) -> Pid
    where
        F: FnOnce(Proc) -> SysResult<()> + Send + 'static,
    {
        self.spawn_inner(name, uid, parent, running, None, Box::new(body))
    }

    pub(crate) fn spawn_inner(
        self: &Arc<Self>,
        name: &str,
        uid: Uid,
        parent: Option<Pid>,
        running: bool,
        stdio: Option<SockId>,
        body: Box<dyn FnOnce(Proc) -> SysResult<()> + Send>,
    ) -> Pid {
        let cluster = self.cluster();
        let pid = cluster.alloc_pid();
        {
            let mut k = self.kern.lock();
            let mut entry = ProcEntry::new(pid, parent, uid, name);
            if running {
                entry.state = RunState::Running;
            }
            if let Some(sock) = stdio {
                // Redirect stdin/stdout/stderr to the gateway socket
                // (§3.5.2); three descriptor references.
                entry.descs = vec![
                    Some(Desc::Sock(sock)),
                    Some(Desc::Sock(sock)),
                    Some(Desc::Sock(sock)),
                ];
                if let Some(s) = k.socks.get_mut(&sock) {
                    s.refs += 3;
                }
            }
            k.procs.insert(pid, entry);
        }
        self.spawn_thread(pid, body);
        pid
    }

    /// Spawns the OS thread driving an already-inserted process entry.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        pid: Pid,
        body: Box<dyn FnOnce(Proc) -> SysResult<()> + Send>,
    ) {
        let machine = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("{}:{}", self.name, pid))
            .spawn(move || {
                let proc = Proc::new(machine.clone(), pid);
                if machine.wait_for_start(pid) {
                    let result = body(proc);
                    let reason = match result {
                        Ok(()) => TermReason::Normal,
                        Err(SysError::Killed) => TermReason::Killed,
                        Err(_) => TermReason::Normal, // abnormal exit still terminates
                    };
                    machine.exit_process(pid, reason);
                } else {
                    // Killed before ever starting.
                    machine.exit_process(pid, TermReason::Killed);
                }
            })
            .expect("spawn thread");
        self.threads.lock().insert(pid, handle);
        self.cv.notify_all();
    }

    /// Blocks the new process's thread until it is started; returns
    /// `false` if it was killed before starting.
    fn wait_for_start(&self, pid: Pid) -> bool {
        let mut k = self.kern.lock();
        loop {
            let Some(p) = k.procs.get(&pid) else {
                return false;
            };
            if p.kill_pending {
                return false;
            }
            match p.state {
                RunState::Running => return true,
                RunState::Zombie(_) => return false,
                RunState::Embryo | RunState::Stopped => self.cv.wait(&mut k),
            }
        }
    }

    /// Terminates a process: emits the termproc meter event, flushes
    /// the meter buffer, releases descriptors, notifies the parent,
    /// and marks the entry zombie.
    pub(crate) fn exit_process(self: &Arc<Self>, pid: Pid, reason: TermReason) {
        let cluster = self.cluster();

        // Phase 1: emit the termination event and flush the meter
        // buffer ("as part of process termination, any unsent messages
        // are forwarded to the filter", §3.2) — and *deliver* the
        // flush before touching any descriptor. Several processes can
        // share one meter connection (fork inheritance); delivering
        // first guarantees no sibling's exit can close the connection
        // out from under records that were produced before it died.
        let mut plans: Vec<FlushPlan> = Vec::new();
        let reason = {
            let mut k = self.kern.lock();
            let Some(p) = k.procs.get(&pid) else { return };
            if p.state.is_dead() {
                return;
            }
            let reason = if p.kill_pending {
                TermReason::Killed
            } else {
                reason
            };
            if let Some(plan) = crate::metering::emit_termproc(&mut k, self, &cluster, pid, reason)
            {
                plans.push(plan);
            }
            if let Some(plan) = crate::metering::force_flush(&mut k, self, &cluster, pid) {
                plans.push(plan);
            }
            reason
        };
        for plan in plans {
            self.deliver_meter(&cluster, plan);
        }

        // Phase 2: release descriptors, mark zombie, notify the
        // parent. Termination notifications therefore can never
        // overtake the process's final trace records.
        let mut actions: Vec<CloseAction> = Vec::new();
        {
            let mut k = self.kern.lock();
            let Some(p) = k.procs.get_mut(&pid) else {
                return;
            };
            let socks = p.socket_descs();
            p.descs.clear();
            let meter_sock = p.meter_sock.take();
            let parent = p.parent;
            p.state = RunState::Zombie(reason);
            p.meter_buf.clear();
            p.meter_buf_count = 0;
            for s in socks {
                actions.extend(k.release_sock(s));
            }
            if let Some(ms) = meter_sock {
                actions.extend(k.release_sock(ms));
            }
            if let Some(parent) = parent {
                if let Some(pp) = k.procs.get_mut(&parent) {
                    pp.dead_children.push_back((pid, reason));
                }
            }
        }
        self.cv.notify_all();
        self.run_close_actions(&cluster, actions);
    }

    /// Sends a process-control signal, with 4.2BSD permissions: a
    /// process may signal processes of the same user; the superuser
    /// may signal anything. Pass `from: None` for host-side (test
    /// harness) control, which is unrestricted.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the process does not exist or is a zombie; `EPERM`
    /// on a permission failure.
    pub fn signal(&self, from: Option<Uid>, pid: Pid, sig: Sig) -> SysResult<()> {
        let mut k = self.kern.lock();
        let p = k.procs.get_mut(&pid).ok_or(SysError::Esrch)?;
        if p.state.is_dead() {
            return Err(SysError::Esrch);
        }
        if let Some(uid) = from {
            if !uid.is_root() && uid != p.uid {
                return Err(SysError::Eperm);
            }
        }
        match sig {
            Sig::Stop => {
                if p.state == RunState::Running || p.state == RunState::Embryo {
                    p.state = RunState::Stopped;
                }
            }
            Sig::Cont => {
                if p.state == RunState::Stopped || p.state == RunState::Embryo {
                    p.state = RunState::Running;
                }
            }
            Sig::Kill => {
                p.kill_pending = true;
            }
        }
        drop(k);
        self.cv.notify_all();
        Ok(())
    }

    /// The kernel-level run state of a process, if it exists.
    pub fn proc_state(&self, pid: Pid) -> Option<RunState> {
        self.kern.lock().procs.get(&pid).map(|p| p.state)
    }

    /// The uid owning a process, if it exists.
    pub fn proc_uid(&self, pid: Pid) -> Option<Uid> {
        self.kern.lock().procs.get(&pid).map(|p| p.uid)
    }

    /// CPU time charged to a process so far, in microseconds.
    pub fn proc_cpu_us(&self, pid: Pid) -> Option<u64> {
        self.kern.lock().procs.get(&pid).map(|p| p.cpu_us)
    }

    /// Pids of every process whose program name equals `name`, sorted.
    /// Includes zombies; check [`Machine::proc_state`] for liveness.
    /// Lets a harness find a well-known process (say, the machine's
    /// meterdaemon) without scanning a pid window.
    pub fn procs_named(&self, name: &str) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self
            .kern
            .lock()
            .procs
            .values()
            .filter(|p| p.name == name)
            .map(|p| p.pid)
            .collect();
        pids.sort_by_key(|p| p.0);
        pids
    }

    /// Blocks until the process terminates, returning how. `None` if
    /// the pid is unknown.
    pub fn wait_exit(&self, pid: Pid) -> Option<TermReason> {
        let mut k = self.kern.lock();
        loop {
            match k.procs.get(&pid) {
                None => return None,
                Some(p) => match p.state {
                    RunState::Zombie(r) => return Some(r),
                    _ => self.cv.wait(&mut k),
                },
            }
        }
    }

    /// Feeds bytes to a process's console input.
    pub fn feed_stdin(&self, pid: Pid, bytes: &[u8]) {
        let mut k = self.kern.lock();
        if let Some(p) = k.procs.get_mut(&pid) {
            p.console_in.extend(bytes.iter().copied());
        }
        drop(k);
        self.cv.notify_all();
    }

    /// Closes a process's console input; a drained console then reads
    /// as end-of-file.
    pub fn close_stdin(&self, pid: Pid) {
        let mut k = self.kern.lock();
        if let Some(p) = k.procs.get_mut(&pid) {
            p.console_eof = true;
        }
        drop(k);
        self.cv.notify_all();
    }

    /// A copy of everything the process has written to its console.
    pub fn console_output(&self, pid: Pid) -> Option<Vec<u8>> {
        self.kern
            .lock()
            .procs
            .get(&pid)
            .map(|p| p.console_out.clone())
    }

    /// Marks every live process for killing.
    pub fn kill_all(&self) {
        let mut k = self.kern.lock();
        for p in k.procs.values_mut() {
            if !p.state.is_dead() {
                p.kill_pending = true;
                if p.state == RunState::Embryo || p.state == RunState::Stopped {
                    p.state = RunState::Running; // let the thread notice
                }
            }
        }
        drop(k);
        self.cv.notify_all();
    }

    /// Joins all process threads that have been spawned on this
    /// machine. Call after [`Machine::kill_all`] (or once all programs
    /// have finished) or this will block.
    pub fn join_all(&self) {
        let handles: Vec<_> = {
            let mut t = self.threads.lock();
            t.drain().map(|(_, h)| h).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    // ------------------------------------------------------------------
    // Blocking machinery
    // ------------------------------------------------------------------

    /// Runs `cond` under the kernel lock until it reports readiness,
    /// blocking on the machine's condition variable in between.
    /// Honors process control: a pending kill aborts with
    /// [`SysError::Killed`]; a stopped process stays blocked here even
    /// if the condition is ready.
    pub(crate) fn wait_on<T>(
        &self,
        pid: Pid,
        mut cond: impl FnMut(&mut KernState) -> SysResult<Wait<T>>,
    ) -> SysResult<T> {
        let mut k = self.kern.lock();
        loop {
            {
                let p = k.procs.get(&pid).ok_or(SysError::Esrch)?;
                if p.kill_pending {
                    return Err(SysError::Killed);
                }
                if p.state.is_dead() {
                    // A helper thread of an exited process (e.g. the
                    // meterdaemon's signal handler) gets a clean error.
                    return Err(SysError::Esrch);
                }
                if matches!(p.state, RunState::Stopped | RunState::Embryo) {
                    self.cv.wait(&mut k);
                    continue;
                }
            }
            match cond(&mut k)? {
                Wait::Ready(t) => return Ok(t),
                Wait::Block => self.cv.wait(&mut k),
            }
        }
    }

    /// One-shot (non-blocking) evaluation of a condition, with the
    /// same control checks as [`Machine::wait_on`].
    pub(crate) fn poll_on<T>(
        &self,
        pid: Pid,
        cond: impl FnOnce(&mut KernState) -> SysResult<Wait<T>>,
    ) -> SysResult<Option<T>> {
        let mut k = self.kern.lock();
        {
            let p = k.procs.get(&pid).ok_or(SysError::Esrch)?;
            if p.kill_pending {
                return Err(SysError::Killed);
            }
            if p.state.is_dead() {
                return Err(SysError::Esrch);
            }
            if matches!(p.state, RunState::Stopped | RunState::Embryo) {
                return Ok(None);
            }
        }
        match cond(&mut k)? {
            Wait::Ready(t) => Ok(Some(t)),
            Wait::Block => Ok(None),
        }
    }

    // ------------------------------------------------------------------
    // Cross-machine delivery (called with NO kernel lock held)
    // ------------------------------------------------------------------

    /// Enqueues a datagram on a socket of this machine. Silently drops
    /// it if the socket has vanished or is not a datagram socket —
    /// datagram delivery is not guaranteed (§3.1).
    pub(crate) fn deliver_dgram(&self, dst: SockId, dgram: Dgram) {
        let mut k = self.kern.lock();
        if let Some(sock) = k.socks.get_mut(&dst) {
            if let SockKind::Datagram { rx, .. } = &mut sock.kind {
                rx.push_back(dgram);
            }
        }
        drop(k);
        self.cv.notify_all();
    }

    /// Appends stream data to a connected socket on this machine,
    /// clamping visibility so segments stay ordered. Returns `false`
    /// if the socket is gone (the writer should see `EPIPE`).
    pub(crate) fn deliver_segment(&self, dst: SockId, data: Vec<u8>, visible_at_us: u64) -> bool {
        let mut k = self.kern.lock();
        let delivered = match k.socks.get_mut(&dst) {
            Some(sock) => match &mut sock.kind {
                SockKind::Stream {
                    rx, rx_floor_us, ..
                } => {
                    let vis = visible_at_us.max(*rx_floor_us);
                    *rx_floor_us = vis;
                    rx.push_back(Segment {
                        data,
                        visible_at_us: vis,
                    });
                    true
                }
                SockKind::Datagram { .. } => false,
            },
            None => false,
        };
        drop(k);
        self.cv.notify_all();
        delivered
    }

    /// Parks a connection request on the socket bound to `name` here.
    ///
    /// # Errors
    ///
    /// `ECONNREFUSED` if nothing is listening on `name` or the pending
    /// queue is at its backlog (§3.1's `listen` semantics).
    pub(crate) fn push_pending(&self, name: &SockName, conn: PendingConn) -> SysResult<()> {
        let mut k = self.kern.lock();
        let sid = match name {
            SockName::Inet { port, .. } => k.inet_binds.get(port).copied(),
            SockName::UnixPath(p) => k.unix_binds.get(p).copied(),
            SockName::Internal(_) => None,
        }
        .ok_or(SysError::Econnrefused)?;
        let sock = k.socks.get_mut(&sid).ok_or(SysError::Econnrefused)?;
        match &mut sock.kind {
            SockKind::Stream {
                state: StreamState::Listening { backlog, pending },
                ..
            } => {
                if pending.len() >= *backlog {
                    return Err(SysError::Econnrefused);
                }
                pending.push_back(conn);
            }
            _ => return Err(SysError::Econnrefused),
        }
        drop(k);
        self.cv.notify_all();
        Ok(())
    }

    /// Completes a connection on this machine: flips a `Connecting`
    /// socket to `Connected`. Returns `false` if the connector has
    /// vanished or given up.
    pub(crate) fn complete_connection(
        &self,
        conn: SockId,
        peer: RemoteSock,
        peer_name: SockName,
        visible_at_us: u64,
    ) -> bool {
        let mut k = self.kern.lock();
        let ok = match k.socks.get_mut(&conn) {
            Some(sock) => match &mut sock.kind {
                SockKind::Stream {
                    state, rx_floor_us, ..
                } if matches!(state, StreamState::Connecting) => {
                    *state = StreamState::Connected { peer, peer_name };
                    *rx_floor_us = visible_at_us;
                    true
                }
                _ => false,
            },
            None => false,
        };
        drop(k);
        self.cv.notify_all();
        ok
    }

    /// Marks a connecting socket refused.
    pub(crate) fn refuse_connection(&self, conn: SockId) {
        let mut k = self.kern.lock();
        if let Some(sock) = k.socks.get_mut(&conn) {
            if let SockKind::Stream { state, .. } = &mut sock.kind {
                if matches!(state, StreamState::Connecting) {
                    *state = StreamState::Refused;
                }
            }
        }
        drop(k);
        self.cv.notify_all();
    }

    /// Marks the read direction of a connected socket as finished
    /// (the peer called `shutdown(2)` on its write half): buffered
    /// data stays readable, then reads return end-of-file, but this
    /// side may continue writing.
    pub(crate) fn set_rx_eof(&self, sock: SockId) {
        let mut k = self.kern.lock();
        if let Some(s) = k.socks.get_mut(&sock) {
            if let SockKind::Stream { rx_eof, .. } = &mut s.kind {
                *rx_eof = true;
            }
        }
        drop(k);
        self.cv.notify_all();
    }

    /// Marks a connected socket's peer as closed; buffered data stays
    /// readable, then reads return end-of-file.
    pub(crate) fn peer_closed(&self, sock: SockId) {
        let mut k = self.kern.lock();
        if let Some(s) = k.socks.get_mut(&sock) {
            if let SockKind::Stream { state, .. } = &mut s.kind {
                if matches!(
                    state,
                    StreamState::Connected { .. } | StreamState::Connecting
                ) {
                    *state = StreamState::PeerClosed;
                }
            }
        }
        drop(k);
        self.cv.notify_all();
    }

    /// Applies socket-close cleanup actions, routing each to the
    /// machine holding the affected socket.
    pub(crate) fn run_close_actions(&self, cluster: &Arc<Cluster>, actions: Vec<CloseAction>) {
        for a in actions {
            match a {
                CloseAction::PeerClosed { peer } => {
                    if let Some(m) = cluster.machine_by_id(peer.host) {
                        m.peer_closed(peer.sock);
                    }
                }
                CloseAction::Refuse { conn } => {
                    if let Some(m) = cluster.machine_by_id(conn.host) {
                        m.refuse_connection(conn.sock);
                    }
                }
            }
        }
    }

    /// Delivers flushed meter messages over the meter connection.
    ///
    /// When the fault injector asks for at-least-once retransmission,
    /// the whole flush batch is delivered a second time after an extra
    /// latency sample; the filter's sequence-number dedup must absorb
    /// the duplicate copy.
    pub(crate) fn deliver_meter(&self, cluster: &Arc<Cluster>, plan: FlushPlan) {
        cluster
            .stats
            .record_meter_frame(plan.bytes.len(), plan.peer.host != self.id());
        if let Some(m) = cluster.machine_by_id(plan.peer.host) {
            let dup = cluster.dup_meter_flush(self.id(), plan.peer.host, plan.visible_at_us);
            if dup {
                let extra = cluster.sample_latency(self.id(), plan.peer.host).max(1);
                let copy = plan.bytes.clone();
                m.deliver_segment(plan.peer.sock, plan.bytes, plan.visible_at_us);
                m.deliver_segment(plan.peer.sock, copy, plan.visible_at_us + extra);
            } else {
                m.deliver_segment(plan.peer.sock, plan.bytes, plan.visible_at_us);
            }
        }
    }

    /// Runs any flush plans produced during a system call.
    pub(crate) fn run_plans(&self, cluster: &Arc<Cluster>, plans: Vec<FlushPlan>) {
        for p in plans {
            self.deliver_meter(cluster, p);
        }
    }
}
