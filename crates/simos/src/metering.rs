//! Kernel-resident metering: event generation, buffering, flushing.
//!
//! "On every call to a routine that might initiate a meter event, the
//! kernel checks whether the call is currently metered for the process
//! that is making the call. If the call is metered, the kernel creates
//! and stores a message containing trace data. When a sufficient
//! number of messages have been stored, the kernel sends them together
//! to the filter across the meter connection. As part of process
//! termination, any unsent messages are forwarded to the filter. Of
//! course, it is also possible to have all meter messages sent
//! immediately after the occurrence of each event." (§3.2)

use crate::cluster::Cluster;
use crate::machine::{FlushPlan, KernState, Machine};
use crate::process::Pid;
use crate::socket::{SockKind, StreamState};
use dpm_meter::{
    trace_type, MeterBody, MeterFlags, MeterHeader, MeterMsg, MeterTermProc, TermReason,
};

/// The meter flag guarding a given trace type.
pub(crate) fn flag_for(trace: u32) -> MeterFlags {
    match trace {
        trace_type::SEND => MeterFlags::SEND,
        trace_type::RECEIVECALL => MeterFlags::RECEIVECALL,
        trace_type::RECEIVE => MeterFlags::RECEIVE,
        trace_type::SOCKET => MeterFlags::SOCKET,
        trace_type::DUP => MeterFlags::DUP,
        trace_type::DESTSOCKET => MeterFlags::DESTSOCKET,
        trace_type::FORK => MeterFlags::FORK,
        trace_type::ACCEPT => MeterFlags::ACCEPT,
        trace_type::CONNECT => MeterFlags::CONNECT,
        trace_type::TERMPROC => MeterFlags::TERMPROC,
        _ => MeterFlags::NONE,
    }
}

/// Generates one meter event for `pid` if its flags select the event's
/// type. Buffers the encoded message; returns a [`FlushPlan`] when the
/// buffer reaches the flush threshold (or the process has
/// `M_IMMEDIATE` set). The caller must execute the plan **after**
/// releasing the kernel lock.
pub(crate) fn emit(
    k: &mut KernState,
    machine: &Machine,
    cluster: &Cluster,
    pid: Pid,
    body: MeterBody,
) -> Option<FlushPlan> {
    let threshold = cluster.config().meter_buffer_msgs;
    let cost = cluster.config().costs.meter_event_us;
    let p = k.procs.get_mut(&pid)?;
    let flag = flag_for(body.trace_type());
    if flag.is_empty() || !p.meter_flags.contains(flag) {
        return None;
    }
    // The metering work itself costs CPU — the overhead experiment E1
    // measures exactly this.
    p.cpu_us += cost;
    p.local_us += cost;
    let local = p.local_us;
    machine.clock().global().advance_to_us(local);
    // Stamp the per-process sequence (the header word the paper leaves
    // unused); the filter uses it to discard duplicates delivered by
    // at-least-once retransmission. Sequences start at 1.
    p.meter_seq = p.meter_seq.wrapping_add(1).max(1);
    let header = MeterHeader {
        size: 0,
        machine: machine.id().0 as u16,
        cpu_time: machine.clock().at_ms(local),
        seq: p.meter_seq,
        proc_time: p.proc_time_ms(),
        trace_type: body.trace_type(),
    };
    let msg = MeterMsg { header, body };
    msg.encode_into(&mut p.meter_buf);
    p.meter_buf_count += 1;
    let immediate = p.meter_flags.contains(MeterFlags::IMMEDIATE);
    if immediate || p.meter_buf_count >= threshold {
        flush(k, machine, cluster, pid)
    } else {
        None
    }
}

/// Emits the process-termination event (if flagged). Does not flush;
/// callers follow with [`force_flush`].
pub(crate) fn emit_termproc(
    k: &mut KernState,
    machine: &Machine,
    cluster: &Cluster,
    pid: Pid,
    reason: TermReason,
) -> Option<FlushPlan> {
    let pc = k.procs.get(&pid)?.syscall_count;
    emit(
        k,
        machine,
        cluster,
        pid,
        MeterBody::TermProc(MeterTermProc {
            pid: pid.0,
            pc,
            reason,
        }),
    )
}

/// Unconditionally flushes whatever is buffered (used at process
/// termination).
pub(crate) fn force_flush(
    k: &mut KernState,
    machine: &Machine,
    cluster: &Cluster,
    pid: Pid,
) -> Option<FlushPlan> {
    flush(k, machine, cluster, pid)
}

/// Drains the process's meter buffer into a delivery plan addressed to
/// the filter at the other end of the meter connection.
///
/// Messages are *lost* — exactly as the `setmeter(2)` manual page
/// warns — when the meter socket is absent, has vanished, or is not
/// connected.
fn flush(k: &mut KernState, machine: &Machine, cluster: &Cluster, pid: Pid) -> Option<FlushPlan> {
    let flush_cost = cluster.config().costs.meter_flush_us;
    let p = k.procs.get_mut(&pid)?;
    if p.meter_buf.is_empty() {
        return None;
    }
    let bytes = std::mem::take(&mut p.meter_buf);
    p.meter_buf_count = 0;
    let meter_sock = p.meter_sock?;
    p.cpu_us += flush_cost;
    p.local_us += flush_cost;
    let local = p.local_us;
    machine.clock().global().advance_to_us(local);
    let sock = k.socks.get(&meter_sock)?;
    let peer = match &sock.kind {
        SockKind::Stream {
            state: StreamState::Connected { peer, .. },
            ..
        } => *peer,
        _ => return None, // unconnected meter socket: messages lost
    };
    let latency = cluster.sample_latency(machine.id(), peer.host);
    dpm_telemetry::registry()
        .histogram("meter", "flush_bytes", machine.name())
        .record(bytes.len() as u64);
    Some(FlushPlan {
        peer,
        bytes,
        visible_at_us: local + latency,
    })
}
