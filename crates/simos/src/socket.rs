//! Socket structures of the simulated kernel.
//!
//! "Communication in Berkeley UNIX is based on sockets. A socket is an
//! endpoint of communication. … A socket, once created, exists
//! independent of the creating process. Several processes might have
//! access to the same socket at the same time. A socket disappears
//! when it is no longer referenced by any process." (§3.1)
//!
//! These are plain data structures; all locking and cross-machine
//! routing live in the machine/kernel layer.

use dpm_meter::SockName;
use dpm_simnet::HostId;
use std::collections::VecDeque;

/// Identifier of a socket within one machine — the simulated "file
/// table entry address". "Sockets are identified by their address
/// within the system descriptor table. This ensures that socket
/// addresses are unique within a particular machine." (§4.1)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SockId(pub u32);

impl std::fmt::Display for SockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A reference to a socket that may live on another machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteSock {
    /// The machine holding the socket.
    pub host: HostId,
    /// The socket on that machine.
    pub sock: SockId,
}

/// Communication domain (address family) of a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// `AF_UNIX`: path names, same machine only.
    Unix,
    /// `AF_INET`: (host, port) names, cross machine.
    Inet,
}

impl Domain {
    /// The numeric value carried in socket-create meter messages
    /// (4.2BSD: `AF_UNIX == 1`, `AF_INET == 2`).
    pub fn as_u32(self) -> u32 {
        match self {
            Domain::Unix => 1,
            Domain::Inet => 2,
        }
    }
}

/// Socket type: connection-based stream or connectionless datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SockType {
    /// `SOCK_STREAM`: "concatenates messages into a single, reliable,
    /// ordered byte stream" (§3.1).
    Stream,
    /// `SOCK_DGRAM`: "delivery of the messages is not guaranteed,
    /// though it is likely. Nor is the order … guaranteed" (§3.1).
    Datagram,
}

impl SockType {
    /// The numeric value carried in socket-create meter messages
    /// (4.2BSD: `SOCK_STREAM == 1`, `SOCK_DGRAM == 2`).
    pub fn as_u32(self) -> u32 {
        match self {
            SockType::Stream => 1,
            SockType::Datagram => 2,
        }
    }
}

/// A datagram queued for delivery.
#[derive(Debug, Clone)]
pub struct Dgram {
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Name of the sending socket, if it had one (it always does in
    /// this kernel: senders are auto-bound).
    pub src: Option<SockName>,
    /// Global (true) time at which the datagram becomes visible to the
    /// receiver, in microseconds.
    pub visible_at_us: u64,
}

/// A segment of stream data in flight or queued.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Global time at which the segment becomes readable.
    pub visible_at_us: u64,
}

/// A connection request parked on a listening socket.
#[derive(Debug, Clone)]
pub struct PendingConn {
    /// The connecting socket (possibly on another machine).
    pub from: RemoteSock,
    /// Name bound to the connecting socket (auto-bound if the caller
    /// had not bound one).
    pub peer_name: SockName,
    /// Global time at which the request becomes visible to `accept`.
    pub visible_at_us: u64,
}

/// Stream-specific state.
#[derive(Debug, Default)]
pub enum StreamState {
    /// Fresh socket: neither listening nor connected.
    #[default]
    Idle,
    /// `listen()` was called; connection requests queue here.
    Listening {
        /// Maximum number of parked requests (the `listen` backlog).
        backlog: usize,
        /// Parked connection requests, oldest first.
        pending: VecDeque<PendingConn>,
    },
    /// `connect()` issued, waiting for the peer to `accept`.
    Connecting,
    /// Connected to a peer; data flows.
    Connected {
        /// The peer endpoint.
        peer: RemoteSock,
        /// Name bound to the peer socket (for meter records and
        /// `getpeername`-style queries).
        peer_name: SockName,
    },
    /// The peer closed; reads drain the buffer then return EOF, writes
    /// fail with `EPIPE`.
    PeerClosed,
    /// `connect()` failed; the initiator should see `ECONNREFUSED`.
    Refused,
}

/// Kind-specific socket state.
#[derive(Debug)]
pub enum SockKind {
    /// Stream socket state plus its receive buffer.
    Stream {
        /// Connection state.
        state: StreamState,
        /// Received segments not yet read, oldest first. Kept as
        /// segments (not a flat buffer) so latency visibility is per
        /// arrival; `read` still drains bytes without regard for
        /// segment boundaries, as §3.1 requires.
        rx: VecDeque<Segment>,
        /// Monotone lower bound for the next segment's visibility,
        /// preserving in-order delivery per connection.
        rx_floor_us: u64,
        /// The peer has shut down its write side (`shutdown(2)`):
        /// reads drain `rx` then return end-of-file, but this side may
        /// keep writing.
        rx_eof: bool,
        /// This side has shut down its own write side: further writes
        /// fail with `EPIPE`.
        wr_closed: bool,
    },
    /// Datagram socket state.
    Datagram {
        /// Received datagrams not yet read, ordered by arrival.
        rx: VecDeque<Dgram>,
        /// Default destination set by `connect()` on a datagram
        /// socket, letting the caller use plain `send()`.
        default_peer: Option<SockName>,
    },
}

/// A socket: the kernel-resident endpoint object.
#[derive(Debug)]
pub struct Socket {
    /// This socket's id (its "file table entry address").
    pub id: SockId,
    /// Address family.
    pub domain: Domain,
    /// Stream or datagram.
    pub stype: SockType,
    /// Protocol number (always 0, the domain default).
    pub protocol: u32,
    /// Name bound with `bind()` or auto-bound by the kernel.
    pub name: Option<SockName>,
    /// Reference count: descriptor-table entries (across all
    /// processes), meter-socket references, and kernel-internal
    /// holds. The socket disappears when it reaches zero.
    pub refs: u32,
    /// Kind-specific state.
    pub kind: SockKind,
}

impl Socket {
    /// Creates a fresh, unbound, unconnected socket with one
    /// reference (the descriptor about to be handed to the creator).
    pub fn new(id: SockId, domain: Domain, stype: SockType) -> Socket {
        let kind = match stype {
            SockType::Stream => SockKind::Stream {
                state: StreamState::Idle,
                rx: VecDeque::new(),
                rx_floor_us: 0,
                rx_eof: false,
                wr_closed: false,
            },
            SockType::Datagram => SockKind::Datagram {
                rx: VecDeque::new(),
                default_peer: None,
            },
        };
        Socket {
            id,
            domain,
            stype,
            protocol: 0,
            name: None,
            refs: 1,
            kind,
        }
    }

    /// Convenience: the stream state, if this is a stream socket.
    pub fn stream_state(&self) -> Option<&StreamState> {
        match &self.kind {
            SockKind::Stream { state, .. } => Some(state),
            SockKind::Datagram { .. } => None,
        }
    }

    /// Whether this stream socket is connected.
    pub fn is_connected(&self) -> bool {
        matches!(
            self.kind,
            SockKind::Stream {
                state: StreamState::Connected { .. },
                ..
            }
        )
    }

    /// Total bytes currently buffered for reading (whether or not yet
    /// visible).
    pub fn buffered_bytes(&self) -> usize {
        match &self.kind {
            SockKind::Stream { rx, .. } => rx.iter().map(|s| s.data.len()).sum(),
            SockKind::Datagram { rx, .. } => rx.iter().map(|d| d.data.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stream_socket_is_idle() {
        let s = Socket::new(SockId(7), Domain::Inet, SockType::Stream);
        assert_eq!(s.id, SockId(7));
        assert!(matches!(s.stream_state(), Some(StreamState::Idle)));
        assert!(!s.is_connected());
        assert_eq!(s.refs, 1);
        assert_eq!(s.buffered_bytes(), 0);
    }

    #[test]
    fn new_datagram_socket_has_no_stream_state() {
        let s = Socket::new(SockId(1), Domain::Unix, SockType::Datagram);
        assert!(s.stream_state().is_none());
        assert_eq!(s.domain.as_u32(), 1);
        assert_eq!(s.stype.as_u32(), 2);
    }

    #[test]
    fn numeric_codes_match_4_2bsd() {
        assert_eq!(Domain::Unix.as_u32(), 1);
        assert_eq!(Domain::Inet.as_u32(), 2);
        assert_eq!(SockType::Stream.as_u32(), 1);
        assert_eq!(SockType::Datagram.as_u32(), 2);
    }

    #[test]
    fn buffered_bytes_counts_all_queued() {
        let mut s = Socket::new(SockId(1), Domain::Inet, SockType::Datagram);
        if let SockKind::Datagram { rx, .. } = &mut s.kind {
            rx.push_back(Dgram {
                data: vec![0; 10],
                src: None,
                visible_at_us: 0,
            });
            rx.push_back(Dgram {
                data: vec![0; 5],
                src: None,
                visible_at_us: 99,
            });
        }
        assert_eq!(s.buffered_bytes(), 15);
    }
}
