//! Bounded exponential backoff over virtual time.
//!
//! Every "wait for the other side" loop in the monitor — workload
//! clients connecting before their server listens, the meterdaemon
//! connecting to a just-spawned filter, a controller retrying an RPC
//! against a restarted daemon — shares this policy instead of a fixed
//! spin. Delays grow exponentially from `base_ms` to `cap_ms` and the
//! attempt count is bounded, so a dead peer is reported instead of
//! spun on forever. All delays are *virtual* time ([`Proc::sleep_ms`])
//! plus a tiny real-time yield so the peer's real thread can run; the
//! schedule is a pure function of the policy parameters, keeping
//! fault-injection runs deterministic.

use crate::error::{SysError, SysResult};
use crate::socket::{Domain, SockType};
use crate::syscall::{Fd, Proc};

/// A bounded exponential-backoff schedule.
///
/// # Example
///
/// ```
/// use dpm_simos::Backoff;
///
/// let mut b = Backoff::new(4, 10, 40);
/// let delays: Vec<_> = std::iter::from_fn(|| b.next_delay_ms()).collect();
/// assert_eq!(delays, vec![10, 20, 40, 40]); // doubling, capped
/// assert_eq!(b.attempts(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    max_tries: u32,
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule of at most `max_tries` waits, starting at `base_ms`
    /// and doubling up to `cap_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `base_ms` is zero (a zero delay never advances
    /// virtual time, so the loop could not make progress).
    pub fn new(max_tries: u32, base_ms: u64, cap_ms: u64) -> Backoff {
        assert!(base_ms > 0, "backoff base must advance virtual time");
        Backoff {
            max_tries,
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
        }
    }

    /// The default policy for "peer is starting up" waits: 40 tries,
    /// 5 ms doubling to 160 ms (≈ 5.5 s of virtual time in total —
    /// comfortably beyond any startup race, far short of forever).
    pub fn standard() -> Backoff {
        Backoff::new(40, 5, 160)
    }

    /// Waits already taken.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay in milliseconds, or `None` when the schedule is
    /// exhausted. Advances the attempt counter.
    pub fn next_delay_ms(&mut self) -> Option<u64> {
        if self.attempt >= self.max_tries {
            return None;
        }
        let exp = self.attempt.min(63);
        let delay = self
            .base_ms
            .saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        self.attempt += 1;
        Some(delay)
    }

    /// Sleeps through the next delay: virtual time for the simulated
    /// process plus a tiny real-time yield so the peer's real thread
    /// gets CPU. Returns `false` when the schedule is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates [`SysError::Killed`] if the process is killed while
    /// sleeping.
    pub fn wait(&mut self, p: &Proc) -> SysResult<bool> {
        match self.next_delay_ms() {
            None => Ok(false),
            Some(ms) => {
                p.sleep_ms(ms)?;
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok(true)
            }
        }
    }
}

/// Connects a fresh stream socket to `(host, port)`, retrying refused
/// connections on the given backoff schedule. This replaces the old
/// fixed-interval connect spins in the workloads and the meterdaemon.
///
/// # Errors
///
/// [`SysError::Econnrefused`] once the schedule is exhausted; any
/// other error immediately.
pub fn connect_backoff(p: &Proc, host: &str, port: u16, mut policy: Backoff) -> SysResult<Fd> {
    loop {
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        match p.connect_host(s, host, port) {
            Ok(()) => return Ok(s),
            Err(SysError::Econnrefused) => {
                p.close(s)?;
                dpm_telemetry::registry()
                    .counter("net", "connect_retries", host)
                    .inc();
                if !policy.wait(p)? {
                    dpm_telemetry::note(
                        "net",
                        host,
                        format!(
                            "connect to {host}:{port} gave up after {} tries",
                            policy.attempts()
                        ),
                    );
                    return Err(SysError::Econnrefused);
                }
            }
            Err(e) => {
                let _ = p.close(s);
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::process::Uid;
    use crate::syscall::BindTo;
    use dpm_simnet::NetConfig;

    #[test]
    fn schedule_doubles_and_caps() {
        let mut b = Backoff::new(6, 5, 40);
        let delays: Vec<_> = std::iter::from_fn(|| b.next_delay_ms()).collect();
        assert_eq!(delays, vec![5, 10, 20, 40, 40, 40]);
        assert_eq!(b.attempts(), 6);
        assert_eq!(b.next_delay_ms(), None);
    }

    #[test]
    fn schedule_is_deterministic() {
        let mut a = Backoff::standard();
        let mut b = Backoff::standard();
        let da: Vec<_> = std::iter::from_fn(|| a.next_delay_ms()).collect();
        let db: Vec<_> = std::iter::from_fn(|| b.next_delay_ms()).collect();
        assert_eq!(da, db);
        assert!(!da.is_empty());
    }

    #[test]
    #[should_panic(expected = "backoff base")]
    fn zero_base_panics() {
        let _ = Backoff::new(3, 0, 10);
    }

    #[test]
    fn connect_backoff_waits_for_a_late_listener() {
        let c = Cluster::builder()
            .net(NetConfig::ideal())
            .machine("a")
            .machine("b")
            .build();
        let server = c
            .spawn_user("b", "late-server", Uid(1), |p| {
                p.sleep_ms(50)?;
                let s = p.socket(Domain::Inet, SockType::Stream)?;
                p.bind(s, BindTo::Port(901))?;
                p.listen(s, 1)?;
                let (conn, _) = p.accept(s)?;
                p.write(conn, b"ok")?;
                Ok(())
            })
            .unwrap();
        let client = c
            .spawn_user("a", "client", Uid(1), |p| {
                let s = connect_backoff(&p, "b", 901, Backoff::standard())?;
                assert_eq!(p.read(s, 10)?, b"ok");
                Ok(())
            })
            .unwrap();
        assert_eq!(
            c.machine("a").unwrap().wait_exit(client),
            Some(dpm_meter::TermReason::Normal)
        );
        c.machine("b").unwrap().wait_exit(server);
        c.shutdown();
    }

    #[test]
    fn connect_backoff_gives_up_on_a_dead_port() {
        let c = Cluster::builder()
            .net(NetConfig::ideal())
            .machine("a")
            .machine("b")
            .build();
        let pid = c
            .spawn_user("a", "client", Uid(1), |p| {
                let err = connect_backoff(&p, "b", 902, Backoff::new(3, 2, 8));
                assert_eq!(err.unwrap_err(), SysError::Econnrefused);
                Ok(())
            })
            .unwrap();
        assert_eq!(
            c.machine("a").unwrap().wait_exit(pid),
            Some(dpm_meter::TermReason::Normal)
        );
        c.shutdown();
    }
}
