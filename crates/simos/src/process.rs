//! Process-table entries of the simulated kernel.
//!
//! "In UNIX each process is described by an entry in the process
//! table. … For the purpose of metering, three fields have been added
//! to the process structures in the process table": a pointer to the
//! *meter socket*, a bit mask indicating the events to be metered, and
//! a pointer to meter messages that have yet to be sent (§3.2). All
//! three appear verbatim in [`ProcEntry`].

use crate::socket::SockId;
use dpm_meter::{MeterFlags, TermReason};
use std::collections::VecDeque;

/// A process identifier. Unique across the whole simulated cluster so
/// transcripts read unambiguously, though every kernel operation still
/// resolves pids against its own machine's process table, as 4.2BSD
/// did ("the identifiers of a process only have meaning for the local
/// operating system", §3.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A user identifier. Uid 0 is the superuser; "a superuser process can
/// set metering for any process" (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Whether this is the superuser.
    pub fn is_root(self) -> bool {
        self == Uid::ROOT
    }
}

impl std::fmt::Display for Uid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Kernel-level run state of a process.
///
/// This is the kernel's view; the *controller* keeps its own
/// five-state view (`new`, `acquired`, `running`, `stopped`, `killed`,
/// Fig. 4.2) layered on top of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Created but suspended prior to the execution of the first
    /// instruction (§3.5.1: "when a process is created, it should be
    /// suspended prior to the start of its execution").
    Embryo,
    /// Eligible to run.
    Running,
    /// Stopped by a SIGSTOP-style signal; resumable.
    Stopped,
    /// Terminated; the entry remains until reaped by its parent.
    Zombie(TermReason),
}

impl RunState {
    /// Whether the process has terminated.
    pub fn is_dead(&self) -> bool {
        matches!(self, RunState::Zombie(_))
    }
}

/// What a descriptor-table slot points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Desc {
    /// A socket in this machine's socket table.
    Sock(SockId),
    /// The process's console: writes accumulate in a per-process
    /// output buffer, reads consume a per-process input buffer. Stand-
    /// in for the terminal when stdio has not been redirected to a
    /// socket by the meterdaemon (§3.5.2).
    Console,
}

/// The signals the simulated kernel understands — exactly the three
/// the measurement tools need for process control (§3.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sig {
    /// Halt execution; resumable with [`Sig::Cont`].
    Stop,
    /// Resume a stopped (or start an embryonic) process.
    Cont,
    /// Terminate the process.
    Kill,
}

/// One entry in a machine's process table.
#[derive(Debug)]
pub struct ProcEntry {
    /// Process id.
    pub pid: Pid,
    /// Parent process id, if the parent is on this machine.
    pub parent: Option<Pid>,
    /// Owner.
    pub uid: Uid,
    /// Run state.
    pub state: RunState,
    /// Human-readable program name (for `jobs` listings).
    pub name: String,
    /// Descriptor table: indices are file descriptors.
    pub descs: Vec<Option<Desc>>,
    /// CPU time charged to the process, in microseconds. Reported
    /// through meter headers quantized to 10 ms (§4.1).
    pub cpu_us: u64,
    /// The process's local virtual time, in global microseconds.
    pub local_us: u64,
    /// Count of system calls made; doubles as the fake "PC at the time
    /// of the system call" in meter records, since simulated programs
    /// have no program counter.
    pub syscall_count: u32,
    /// Console output buffer (bytes written to a [`Desc::Console`]).
    pub console_out: Vec<u8>,
    /// Console input buffer (bytes available to read from a
    /// [`Desc::Console`]).
    pub console_in: VecDeque<u8>,
    /// Whether console input has been closed; a drained, closed
    /// console reads as end-of-file.
    pub console_eof: bool,
    /// A kill signal has been delivered but the process's thread has
    /// not yet noticed (it will at its next system-call boundary).
    pub kill_pending: bool,
    /// Children that have terminated but not been reaped by `wait`.
    pub dead_children: VecDeque<(Pid, TermReason)>,
    /// **Meter field 1**: the meter socket, "a socket which has been
    /// connected to a filter process. … the descriptor … is not stored
    /// in the process's descriptor table and is, therefore, not
    /// directly accessible by the process" (§3.2).
    pub meter_sock: Option<SockId>,
    /// **Meter field 2**: the meter flags bit mask.
    pub meter_flags: MeterFlags,
    /// **Meter field 3**: meter messages that have yet to be sent,
    /// already encoded in wire format.
    pub meter_buf: Vec<u8>,
    /// Number of messages currently in `meter_buf`.
    pub meter_buf_count: u32,
    /// Per-process meter sequence counter; the last stamped
    /// [`MeterHeader::seq`](dpm_meter::MeterHeader::seq). Sequences
    /// start at 1, so `0` here means nothing emitted yet.
    pub meter_seq: u32,
}

impl ProcEntry {
    /// Creates an embryonic process entry with stdio on the console.
    pub fn new(pid: Pid, parent: Option<Pid>, uid: Uid, name: impl Into<String>) -> ProcEntry {
        ProcEntry {
            pid,
            parent,
            uid,
            state: RunState::Embryo,
            name: name.into(),
            descs: vec![
                Some(Desc::Console),
                Some(Desc::Console),
                Some(Desc::Console),
            ],
            cpu_us: 0,
            local_us: 0,
            syscall_count: 0,
            console_out: Vec::new(),
            console_in: VecDeque::new(),
            console_eof: false,
            kill_pending: false,
            dead_children: VecDeque::new(),
            meter_sock: None,
            meter_flags: MeterFlags::NONE,
            meter_buf: Vec::new(),
            meter_buf_count: 0,
            meter_seq: 0,
        }
    }

    /// Allocates the lowest free descriptor slot, as UNIX does.
    pub fn alloc_fd(&mut self, desc: Desc) -> u32 {
        for (i, slot) in self.descs.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(desc);
                return i as u32;
            }
        }
        self.descs.push(Some(desc));
        (self.descs.len() - 1) as u32
    }

    /// Looks up a descriptor.
    pub fn desc(&self, fd: u32) -> Option<Desc> {
        self.descs.get(fd as usize).copied().flatten()
    }

    /// Clears a descriptor slot, returning what it held.
    pub fn clear_fd(&mut self, fd: u32) -> Option<Desc> {
        self.descs.get_mut(fd as usize).and_then(Option::take)
    }

    /// CPU time in the 10 ms granularity the paper reports
    /// ("CPU use is updated in increments of 10ms", §4.1).
    pub fn proc_time_ms(&self) -> u32 {
        ((self.cpu_us / 10_000) * 10) as u32
    }

    /// The sockets currently referenced from the descriptor table
    /// (with multiplicity, for refcount accounting).
    pub fn socket_descs(&self) -> Vec<SockId> {
        self.descs
            .iter()
            .filter_map(|d| match d {
                Some(Desc::Sock(s)) => Some(*s),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_is_embryonic_with_console_stdio() {
        let p = ProcEntry::new(Pid(2120), None, Uid(12), "A");
        assert_eq!(p.state, RunState::Embryo);
        assert_eq!(p.desc(0), Some(Desc::Console));
        assert_eq!(p.desc(1), Some(Desc::Console));
        assert_eq!(p.desc(2), Some(Desc::Console));
        assert_eq!(p.desc(3), None);
        assert!(p.meter_sock.is_none());
        assert!(p.meter_flags.is_empty());
    }

    #[test]
    fn fd_allocation_reuses_lowest_slot() {
        let mut p = ProcEntry::new(Pid(1), None, Uid(1), "x");
        let a = p.alloc_fd(Desc::Sock(SockId(10)));
        let b = p.alloc_fd(Desc::Sock(SockId(11)));
        assert_eq!((a, b), (3, 4));
        p.clear_fd(3);
        assert_eq!(p.alloc_fd(Desc::Sock(SockId(12))), 3);
        assert_eq!(p.desc(3), Some(Desc::Sock(SockId(12))));
    }

    #[test]
    fn proc_time_quantizes_to_10ms() {
        let mut p = ProcEntry::new(Pid(1), None, Uid(1), "x");
        p.cpu_us = 9_999; // 9.999 ms
        assert_eq!(p.proc_time_ms(), 0);
        p.cpu_us = 10_000;
        assert_eq!(p.proc_time_ms(), 10);
        p.cpu_us = 39_999;
        assert_eq!(p.proc_time_ms(), 30);
    }

    #[test]
    fn socket_descs_with_multiplicity() {
        let mut p = ProcEntry::new(Pid(1), None, Uid(1), "x");
        p.alloc_fd(Desc::Sock(SockId(5)));
        p.alloc_fd(Desc::Sock(SockId(5))); // dup
        p.alloc_fd(Desc::Sock(SockId(6)));
        assert_eq!(p.socket_descs(), vec![SockId(5), SockId(5), SockId(6)]);
    }

    #[test]
    fn zombie_is_dead() {
        assert!(RunState::Zombie(TermReason::Normal).is_dead());
        assert!(!RunState::Running.is_dead());
        assert!(!RunState::Embryo.is_dead());
        assert!(!RunState::Stopped.is_dead());
    }
}
