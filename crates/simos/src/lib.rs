//! A simulated multi-machine Berkeley UNIX 4.2BSD environment with
//! kernel-resident metering — the substrate of the distributed
//! programs monitor.
//!
//! The paper's measurement tools required "changes to the Berkeley
//! UNIX kernel": flagged system calls by metered processes generate
//! meter messages that are buffered in the kernel and delivered to a
//! filter process over a hidden stream connection. This crate
//! implements that kernel — process tables with the three added meter
//! fields, BSD sockets (stream and datagram, UNIX and Internet
//! domains), `fork` inheritance of metering, signals, per-machine
//! skewed clocks, a latency/loss network, and the `setmeter(2)` system
//! call of Appendix C.
//!
//! Simulated processes are real OS threads executing against the
//! simulated kernel through a [`Proc`] handle, so blocking semantics
//! (`accept`, `recv`, `wait`) are the natural ones, while *time* is
//! virtual: a hidden discrete-event clock advanced by computation and
//! message latency, viewed through each machine's skewed clock.
//!
//! # Example: metered echo over a stream connection
//!
//! ```
//! use dpm_simos::{BindTo, Cluster, Domain, SockType, Uid};
//! use dpm_simnet::NetConfig;
//!
//! let cluster = Cluster::builder()
//!     .net(NetConfig::ideal())
//!     .machine("red")
//!     .machine("green")
//!     .build();
//!
//! let server = cluster.spawn_user("green", "server", Uid(1), |p| {
//!     let s = p.socket(Domain::Inet, SockType::Stream)?;
//!     p.bind(s, BindTo::Port(1700))?;
//!     p.listen(s, 5)?;
//!     let (conn, _who) = p.accept(s)?;
//!     let msg = p.read(conn, 1024)?;
//!     p.write(conn, &msg)?;
//!     Ok(())
//! })?;
//!
//! let client = cluster.spawn_user("red", "client", Uid(1), |p| {
//!     let s = p.socket(Domain::Inet, SockType::Stream)?;
//!     p.connect_host(s, "green", 1700)?;
//!     p.write(s, b"hello")?;
//!     assert_eq!(p.read(s, 1024)?, b"hello");
//!     Ok(())
//! })?;
//!
//! let green = cluster.machine("green").unwrap();
//! let red = cluster.machine("red").unwrap();
//! assert_eq!(green.wait_exit(server), Some(dpm_meter::TermReason::Normal));
//! assert_eq!(red.wait_exit(client), Some(dpm_meter::TermReason::Normal));
//! cluster.shutdown();
//! # Ok::<(), dpm_simos::SysError>(())
//! ```

#![warn(missing_docs)]

pub mod backoff;
pub mod cluster;
pub mod error;
pub mod fs;
pub(crate) mod machine;
pub(crate) mod metering;
pub mod process;
pub mod socket;
pub mod syscall;

pub use backoff::{connect_backoff, Backoff};
pub use cluster::{Cluster, ClusterBuilder, ClusterConfig, CpuCosts, ProgramFn};
pub use error::{SysError, SysResult};
pub use fs::SimFs;
pub use machine::Machine;
pub use process::{Desc, Pid, ProcEntry, RunState, Sig, Uid};
pub use socket::{Domain, SockId, SockType};
pub use syscall::{BindTo, Fd, FlagSel, PidSel, Proc, SockSel};

// Re-export the vocabulary types users constantly need alongside.
pub use dpm_meter::{MeterFlags, SockName, TermReason};
