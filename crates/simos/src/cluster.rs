//! The simulated cluster: machines, network, programs, global time.
//!
//! A [`Cluster`] stands in for the paper's set of VAXen on a LAN. It
//! owns the hidden global clock, the host registry, the network
//! behaviour model, wire statistics, the *program registry* (the
//! simulation's "executable files"), and the machines themselves.

use crate::error::{SysError, SysResult};
use crate::machine::Machine;
use crate::process::{Pid, Uid};
use crate::syscall::Proc;
use dpm_simnet::{
    ClockSpec, DgramFault, Fate, FaultInjector, GlobalTime, HostId, HostRegistry, LatencyModel,
    NetConfig, NoFaults, WireStats,
};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual CPU cost, in microseconds, of the kernel's operations.
///
/// These drive the *virtual-time* results of the overhead experiments
/// (E1/E2): a metered system call costs `syscall_us + meter_event_us`,
/// plus `meter_flush_us` whenever the buffer is flushed. The defaults
/// are loosely scaled to a VAX-11/780 (a system call on the order of
/// 100–200 µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// Base cost of any system call.
    pub syscall_us: u64,
    /// Extra cost of generating one meter message.
    pub meter_event_us: u64,
    /// Extra cost of flushing the meter buffer to the filter.
    pub meter_flush_us: u64,
}

impl Default for CpuCosts {
    fn default() -> CpuCosts {
        CpuCosts {
            syscall_us: 150,
            meter_event_us: 20,
            meter_flush_us: 100,
        }
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Network behaviour.
    pub net: NetConfig,
    /// Seed for all randomness (latency, loss, clock skew defaults).
    pub seed: u64,
    /// Virtual CPU costs.
    pub costs: CpuCosts,
    /// Meter messages buffered in the kernel before a flush. 1 is
    /// equivalent to `M_IMMEDIATE` for every process. "The default is
    /// to buffer several messages so that the number of meter messages
    /// is considerably smaller than the number of messages sent by the
    /// metered process." (§4.1)
    pub meter_buffer_msgs: u32,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            net: NetConfig::lan(),
            seed: 42,
            costs: CpuCosts::default(),
            meter_buffer_msgs: 8,
        }
    }
}

/// A registered program body: the simulation's "executable".
///
/// The process's thread runs this function; returning `Ok(())` is a
/// normal exit, returning an error (in particular [`SysError::Killed`]
/// after a kill signal) terminates the process abnormally.
pub type ProgramFn = Arc<dyn Fn(Proc, Vec<String>) -> SysResult<()> + Send + Sync>;

/// Builder for a [`Cluster`].
///
/// # Example
///
/// ```
/// use dpm_simos::Cluster;
/// use dpm_simnet::NetConfig;
///
/// let cluster = Cluster::builder()
///     .net(NetConfig::ideal())
///     .seed(7)
///     .machine("red")
///     .machine("green")
///     .build();
/// assert_eq!(cluster.machines().len(), 2);
/// ```
#[derive(Default)]
pub struct ClusterBuilder {
    config: ClusterConfig,
    machines: Vec<(String, Option<ClockSpec>)>,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl ClusterBuilder {
    /// Sets the network configuration.
    pub fn net(mut self, net: NetConfig) -> ClusterBuilder {
        self.config.net = net;
        self
    }

    /// Sets the randomness seed.
    pub fn seed(mut self, seed: u64) -> ClusterBuilder {
        self.config.seed = seed;
        self
    }

    /// Sets the virtual CPU cost model.
    pub fn costs(mut self, costs: CpuCosts) -> ClusterBuilder {
        self.config.costs = costs;
        self
    }

    /// Sets the kernel meter-buffer threshold (messages per flush).
    ///
    /// # Panics
    ///
    /// Panics if `msgs` is zero; buffering at least one message is
    /// required (one means flush-every-event).
    pub fn meter_buffer(mut self, msgs: u32) -> ClusterBuilder {
        assert!(msgs > 0, "meter buffer must hold at least one message");
        self.config.meter_buffer_msgs = msgs;
        self
    }

    /// Installs a fault injector consulted by the delivery paths
    /// (datagram fate, stream delay, connection admission, meter-flush
    /// duplication). Without one the cluster uses
    /// [`NoFaults`] and behaves exactly as an
    /// un-instrumented build.
    pub fn fault_injector(mut self, injector: Arc<dyn FaultInjector>) -> ClusterBuilder {
        self.injector = Some(injector);
        self
    }

    /// Adds a machine with a default (seed-derived) clock: a boot
    /// offset up to two seconds and a skew up to ±200 ppm.
    pub fn machine(self, name: &str) -> ClusterBuilder {
        self.machine_entry(name, None)
    }

    /// Adds a machine with an explicit clock specification.
    pub fn machine_with_clock(self, name: &str, spec: ClockSpec) -> ClusterBuilder {
        self.machine_entry(name, Some(spec))
    }

    fn machine_entry(mut self, name: &str, spec: Option<ClockSpec>) -> ClusterBuilder {
        self.machines.push((name.to_owned(), spec));
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if no machines were added, if a machine name repeats, or
    /// if the network configuration is invalid.
    pub fn build(self) -> Arc<Cluster> {
        assert!(!self.machines.is_empty(), "a cluster needs machines");
        let global = Arc::new(GlobalTime::new());
        let mut registry = HostRegistry::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5f5f_5f5f);
        let latency = self.config.net.latency_model(self.config.seed);
        let cluster = Arc::new(Cluster {
            global: global.clone(),
            latency: Mutex::new(latency),
            stats: WireStats::new(),
            programs: RwLock::new(HashMap::new()),
            machines: RwLock::new(Vec::new()),
            registry: RwLock::new(HostRegistry::new()),
            next_pid: AtomicU32::new(2117),
            next_internal: AtomicU64::new(1),
            injector: self.injector.unwrap_or_else(|| Arc::new(NoFaults)),
            config: self.config,
        });
        let mut machines = Vec::new();
        for (name, spec) in &self.machines {
            let before = registry.len();
            let id = registry.register(name);
            assert_eq!(registry.len(), before + 1, "duplicate machine name {name}");
            let spec = spec.unwrap_or(ClockSpec {
                offset_us: rng.gen_range(0..2_000_000),
                skew_ppm: rng.gen_range(-200..=200),
            });
            machines.push(Machine::new(
                id,
                name.clone(),
                global.clone(),
                spec,
                &cluster,
            ));
        }
        *cluster.registry.write() = registry;
        *cluster.machines.write() = machines;
        cluster
    }
}

/// The simulated multi-machine environment.
pub struct Cluster {
    pub(crate) global: Arc<GlobalTime>,
    pub(crate) latency: Mutex<LatencyModel>,
    pub(crate) stats: WireStats,
    programs: RwLock<HashMap<String, ProgramFn>>,
    machines: RwLock<Vec<Arc<Machine>>>,
    registry: RwLock<HostRegistry>,
    next_pid: AtomicU32,
    next_internal: AtomicU64,
    pub(crate) injector: Arc<dyn FaultInjector>,
    pub(crate) config: ClusterConfig,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("machines", &self.machines.read().len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The hidden global clock (not observable by simulated programs;
    /// exposed for test harnesses and benches).
    pub fn global_time(&self) -> &Arc<GlobalTime> {
        &self.global
    }

    /// Wire-level statistics.
    pub fn wire_stats(&self) -> &WireStats {
        &self.stats
    }

    /// All machines, in registration order.
    pub fn machines(&self) -> Vec<Arc<Machine>> {
        self.machines.read().clone()
    }

    /// Looks up a machine by host id.
    pub fn machine_by_id(&self, id: HostId) -> Option<Arc<Machine>> {
        self.machines.read().get(id.0 as usize).cloned()
    }

    /// Looks up a machine by literal host name.
    pub fn machine(&self, name: &str) -> Option<Arc<Machine>> {
        let id = self.registry.read().lookup(name)?;
        self.machine_by_id(id)
    }

    /// Resolves a host name, as processes do when constructing socket
    /// names from a literal host name plus port (§3.5.4).
    ///
    /// # Errors
    ///
    /// Returns [`SysError::Enoent`] for an unknown host.
    pub fn resolve_host(&self, name: &str) -> SysResult<HostId> {
        self.registry.read().lookup(name).ok_or(SysError::Enoent)
    }

    /// The literal name of a host id.
    pub fn host_name(&self, id: HostId) -> Option<String> {
        self.registry.read().name(id).map(str::to_owned)
    }

    /// Registers a program under a name; the simulation's way of
    /// installing an executable. Program *files* on each machine's
    /// file system contain `program:<name>` and are created with
    /// [`Cluster::install_program_file`].
    pub fn register_program<F>(&self, name: &str, f: F)
    where
        F: Fn(Proc, Vec<String>) -> SysResult<()> + Send + Sync + 'static,
    {
        self.programs.write().insert(name.to_owned(), Arc::new(f));
    }

    /// Looks up a registered program.
    pub fn program(&self, name: &str) -> Option<ProgramFn> {
        self.programs.read().get(name).cloned()
    }

    /// Writes an executable file at `path` on `machine` referring to
    /// the registered program `program`. Returns `false` if the
    /// machine does not exist.
    pub fn install_program_file(&self, machine: &str, path: &str, program: &str) -> bool {
        match self.machine(machine) {
            Some(m) => {
                m.fs()
                    .write(path, format!("program:{program}").into_bytes());
                true
            }
            None => false,
        }
    }

    /// Allocates a cluster-unique pid.
    pub(crate) fn alloc_pid(&self) -> Pid {
        Pid(self.next_pid.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a cluster-unique internally-generated socket name id
    /// (for socketpairs and auto-bound UNIX-domain sockets).
    pub(crate) fn alloc_internal(&self) -> u64 {
        self.next_internal.fetch_add(1, Ordering::Relaxed)
    }

    /// Samples a one-way latency between two hosts.
    pub(crate) fn sample_latency(&self, src: HostId, dst: HostId) -> u64 {
        self.latency.lock().sample_us(src, dst)
    }

    /// Decides a datagram's fate between two hosts.
    pub(crate) fn datagram_fate(&self, src: HostId, dst: HostId) -> Fate {
        self.latency.lock().datagram_fate(src, dst)
    }

    /// The installed fault injector ([`NoFaults`] when none was set).
    pub fn fault_injector(&self) -> &Arc<dyn FaultInjector> {
        &self.injector
    }

    /// Resolves one datagram send into a list of delivery latencies:
    /// empty means the datagram is lost, two entries mean it was
    /// duplicated. The fault injector is consulted first; only a
    /// [`DgramFault::Pass`] falls through to the random latency model.
    pub(crate) fn datagram_deliveries(&self, src: HostId, dst: HostId, now_us: u64) -> Vec<u64> {
        match self.injector.dgram_fault(src, dst, now_us) {
            DgramFault::Drop => Vec::new(),
            DgramFault::Duplicate { extra_us } => {
                let latency = self.sample_latency(src, dst);
                // The duplicate trails the original by at least 1 µs so
                // the copies are distinguishable in delivery order.
                vec![latency, latency + extra_us.max(1)]
            }
            DgramFault::Delay { extra_us } => vec![self.sample_latency(src, dst) + extra_us],
            DgramFault::Pass => match self.datagram_fate(src, dst) {
                Fate::Deliver { latency_us } => vec![latency_us],
                Fate::Lost => Vec::new(),
            },
        }
    }

    /// Extra stream-segment delay injected between two hosts (a healed
    /// partition releases delayed bytes; streams stay reliable).
    pub(crate) fn stream_extra(&self, src: HostId, dst: HostId, now_us: u64) -> u64 {
        self.injector.stream_extra_us(src, dst, now_us)
    }

    /// Whether a new cross-machine connection is refused by an injected
    /// partition.
    pub(crate) fn connect_blocked(&self, src: HostId, dst: HostId, now_us: u64) -> bool {
        self.injector.connect_blocked(src, dst, now_us)
    }

    /// Whether a meter flush should be delivered twice (at-least-once
    /// retransmission).
    pub(crate) fn dup_meter_flush(&self, src: HostId, dst: HostId, now_us: u64) -> bool {
        self.injector.duplicate_meter_flush(src, dst, now_us)
    }

    /// Kills every process on every machine and joins their threads.
    /// Call at the end of a session for a clean shutdown; the `die`
    /// command of the controller does this for its own processes
    /// first.
    pub fn shutdown(&self) {
        for m in self.machines() {
            m.kill_all();
        }
        for m in self.machines() {
            m.join_all();
        }
    }

    /// Convenience for tests and benches: spawns a host-driven process
    /// on `machine` running `body`, already in the running state.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::Enoent`] if the machine does not exist.
    pub fn spawn_user<F>(
        self: &Arc<Cluster>,
        machine: &str,
        name: &str,
        uid: Uid,
        body: F,
    ) -> SysResult<Pid>
    where
        F: FnOnce(Proc) -> SysResult<()> + Send + 'static,
    {
        let m = self.machine(machine).ok_or(SysError::Enoent)?;
        Ok(m.spawn_fn(name, uid, None, true, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_creates_machines_with_ids_in_order() {
        let c = Cluster::builder()
            .net(NetConfig::ideal())
            .machine("red")
            .machine("green")
            .machine("blue")
            .build();
        assert_eq!(c.machines().len(), 3);
        assert_eq!(c.machine("green").unwrap().id(), HostId(1));
        assert_eq!(c.resolve_host("blue").unwrap(), HostId(2));
        assert_eq!(c.resolve_host("mauve"), Err(SysError::Enoent));
        assert_eq!(c.host_name(HostId(0)).unwrap(), "red");
    }

    #[test]
    #[should_panic(expected = "duplicate machine name")]
    fn duplicate_machine_names_panic() {
        let _ = Cluster::builder().machine("red").machine("red").build();
    }

    #[test]
    #[should_panic(expected = "needs machines")]
    fn empty_cluster_panics() {
        let _ = Cluster::builder().build();
    }

    #[test]
    fn program_registry_and_files() {
        let c = Cluster::builder().machine("red").build();
        c.register_program("hello", |_proc, _args| Ok(()));
        assert!(c.program("hello").is_some());
        assert!(c.program("other").is_none());
        assert!(c.install_program_file("red", "/bin/hello", "hello"));
        assert!(!c.install_program_file("nope", "/bin/hello", "hello"));
        let m = c.machine("red").unwrap();
        assert_eq!(m.fs().read_string("/bin/hello").unwrap(), "program:hello");
    }

    #[test]
    fn pids_are_unique_and_start_like_the_transcript() {
        let c = Cluster::builder().machine("red").build();
        let a = c.alloc_pid();
        let b = c.alloc_pid();
        assert_eq!(a, Pid(2117));
        assert_eq!(b, Pid(2118));
    }

    #[test]
    fn explicit_clock_spec_is_respected() {
        let spec = ClockSpec {
            offset_us: 5_000_000,
            skew_ppm: 0,
        };
        let c = Cluster::builder().machine_with_clock("red", spec).build();
        let m = c.machine("red").unwrap();
        assert_eq!(m.clock().spec(), spec);
        assert_eq!(m.clock().now_ms(), 5000);
    }
}
