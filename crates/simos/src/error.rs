//! System-call error numbers.
//!
//! The simulated kernel reports failures with the 4.2BSD error names
//! the paper uses: `setmeter(2)` fails with `EPERM` when "the process
//! specified does not belong to the caller" and `ESRCH` when "the
//! socket does not exist" (Appendix C).

use std::fmt;

/// Result type of every simulated system call.
pub type SysResult<T> = Result<T, SysError>;

/// A 4.2BSD-flavoured system-call error.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SysError {
    /// Operation not permitted (caller lacks the required privilege).
    Eperm,
    /// No such process, or (per the `setmeter(2)` manual page) no such
    /// socket.
    Esrch,
    /// Bad file descriptor.
    Ebadf,
    /// Invalid argument.
    Einval,
    /// Address already in use.
    Eaddrinuse,
    /// Connection refused: nothing listening, or the pending queue is
    /// full.
    Econnrefused,
    /// Socket is not connected.
    Enotconn,
    /// Socket is already connected.
    Eisconn,
    /// Broken pipe: write on a connection whose peer has gone away.
    Epipe,
    /// No such file or directory.
    Enoent,
    /// Exec format error: the named file is not a runnable program.
    Enoexec,
    /// Operation does not fit the socket's type or state.
    Eopnotsupp,
    /// Message too long for a datagram.
    Emsgsize,
    /// No buffer space: the destination datagram queue is full.
    Enobufs,
    /// The calling process was killed; the "error" unwinds the program
    /// body so the thread can exit. Not a real 4.2BSD errno — the real
    /// kernel destroys the process outright, which a library cannot.
    Killed,
}

impl SysError {
    /// The conventional errno name, e.g. `"EPERM"`.
    pub fn name(&self) -> &'static str {
        match self {
            SysError::Eperm => "EPERM",
            SysError::Esrch => "ESRCH",
            SysError::Ebadf => "EBADF",
            SysError::Einval => "EINVAL",
            SysError::Eaddrinuse => "EADDRINUSE",
            SysError::Econnrefused => "ECONNREFUSED",
            SysError::Enotconn => "ENOTCONN",
            SysError::Eisconn => "EISCONN",
            SysError::Epipe => "EPIPE",
            SysError::Enoent => "ENOENT",
            SysError::Enoexec => "ENOEXEC",
            SysError::Eopnotsupp => "EOPNOTSUPP",
            SysError::Emsgsize => "EMSGSIZE",
            SysError::Enobufs => "ENOBUFS",
            SysError::Killed => "KILLED",
        }
    }
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            SysError::Eperm => "operation not permitted",
            SysError::Esrch => "no such process",
            SysError::Ebadf => "bad file descriptor",
            SysError::Einval => "invalid argument",
            SysError::Eaddrinuse => "address already in use",
            SysError::Econnrefused => "connection refused",
            SysError::Enotconn => "socket is not connected",
            SysError::Eisconn => "socket is already connected",
            SysError::Epipe => "broken pipe",
            SysError::Enoent => "no such file or directory",
            SysError::Enoexec => "exec format error",
            SysError::Eopnotsupp => "operation not supported on socket",
            SysError::Emsgsize => "message too long",
            SysError::Enobufs => "no buffer space available",
            SysError::Killed => "process killed",
        };
        write!(f, "{} ({})", what, self.name())
    }
}

impl std::error::Error for SysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_messages() {
        assert_eq!(SysError::Eperm.name(), "EPERM");
        assert_eq!(
            SysError::Econnrefused.to_string(),
            "connection refused (ECONNREFUSED)"
        );
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SysError>();
    }
}
