//! Criterion benchmark E4b: the binary log store against the flat
//! text log — ingest throughput at the filter's sink, and point-query
//! latency at read time (`by_proc` via the per-segment postings vs
//! re-parsing the whole text log, the paper's §3.3 analysis path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_filter::{FilterEngine, LogRecord, DEFAULT_BATCH_BYTES};
use dpm_logstore::{LogStore, MemBackend, ProcId, StoreConfig};
use dpm_meter::{trace_type, MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;

const RECORDS: usize = 4096;
const PIDS: u32 = 64;

/// A wire chunk of `records` send records spread over `PIDS` distinct
/// processes, so the point-query benchmark has a real key to chase.
fn wire_chunk(records: usize) -> Vec<u8> {
    let mut wire = Vec::new();
    for i in 0..records {
        let msg = MeterMsg {
            header: MeterHeader {
                size: 0,
                machine: 3,
                cpu_time: i as u32,
                seq: 0,
                proc_time: 20,
                trace_type: trace_type::SEND,
            },
            body: MeterBody::Send(MeterSendMsg {
                pid: 1000 + (i as u32 % PIDS),
                pc: 9,
                sock: 4,
                msg_length: 612,
                dest_name: Some(SockName::inet(1, 53)),
            }),
        };
        msg.encode_into(&mut wire);
    }
    wire
}

/// Ingest: run the same wire stream through the filter engine into
/// (a) the text sink discipline the shard workers use — render each
/// kept record, batch to [`DEFAULT_BATCH_BYTES`], append to a backend
/// file — and (b) the store's group-commit segment writer.
fn bench_ingest(c: &mut Criterion) {
    let wire = wire_chunk(RECORDS);
    let mut g = c.benchmark_group("logstore_ingest");
    g.throughput(Throughput::Elements(RECORDS as u64));

    g.bench_with_input(
        BenchmarkId::from_parameter("text_sink"),
        &wire,
        |b, wire| {
            b.iter(|| {
                let backend = MemBackend::new();
                let mut engine = FilterEngine::standard();
                let mut batch = String::new();
                let mut kept = 0usize;
                engine.feed_into(wire, &mut |rec| {
                    writeln!(batch, "{rec}").expect("write to String");
                    if batch.len() >= DEFAULT_BATCH_BYTES {
                        dpm_logstore::Backend::append(&backend, "/log.f1", batch.as_bytes());
                        batch.clear();
                    }
                    kept += 1;
                });
                if !batch.is_empty() {
                    dpm_logstore::Backend::append(&backend, "/log.f1", batch.as_bytes());
                }
                black_box(kept)
            });
        },
    );

    g.bench_with_input(
        BenchmarkId::from_parameter("store_sink"),
        &wire,
        |b, wire| {
            b.iter(|| {
                let store =
                    LogStore::open(Arc::new(MemBackend::new()), "/log", StoreConfig::default());
                let mut engine = FilterEngine::standard();
                let mut w = store.writer(0);
                let mut kept = 0usize;
                engine.feed_records(wire, &mut |view, _rec| {
                    w.append(view.bytes());
                    kept += 1;
                });
                w.flush();
                black_box(kept)
            });
        },
    );
    g.finish();
}

/// Point query: all records of one process. The store jumps through
/// the per-segment `(machine, pid)` postings; the text path must
/// re-parse the entire log, which is what every analysis pass over a
/// flat text file pays.
fn bench_point_query(c: &mut Criterion) {
    let wire = wire_chunk(RECORDS);

    // Build both representations once.
    let store = LogStore::open(Arc::new(MemBackend::new()), "/log", StoreConfig::default());
    let mut engine = FilterEngine::standard();
    let mut text = String::new();
    {
        let mut w = store.writer(0);
        engine.feed_records(&wire, &mut |view, rec| {
            w.append(view.bytes());
            writeln!(text, "{rec}").expect("write to String");
        });
        w.flush();
    }
    let reader = store.reader();
    let target = ProcId {
        machine: 3,
        pid: 1000,
    };

    let mut g = c.benchmark_group("logstore_point_query");
    g.throughput(Throughput::Elements((RECORDS as u64) / PIDS as u64));

    g.bench_function(BenchmarkId::from_parameter("store_by_proc"), |b| {
        b.iter(|| black_box(reader.by_proc(target).len()));
    });

    g.bench_function(BenchmarkId::from_parameter("text_full_scan"), |b| {
        b.iter(|| {
            let hits = LogRecord::parse_log(&text)
                .into_iter()
                .filter(|r| r.get("pid") == Some("1000"))
                .count();
            black_box(hits)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ingest, bench_point_query);
criterion_main!(benches);
