//! Criterion benchmark: meter message encode/decode (the kernel's
//! per-event cost and the filter's per-record parse cost — Appendix A
//! wire formats).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpm_meter::{
    trace_type, MeterAccept, MeterBody, MeterDecoder, MeterHeader, MeterMsg, MeterSendMsg, SockName,
};
use std::hint::black_box;

fn send_msg() -> MeterMsg {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine: 5,
            cpu_time: 123_456,
            seq: 0,
            proc_time: 320,
            trace_type: trace_type::SEND,
        },
        body: MeterBody::Send(MeterSendMsg {
            pid: 2120,
            pc: 42,
            sock: 4,
            msg_length: 612,
            dest_name: Some(SockName::inet(1, 1701)),
        }),
    }
}

fn accept_msg() -> MeterMsg {
    MeterMsg {
        header: MeterHeader {
            size: 0,
            machine: 5,
            cpu_time: 1,
            seq: 0,
            proc_time: 0,
            trace_type: trace_type::ACCEPT,
        },
        body: MeterBody::Accept(MeterAccept {
            pid: 2117,
            pc: 7,
            sock: 3,
            new_sock: 9,
            sock_name: Some(SockName::inet(1, 80)),
            peer_name: Some(SockName::unix("/tmp/cli")),
        }),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("meter_codec");
    let send = send_msg();
    let accept = accept_msg();
    let send_wire = send.encode();
    let accept_wire = accept.encode();
    g.throughput(Throughput::Bytes(send_wire.len() as u64));
    g.bench_function("encode_send", |b| {
        b.iter(|| black_box(send.encode()));
    });
    g.bench_function("decode_send", |b| {
        b.iter(|| MeterMsg::decode(black_box(&send_wire)).expect("decode"));
    });
    g.throughput(Throughput::Bytes(accept_wire.len() as u64));
    g.bench_function("encode_accept", |b| {
        b.iter(|| black_box(accept.encode()));
    });
    g.bench_function("decode_accept", |b| {
        b.iter(|| MeterMsg::decode(black_box(&accept_wire)).expect("decode"));
    });
    // A buffered batch, as the kernel flushes them.
    let mut batch = Vec::new();
    for _ in 0..8 {
        send.encode_into(&mut batch);
    }
    g.throughput(Throughput::Bytes(batch.len() as u64));
    g.bench_function("decode_batch_of_8", |b| {
        b.iter_batched(
            || batch.clone(),
            |wire| MeterMsg::decode_all(&wire).expect("decode all"),
            BatchSize::SmallInput,
        );
    });
    // The borrowing path: walk the same batch as `MeterRecord` views
    // without materializing owned `MeterMsg` values.
    g.bench_function("scan_batch_of_8_borrowed", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for rec in MeterDecoder::new(black_box(&batch)) {
                bytes += rec.expect("valid record").len();
            }
            black_box(bytes)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
