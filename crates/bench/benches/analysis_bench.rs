//! Criterion benchmark E6: analysis construction (parse → pairing →
//! happens-before) as trace size grows (§3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_analysis::{HappensBefore, Pairing, Trace};
use dpm_bench::synthetic_log;
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    for pairs in [250usize, 1_000, 4_000] {
        let log = synthetic_log(pairs);
        let trace = Trace::parse(&log);
        let pairing = Pairing::analyze(&trace);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::new("parse", pairs), &log, |b, log| {
            b.iter(|| black_box(Trace::parse(log)).len());
        });
        g.bench_with_input(BenchmarkId::new("pairing", pairs), &trace, |b, trace| {
            b.iter(|| black_box(Pairing::analyze(trace)).messages.len());
        });
        g.bench_with_input(
            BenchmarkId::new("happens_before", pairs),
            &(&trace, &pairing),
            |b, (trace, pairing)| {
                b.iter(|| black_box(HappensBefore::build(trace, pairing)).lamport(0));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
