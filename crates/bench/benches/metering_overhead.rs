//! Criterion benchmark E1 (real-time flavour): one full metered
//! workload run, unmetered vs fully metered. Virtual-time numbers —
//! the paper-faithful metric — come from
//! `cargo run -p dpm-bench --bin experiments`; this bench tracks the
//! real cost of the simulation machinery itself so regressions in the
//! kernel hot path show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_bench::run_metered;
use dpm_meter::MeterFlags;
use std::hint::black_box;

fn bench_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("metered_run");
    // Whole-simulation runs are expensive; keep samples small.
    g.sample_size(10);
    for (label, flags) in [
        ("unmetered", MeterFlags::NONE),
        ("all_flags", MeterFlags::ALL),
        ("all_immediate", MeterFlags::ALL | MeterFlags::IMMEDIATE),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &flags, |b, &flags| {
            b.iter(|| black_box(run_metered(flags, 8, 50, 64)).cpu_us);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
