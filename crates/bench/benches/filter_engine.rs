//! Criterion benchmark E3: filter selection/reduction throughput as a
//! function of the template set (§3.4), plus the reassembly hot path
//! under corruption (the zero-copy cursor engine vs the seed's
//! shift-the-buffer reassembly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_filter::{Descriptions, FilterEngine, Rules};
use dpm_meter::{trace_type, MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName, HEADER_LEN};
use std::hint::black_box;

fn wire_chunk(records: usize) -> Vec<u8> {
    let msg = MeterMsg {
        header: MeterHeader {
            size: 0,
            machine: 3,
            cpu_time: 5_000,
            seq: 0,
            proc_time: 20,
            trace_type: trace_type::SEND,
        },
        body: MeterBody::Send(MeterSendMsg {
            pid: 1234,
            pc: 9,
            sock: 4,
            msg_length: 612,
            dest_name: Some(SockName::inet(1, 53)),
        }),
    };
    let mut wire = Vec::new();
    for _ in 0..records {
        msg.encode_into(&mut wire);
    }
    wire
}

/// A stream with a run of unframeable bytes before every record —
/// the "corrupt meter connection" worst case that drives the
/// resynchronization path.
fn garbage_wire(records: usize, run: usize) -> Vec<u8> {
    let clean = wire_chunk(1);
    let mut wire = Vec::new();
    for _ in 0..records {
        wire.extend(std::iter::repeat_n(0u8, run));
        wire.extend_from_slice(&clean);
    }
    wire
}

/// The seed's reassembly loop, reproduced verbatim as a baseline:
/// `Vec::remove(0)` per garbage byte and `drain().collect()` per
/// record (one heap allocation each). Selection/reduction is the same
/// `process_record`, so the comparison isolates the reassembly path.
struct ShiftingReassembly {
    engine: FilterEngine,
    buf: Vec<u8>,
}

impl ShiftingReassembly {
    fn feed(&mut self, data: &[u8]) -> usize {
        self.buf.extend_from_slice(data);
        let mut kept = 0;
        loop {
            if self.buf.len() < HEADER_LEN {
                break;
            }
            let size =
                u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if !(HEADER_LEN..=4096).contains(&size) {
                self.buf.remove(0);
                continue;
            }
            if self.buf.len() < size {
                break;
            }
            let record: Vec<u8> = self.buf.drain(..size).collect();
            if self.engine.process_record(&record).is_some() {
                kept += 1;
            }
        }
        kept
    }
}

fn bench_garbage(c: &mut Criterion) {
    let records = 256;
    // One-third garbage by volume, in 32-byte runs.
    let wire = garbage_wire(records, 32);
    let mut g = c.benchmark_group("filter_reassembly");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_with_input(
        BenchmarkId::from_parameter("garbage_heavy_cursor"),
        &wire,
        |b, wire| {
            let mut engine = FilterEngine::standard();
            b.iter(|| {
                let mut kept = 0usize;
                engine.feed_into(wire, &mut |_rec| kept += 1);
                black_box(kept)
            });
        },
    );
    g.bench_with_input(
        BenchmarkId::from_parameter("garbage_heavy_seed_shift"),
        &wire,
        |b, wire| {
            let mut seed = ShiftingReassembly {
                engine: FilterEngine::standard(),
                buf: Vec::new(),
            };
            b.iter(|| black_box(seed.feed(wire)));
        },
    );
    // Clean stream, delivered in socket-sized chunks: the steady
    // state where the cursor walk touches each byte exactly once.
    let clean = wire_chunk(records);
    g.throughput(Throughput::Bytes(clean.len() as u64));
    g.bench_with_input(
        BenchmarkId::from_parameter("clean_chunked_cursor"),
        &clean,
        |b, clean| {
            let mut engine = FilterEngine::standard();
            b.iter(|| {
                let mut kept = 0usize;
                for chunk in clean.chunks(1024) {
                    engine.feed_into(chunk, &mut |_rec| kept += 1);
                }
                black_box(kept)
            });
        },
    );
    g.finish();
}

fn bench_filter(c: &mut Criterion) {
    let records = 256;
    let wire = wire_chunk(records);
    let cases: Vec<(&str, String)> = vec![
        ("keep_all", String::new()),
        ("one_simple", "machine=3, cpuTime<10000\n".into()),
        (
            "fig_3_4_wildcards",
            "machine=#*, type=1, pid=1*, size>=512\n".into(),
        ),
        ("reject_all", "machine=99\n".into()),
        (
            "sixteen_rules",
            (0..16).map(|i| format!("machine={}\n", 50 + i)).collect(),
        ),
    ];
    let mut g = c.benchmark_group("filter_engine");
    g.throughput(Throughput::Elements(records as u64));
    for (label, rules) in cases {
        let desc = Descriptions::standard();
        let rules = Rules::parse(&rules).expect("rules");
        g.bench_with_input(BenchmarkId::from_parameter(label), &wire, |b, wire| {
            let mut engine = FilterEngine::new(desc.clone(), rules.clone());
            b.iter(|| black_box(engine.feed(wire)).len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_filter, bench_garbage);
criterion_main!(benches);
