//! Criterion benchmark E3: filter selection/reduction throughput as a
//! function of the template set (§3.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpm_filter::{Descriptions, FilterEngine, Rules};
use dpm_meter::{trace_type, MeterBody, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use std::hint::black_box;

fn wire_chunk(records: usize) -> Vec<u8> {
    let msg = MeterMsg {
        header: MeterHeader {
            size: 0,
            machine: 3,
            cpu_time: 5_000,
            proc_time: 20,
            trace_type: trace_type::SEND,
        },
        body: MeterBody::Send(MeterSendMsg {
            pid: 1234,
            pc: 9,
            sock: 4,
            msg_length: 612,
            dest_name: Some(SockName::inet(1, 53)),
        }),
    };
    let mut wire = Vec::new();
    for _ in 0..records {
        msg.encode_into(&mut wire);
    }
    wire
}

fn bench_filter(c: &mut Criterion) {
    let records = 256;
    let wire = wire_chunk(records);
    let cases: Vec<(&str, String)> = vec![
        ("keep_all", String::new()),
        ("one_simple", "machine=3, cpuTime<10000\n".into()),
        (
            "fig_3_4_wildcards",
            "machine=#*, type=1, pid=1*, size>=512\n".into(),
        ),
        ("reject_all", "machine=99\n".into()),
        (
            "sixteen_rules",
            (0..16).map(|i| format!("machine={}\n", 50 + i)).collect(),
        ),
    ];
    let mut g = c.benchmark_group("filter_engine");
    g.throughput(Throughput::Elements(records as u64));
    for (label, rules) in cases {
        let desc = Descriptions::standard();
        let rules = Rules::parse(&rules).expect("rules");
        g.bench_with_input(BenchmarkId::from_parameter(label), &wire, |b, wire| {
            let mut engine = FilterEngine::new(desc.clone(), rules.clone());
            b.iter(|| black_box(engine.feed(wire)).len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
