//! The evaluation harness: regenerates every experiment of
//! `DESIGN.md`'s table (E1–E7) plus the Appendix-A record-size table.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin experiments
//! ```
//!
//! All monitored-system numbers are in deterministic virtual time;
//! `EXPERIMENTS.md` records a reference run next to the corresponding
//! claim in the paper.

use dpm_bench::{run_metered, synthetic_log, two_machine_cluster, U};
use dpm_filter::{Descriptions, FilterEngine, Rules};
use dpm_meter::{trace_type, MeterBody, MeterFlags, MeterHeader, MeterMsg, MeterSendMsg, SockName};
use dpm_meterd::{read_frame, rpc_call, start_meterdaemons, Reply, Request, RpcStatus};
use dpm_simnet::NetConfig;
use dpm_simos::{BindTo, Cluster, Domain, SockType, SysResult};
use std::time::Instant;

fn main() {
    appendix_a_table();
    e1_metering_overhead();
    e2_buffering();
    e3_filter_throughput();
    e4_daemon_rpc();
    e5_ipc();
    e6_analysis_scaling();
    e7_trace_volume();
}

fn banner(s: &str) {
    println!("\n==== {s} {}", "=".repeat(66usize.saturating_sub(s.len())));
}

/// Appendix A as a table: encoded size of every meter record type.
fn appendix_a_table() {
    banner("Appendix A: meter message formats (encoded sizes)");
    use dpm_meter::*;
    let name = Some(SockName::inet(1, 2));
    let msgs: Vec<(&str, MeterBody)> = vec![
        (
            "send",
            MeterBody::Send(MeterSendMsg {
                pid: 1,
                pc: 1,
                sock: 1,
                msg_length: 1,
                dest_name: name.clone(),
            }),
        ),
        (
            "receivecall",
            MeterBody::RecvCall(MeterRecvCall {
                pid: 1,
                pc: 1,
                sock: 1,
            }),
        ),
        (
            "receive",
            MeterBody::Recv(MeterRecvMsg {
                pid: 1,
                pc: 1,
                sock: 1,
                msg_length: 1,
                source_name: name.clone(),
            }),
        ),
        (
            "socket",
            MeterBody::SockCrt(MeterSockCrt {
                pid: 1,
                pc: 1,
                sock: 1,
                domain: 2,
                sock_type: 1,
                protocol: 0,
            }),
        ),
        (
            "dup",
            MeterBody::Dup(MeterDup {
                pid: 1,
                pc: 1,
                sock: 1,
                new_sock: 1,
            }),
        ),
        (
            "destsocket",
            MeterBody::DestSock(MeterDestSock {
                pid: 1,
                pc: 1,
                sock: 1,
            }),
        ),
        (
            "fork",
            MeterBody::Fork(MeterFork {
                pid: 1,
                pc: 1,
                new_pid: 2,
            }),
        ),
        (
            "accept",
            MeterBody::Accept(MeterAccept {
                pid: 1,
                pc: 1,
                sock: 1,
                new_sock: 2,
                sock_name: name.clone(),
                peer_name: name.clone(),
            }),
        ),
        (
            "connect",
            MeterBody::Connect(MeterConnect {
                pid: 1,
                pc: 1,
                sock: 1,
                sock_name: name.clone(),
                peer_name: name,
            }),
        ),
        (
            "termproc",
            MeterBody::TermProc(MeterTermProc {
                pid: 1,
                pc: 1,
                reason: TermReason::Normal,
            }),
        ),
    ];
    println!(
        "{:<14} {:>6} {:>6} {:>6}",
        "event", "type", "header", "total"
    );
    for (n, body) in msgs {
        let msg = MeterMsg {
            header: MeterHeader::default(),
            body,
        };
        let bytes = msg.encode();
        println!(
            "{:<14} {:>6} {:>6} {:>6}",
            n,
            msg.body.trace_type(),
            dpm_meter::msg::HEADER_LEN,
            bytes.len()
        );
    }
}

/// E1 (§2.2): the degradation metering causes should be small.
fn e1_metering_overhead() {
    banner("E1: metering overhead (virtual CPU of the metered process)");
    let rounds = 300;
    let base = run_metered(MeterFlags::NONE, 8, rounds, 64);
    println!(
        "{:<26} {:>12} {:>12} {:>10} {:>12}",
        "flags", "cpu_us", "wall_us", "overhead", "meter_bytes"
    );
    let pct = |cpu: u64| 100.0 * (cpu as f64 - base.cpu_us as f64) / base.cpu_us as f64;
    println!(
        "{:<26} {:>12} {:>12} {:>9.1}% {:>12}",
        "none", base.cpu_us, base.wall_us, 0.0, base.meter_bytes
    );
    for (label, flags) in [
        ("send only", MeterFlags::SEND),
        (
            "send+receive",
            MeterFlags::SEND | MeterFlags::RECEIVE | MeterFlags::RECEIVECALL,
        ),
        ("all", MeterFlags::ALL),
        ("all + immediate", MeterFlags::ALL | MeterFlags::IMMEDIATE),
    ] {
        let r = run_metered(flags, 8, rounds, 64);
        println!(
            "{:<26} {:>12} {:>12} {:>9.1}% {:>12}",
            label,
            r.cpu_us,
            r.wall_us,
            pct(r.cpu_us),
            r.meter_bytes
        );
    }
}

/// E2 (§4.1): buffering makes the number of meter messages
/// "considerably smaller" than the number of events.
fn e2_buffering() {
    banner("E2: kernel meter-buffer sweep (all flags, 300 rounds)");
    println!(
        "{:<10} {:>13} {:>12} {:>12} {:>12}",
        "buffer", "meter_frames", "meter_bytes", "events", "cpu_us"
    );
    for buffer in [1u32, 2, 4, 8, 16, 32] {
        let r = run_metered(MeterFlags::ALL, buffer, 300, 64);
        println!(
            "{:<10} {:>13} {:>12} {:>12} {:>12}",
            buffer,
            r.meter_frames,
            r.meter_bytes,
            r.messages.len(),
            r.cpu_us
        );
    }
}

/// E3 (§3.4): filter selection throughput vs. rule-set size.
fn e3_filter_throughput() {
    banner("E3: filter selection throughput (real time, 100k records)");
    let record = MeterMsg {
        header: MeterHeader {
            size: 0,
            machine: 3,
            cpu_time: 5_000,
            seq: 0,
            proc_time: 20,
            trace_type: trace_type::SEND,
        },
        body: MeterBody::Send(MeterSendMsg {
            pid: 1234,
            pc: 9,
            sock: 4,
            msg_length: 612,
            dest_name: Some(SockName::inet(1, 53)),
        }),
    }
    .encode();
    let n = 100_000;
    let mut wire = Vec::with_capacity(record.len() * 64);
    for _ in 0..64 {
        wire.extend_from_slice(&record);
    }
    let rule_sets: Vec<(&str, String)> = vec![
        ("no rules", String::new()),
        ("1 simple", "machine=3, cpuTime<10000\n".into()),
        (
            "4 rules",
            "machine=9\nmachine=8\ntype=2\nmachine=3, type=1, pid=1*, size>=512\n".into(),
        ),
        (
            "16 rules",
            (0..15)
                .map(|i| format!("machine={}\n", 100 + i))
                .collect::<String>()
                + "machine=3, pid=#*, size>=512\n",
        ),
    ];
    println!(
        "{:<12} {:>10} {:>12} {:>10}",
        "rules", "kept", "records/s", "ms total"
    );
    for (label, rules) in rule_sets {
        let mut engine = FilterEngine::new(
            Descriptions::standard(),
            Rules::parse(&rules).expect("rules parse"),
        );
        let start = Instant::now();
        let mut kept = 0usize;
        let mut fed = 0usize;
        while fed < n {
            kept += engine.feed(&wire).len();
            fed += 64;
        }
        let dt = start.elapsed();
        println!(
            "{:<12} {:>10} {:>12.0} {:>10.1}",
            label,
            kept,
            fed as f64 / dt.as_secs_f64(),
            dt.as_secs_f64() * 1000.0
        );
    }
}

/// E4 (§3.5.1): temporary controller↔daemon connections do not add
/// significant overhead compared with a long-lived connection.
fn e4_daemon_rpc() {
    banner("E4: controller/daemon RPC — temporary vs persistent connection");
    let cluster = Cluster::builder()
        .net(NetConfig::lan())
        .seed(9)
        .machine("ctl")
        .machine("remote")
        .build();
    start_meterdaemons(&cluster);
    // A persistent-connection echo peer for the baseline.
    cluster
        .spawn_user("remote", "echo-server", U, |p| {
            let l = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(l, BindTo::Port(7000))?;
            p.listen(l, 4)?;
            let (conn, _) = p.accept(l)?;
            while let Some(frame) = read_frame(&p, conn)? {
                let req = Request::decode(&frame).map_err(|_| dpm_simos::SysError::Einval)?;
                let _ = req;
                p.write(
                    conn,
                    &Reply::Ack {
                        status: RpcStatus::Ok,
                    }
                    .encode(),
                )?;
            }
            Ok(())
        })
        .expect("echo server");

    let exchanges = 100u32;
    let results = std::sync::Arc::new(parking_lot::Mutex::new(Vec::<(String, u64)>::new()));
    let out = results.clone();
    let driver = cluster
        .spawn_user("ctl", "driver", U, move |p| -> SysResult<()> {
            // Temporary connection per exchange (the daemon protocol).
            let t0 = p.time_ms();
            for _ in 0..exchanges {
                let _ = rpc_call(
                    &p,
                    "remote",
                    &Request::GetFile {
                        path: "/none".into(),
                    },
                )?;
            }
            let temp_ms = (p.time_ms() - t0) as u64;
            out.lock()
                .push(("temporary (per exchange)".into(), temp_ms));

            // Persistent connection baseline.
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.connect_host(s, "remote", 7000)?;
            let t0 = p.time_ms();
            for _ in 0..exchanges {
                p.write(
                    s,
                    &Request::GetFile {
                        path: "/none".into(),
                    }
                    .encode(),
                )?;
                let _ = read_frame(&p, s)?;
            }
            let pers_ms = (p.time_ms() - t0) as u64;
            out.lock().push(("persistent (one stream)".into(), pers_ms));
            p.close(s)?;
            Ok(())
        })
        .expect("driver");
    cluster.machine("ctl").unwrap().wait_exit(driver);
    println!("{:<26} {:>14} {:>14}", "mode", "total_ms", "ms/exchange");
    for (label, ms) in results.lock().iter() {
        println!(
            "{:<26} {:>14} {:>14.2}",
            label,
            ms,
            *ms as f64 / exchanges as f64
        );
    }
    cluster.shutdown();
}

/// E5 (§3.1): datagram vs stream IPC across machines.
fn e5_ipc() {
    banner("E5: datagram vs stream IPC (virtual time, LAN profile)");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>14} {:>8}",
        "kind", "size", "msgs", "wall_ms", "KB/s(virtual)", "lost"
    );
    for &size in &[16usize, 256, 4096] {
        for kind in ["stream", "datagram"] {
            let cluster = two_machine_cluster(NetConfig::lan(), 13, 8);
            let msgs = 200u32;
            let t0 = cluster.global_time().now_us();
            let w0 = cluster.wire_stats().snapshot();
            let rx = cluster
                .spawn_user("mon", "rx", U, move |p| match kind {
                    "stream" => {
                        let l = p.socket(Domain::Inet, SockType::Stream)?;
                        p.bind(l, BindTo::Port(7100))?;
                        p.listen(l, 1)?;
                        let (conn, _) = p.accept(l)?;
                        let mut got = 0usize;
                        let want = size * msgs as usize;
                        while got < want {
                            let d = p.read(conn, 65536)?;
                            if d.is_empty() {
                                break;
                            }
                            got += d.len();
                        }
                        Ok(())
                    }
                    _ => {
                        let s = p.socket(Domain::Inet, SockType::Datagram)?;
                        p.bind(s, BindTo::Port(7100))?;
                        // Stop when the sender's "done" marker arrives.
                        loop {
                            let (d, _) = p.recvfrom(s, 65536)?;
                            if d.len() == 1 {
                                break;
                            }
                        }
                        Ok(())
                    }
                })
                .expect("rx");
            let tx = cluster
                .spawn_user("work", "tx", U, move |p| match kind {
                    "stream" => {
                        let s = dpm_workloads::util::connect_retry(&p, "mon", 7100, 300)?;
                        let payload = vec![1u8; size];
                        for _ in 0..msgs {
                            p.write(s, &payload)?;
                        }
                        p.close(s)?;
                        Ok(())
                    }
                    _ => {
                        let s = p.socket(Domain::Inet, SockType::Datagram)?;
                        let host = p.cluster().resolve_host("mon")?;
                        let dest = SockName::Inet {
                            host: host.0,
                            port: 7100,
                        };
                        let payload = vec![1u8; size];
                        for _ in 0..msgs {
                            p.sendto(s, &payload, &dest)?;
                        }
                        // A burst of tiny end markers; at least one
                        // will survive the loss model.
                        for _ in 0..50 {
                            p.sendto(s, &[0u8], &dest)?;
                        }
                        Ok(())
                    }
                })
                .expect("tx");
            cluster.machine("work").unwrap().wait_exit(tx);
            cluster.machine("mon").unwrap().wait_exit(rx);
            let wall_us = cluster.global_time().now_us() - t0;
            let lost = cluster.wire_stats().snapshot().since(&w0).datagrams_lost;
            let kb = (size as f64 * msgs as f64) / 1024.0;
            println!(
                "{:<10} {:>8} {:>10} {:>12.1} {:>14.0} {:>8}",
                kind,
                size,
                msgs,
                wall_us as f64 / 1000.0,
                kb / (wall_us as f64 / 1_000_000.0),
                lost
            );
            cluster.shutdown();
        }
    }
}

/// E6 (§3.3): analysis construction cost vs trace size (real time).
fn e6_analysis_scaling() {
    banner("E6: analysis scaling (real time)");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}",
        "events", "matched", "parse_ms", "pair_ms", "hb_ms"
    );
    for pairs in [500usize, 5_000, 25_000] {
        let log = synthetic_log(pairs);
        let t0 = Instant::now();
        let trace = dpm_analysis::Trace::parse(&log);
        let parse_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t0 = Instant::now();
        let pairing = dpm_analysis::Pairing::analyze(&trace);
        let pair_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t0 = Instant::now();
        let hb = dpm_analysis::HappensBefore::build(&trace, &pairing);
        let hb_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let _ = hb.lamport(0);
        println!(
            "{:<10} {:>10} {:>12.2} {:>12.2} {:>12.2}",
            trace.len(),
            pairing.messages.len(),
            parse_ms,
            pair_ms,
            hb_ms
        );
    }
}

/// E7 (§3.4): trace reduction by selection rules and `#` discards.
fn e7_trace_volume() {
    banner("E7: trace volume under selection and reduction");
    // Capture one raw meter stream from the standard workload.
    let r = run_metered(MeterFlags::ALL, 8, 200, 64);
    let mut wire = Vec::new();
    for m in &r.messages {
        m.encode_into(&mut wire);
    }
    println!(
        "raw meter stream: {} records, {} bytes",
        r.messages.len(),
        wire.len()
    );
    println!("{:<34} {:>8} {:>12}", "template", "kept", "log_bytes");
    for (label, rules) in [
        ("keep everything", ""),
        ("sends only (type=1)", "type=1\n"),
        ("sends, discard pc+procTime", "type=1, pc=#*, procTime=#*\n"),
        ("large sends only (size>=64)", "type=1, size>=64\n"),
    ] {
        let mut engine = FilterEngine::new(
            Descriptions::standard(),
            Rules::parse(rules).expect("parse"),
        );
        let lines = engine.feed(&wire);
        let bytes: usize = lines.iter().map(|l| l.len() + 1).sum();
        println!("{:<34} {:>8} {:>12}", label, lines.len(), bytes);
    }
}
