//! Shared harness for the evaluation experiments (E1–E7 of
//! `DESIGN.md`).
//!
//! The paper is a tool paper and reports qualitative claims rather
//! than tables of numbers; each claim is reproduced as a measurable
//! experiment. Everything that concerns the *monitored system* is
//! measured in **virtual time** (the simulation's deterministic CPU
//! and network clock), so results are reproducible to the microsecond;
//! the pure-computation components (wire codec, filter engine,
//! analysis) are additionally benchmarked in real time with Criterion
//! under `benches/`.

use dpm_meter::{MeterDecoder, MeterFlags, MeterMsg};
use dpm_simnet::NetConfig;
use dpm_simos::{BindTo, Cluster, Domain, Pid, Proc, Sig, SockName, SockType, SysResult, Uid};
use parking_lot::Mutex;
use std::sync::Arc;

/// The uid the harness runs everything as.
pub const U: Uid = Uid(100);

/// Builds a two-machine cluster (`work`, `mon`) with the given
/// network, seed, and meter-buffer threshold.
pub fn two_machine_cluster(net: NetConfig, seed: u64, meter_buffer: u32) -> Arc<Cluster> {
    Cluster::builder()
        .net(net)
        .seed(seed)
        .meter_buffer(meter_buffer)
        .machine("work")
        .machine("mon")
        .build()
}

/// Spawns a byte-sink "filter" on `machine` accepting `conns` meter
/// connections (all before reading, to avoid cross-connection
/// dependencies) and collecting every byte.
pub fn spawn_collector(
    cluster: &Arc<Cluster>,
    machine: &str,
    port: u16,
    conns: usize,
) -> (Pid, Arc<Mutex<Vec<u8>>>) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let out = buf.clone();
    let pid = cluster
        .spawn_user(machine, "collector", U, move |p| {
            let s = p.socket(Domain::Inet, SockType::Stream)?;
            p.bind(s, BindTo::Port(port))?;
            p.listen(s, 32)?;
            let mut open = Vec::new();
            for _ in 0..conns {
                let (conn, _) = p.accept(s)?;
                open.push(conn);
            }
            for conn in open {
                loop {
                    let data = p.read(conn, 8192)?;
                    if data.is_empty() {
                        break;
                    }
                    out.lock().extend_from_slice(&data);
                }
                p.close(conn)?;
            }
            Ok(())
        })
        .expect("collector spawns");
    (pid, buf)
}

/// Installs metering on a (suspended) process: connects a stream
/// socket to the collector and calls `setmeter`, as a meterdaemon
/// would.
///
/// # Errors
///
/// Propagates socket and `setmeter` errors.
pub fn meter_process(
    p: &Proc,
    target: Pid,
    flags: MeterFlags,
    filter_host: &str,
    filter_port: u16,
) -> SysResult<()> {
    use dpm_simos::{FlagSel, PidSel, SockSel, SysError};
    // The collector is a freshly spawned thread; retry (with *real*
    // sleeps — virtual ones are instantaneous) until it has bound its
    // port. Without this, a refused connect leaves the suspended
    // target unstarted and the caller waiting forever.
    let mut tries = 0;
    let s = loop {
        let s = p.socket(Domain::Inet, SockType::Stream)?;
        match p.connect_host(s, filter_host, filter_port) {
            Ok(()) => break s,
            Err(SysError::Econnrefused) if tries < 2000 => {
                let _ = p.close(s);
                tries += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => {
                let _ = p.close(s);
                return Err(e);
            }
        }
    };
    p.setmeter(PidSel::Pid(target), FlagSel::Set(flags), SockSel::Fd(s))?;
    p.close(s)
}

/// The standard measured workload: `rounds` of local datagram
/// send/receive (two sockets on one machine), then some pure
/// computation. Returns once done.
///
/// # Errors
///
/// Propagates socket errors.
pub fn ipc_workload(p: &Proc, rounds: u32, msg_len: usize) -> SysResult<()> {
    let rx = p.socket(Domain::Inet, SockType::Datagram)?;
    let me = p.cluster().resolve_host(p.hostname())?;
    let port = 6000;
    p.bind(rx, BindTo::Port(port))?;
    let tx = p.socket(Domain::Inet, SockType::Datagram)?;
    let dest = SockName::Inet { host: me.0, port };
    let payload = vec![7u8; msg_len];
    for _ in 0..rounds {
        p.sendto(tx, &payload, &dest)?;
        let _ = p.recvfrom(rx, msg_len)?;
    }
    p.compute_ms(1)?;
    Ok(())
}

/// Outcome of one metered-workload run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// CPU microseconds charged to the workload process.
    pub cpu_us: u64,
    /// Virtual wall time consumed by the whole run, microseconds.
    pub wall_us: u64,
    /// Meter frames that crossed the wire.
    pub meter_frames: u64,
    /// Meter bytes that crossed the wire.
    pub meter_bytes: u64,
    /// The decoded meter messages the collector received.
    pub messages: Vec<MeterMsg>,
}

/// Runs the standard workload under the given meter flags and buffer
/// threshold, measuring virtual cost and collecting the trace.
pub fn run_metered(
    flags: MeterFlags,
    meter_buffer: u32,
    rounds: u32,
    msg_len: usize,
) -> RunOutcome {
    let cluster = two_machine_cluster(NetConfig::ideal(), 42, meter_buffer);
    let metered = flags.meters_anything() || flags.contains(MeterFlags::IMMEDIATE);
    let (collector, buf) = if metered {
        let (c, b) = spawn_collector(&cluster, "mon", 4000, 1);
        (Some(c), b)
    } else {
        (None, Arc::new(Mutex::new(Vec::new())))
    };
    let work = cluster.machine("work").expect("machine");
    let t0 = cluster.global_time().now_us();
    let w0 = cluster.wire_stats().snapshot();
    let worker = work.spawn_fn("worker", U, None, false, move |p| {
        ipc_workload(&p, rounds, msg_len)
    });
    let daemonish = work.spawn_fn("daemonish", Uid::ROOT, None, true, move |p| {
        if metered {
            meter_process(&p, worker, flags, "mon", 4000)?;
        }
        p.kill(worker, Sig::Cont)?;
        Ok(())
    });
    work.wait_exit(daemonish);
    work.wait_exit(worker);
    let cpu_us = work.proc_cpu_us(worker).unwrap_or(0);
    if let Some(c) = collector {
        cluster.machine("mon").expect("machine").wait_exit(c);
    }
    let wall_us = cluster.global_time().now_us() - t0;
    let w1 = cluster.wire_stats().snapshot().since(&w0);
    let bytes = buf.lock().clone();
    cluster.shutdown();
    // Streaming decode: iterate the capture's valid prefix without
    // re-slicing per frame; a torn tail (the collector can be killed
    // mid-record) is simply ignored instead of voiding the capture.
    let messages: Vec<MeterMsg> = MeterDecoder::new(&bytes)
        .map_while(Result::ok)
        .filter_map(|rec| rec.to_msg().ok())
        .collect();
    RunOutcome {
        cpu_us,
        wall_us,
        meter_frames: w1.meter_frames,
        meter_bytes: w1.meter_bytes,
        messages,
    }
}

/// Builds a synthetic trace-log text with `pairs` matched
/// send/receive pairs across two machines, for analysis-scaling
/// experiments.
pub fn synthetic_log(pairs: usize) -> String {
    let mut out = String::with_capacity(pairs * 220);
    for i in 0..pairs {
        let t = 10 + i as u64;
        out.push_str(&format!(
            "event=send machine=0 cpuTime={t} procTime={} traceType=1 pid=1 pc={i} sock=3 msgLength=64 destName=inet:1:53\n",
            (i / 10) * 10
        ));
        out.push_str(&format!(
            "event=receive machine=1 cpuTime={} procTime={} traceType=3 pid=2 pc={i} sock=7 msgLength=64 sourceName=inet:0:1024\n",
            t + 3,
            (i / 10) * 10
        ));
    }
    out
}
