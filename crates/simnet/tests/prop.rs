//! Property-based tests for the time and network substrate.

use dpm_simnet::{ClockSpec, Fate, GlobalTime, HostId, MachineClock, NetConfig};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #[test]
    fn machine_clocks_are_monotone(
        skew in -500i32..=500,
        offset in -1_000_000i64..=1_000_000,
        steps in proptest::collection::vec(1u64..100_000, 1..50),
    ) {
        let g = Arc::new(GlobalTime::new());
        let c = MachineClock::new(g.clone(), ClockSpec { offset_us: offset, skew_ppm: skew });
        let mut last = c.now_us();
        for d in steps {
            g.advance_us(d);
            let now = c.now_us();
            prop_assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    }

    #[test]
    fn skew_error_is_bounded_by_ppm(
        skew in -500i32..=500,
        elapsed in 1u64..100_000_000,
    ) {
        let g = Arc::new(GlobalTime::new());
        let c = MachineClock::new(g.clone(), ClockSpec { offset_us: 0, skew_ppm: skew });
        g.advance_us(elapsed);
        let drift = c.now_us() - elapsed as i64;
        let bound = (elapsed as i128 * skew.unsigned_abs() as i128 / 1_000_000) as i64 + 1;
        prop_assert!(drift.abs() <= bound, "drift {drift} exceeds bound {bound}");
    }

    #[test]
    fn latency_samples_stay_in_bounds(seed in any::<u64>()) {
        let cfg = NetConfig::lan();
        let mut m = cfg.latency_model(seed);
        for _ in 0..200 {
            let l = m.sample_us(HostId(0), HostId(1));
            prop_assert!(l >= cfg.latency_min_us && l <= cfg.latency_max_us);
            match m.datagram_fate(HostId(0), HostId(1)) {
                Fate::Deliver { latency_us } => {
                    // Reordered datagrams may take up to two samples.
                    prop_assert!(latency_us >= cfg.latency_min_us);
                    prop_assert!(latency_us <= 2 * cfg.latency_max_us);
                }
                Fate::Lost => {}
            }
        }
    }

    #[test]
    fn loss_free_configs_never_lose(seed in any::<u64>()) {
        let mut m = NetConfig::ideal().latency_model(seed);
        for _ in 0..200 {
            let delivered = matches!(
                m.datagram_fate(HostId(0), HostId(1)),
                Fate::Deliver { latency_us: _ }
            );
            prop_assert!(delivered);
        }
    }

    #[test]
    fn global_time_advance_to_is_idempotent_and_monotone(
        targets in proptest::collection::vec(any::<u32>(), 1..50),
    ) {
        let g = GlobalTime::new();
        let mut max_seen = 0u64;
        for t in targets {
            let t = t as u64;
            let now = g.advance_to_us(t);
            max_seen = max_seen.max(t);
            prop_assert_eq!(now, max_seen);
            prop_assert_eq!(g.advance_to_us(0), max_seen, "never goes back");
        }
    }
}
