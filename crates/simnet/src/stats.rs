//! Wire-level counters for the benchmark harness.
//!
//! The measurement system itself must be measurable: the E1/E2 benches
//! (metering overhead, buffering) need to know how many frames and
//! bytes actually crossed the simulated wire, including the meter
//! traffic the monitor adds. The `cross_*` counters separate traffic
//! that actually left its machine from local loopback traffic — the
//! quantity edge pre-filters exist to reduce (E9).

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters of simulated network traffic.
///
/// All counters are cumulative since construction; [`WireStats::snapshot`]
/// gives a consistent-enough copy for reporting (individual loads are
/// atomic; cross-counter skew is irrelevant for coarse statistics).
#[derive(Debug, Default)]
pub struct WireStats {
    frames: AtomicU64,
    bytes: AtomicU64,
    datagrams_lost: AtomicU64,
    meter_frames: AtomicU64,
    meter_bytes: AtomicU64,
    cross_frames: AtomicU64,
    cross_bytes: AtomicU64,
    cross_meter_frames: AtomicU64,
    cross_meter_bytes: AtomicU64,
}

/// A point-in-time copy of [`WireStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSnapshot {
    /// Frames carried (application + monitor).
    pub frames: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Cross-machine datagrams dropped by the loss model.
    pub datagrams_lost: u64,
    /// Frames that were meter messages (monitor overhead).
    pub meter_frames: u64,
    /// Payload bytes that were meter messages.
    pub meter_bytes: u64,
    /// Frames whose sender and receiver were on different machines.
    pub cross_frames: u64,
    /// Payload bytes that crossed a machine boundary.
    pub cross_bytes: u64,
    /// Meter frames that crossed a machine boundary.
    pub cross_meter_frames: u64,
    /// Meter payload bytes that crossed a machine boundary.
    pub cross_meter_bytes: u64,
}

impl WireStats {
    /// Creates zeroed counters.
    pub fn new() -> WireStats {
        WireStats::default()
    }

    /// Records an application frame of `len` payload bytes; `cross`
    /// says whether it left its machine (vs. loopback).
    pub fn record_frame(&self, len: usize, cross: bool) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
        if cross {
            self.cross_frames.fetch_add(1, Ordering::Relaxed);
            self.cross_bytes.fetch_add(len as u64, Ordering::Relaxed);
        }
    }

    /// Records a meter-connection frame of `len` payload bytes.
    /// Also counted in the aggregate frame/byte totals.
    pub fn record_meter_frame(&self, len: usize, cross: bool) {
        self.record_frame(len, cross);
        self.meter_frames.fetch_add(1, Ordering::Relaxed);
        self.meter_bytes.fetch_add(len as u64, Ordering::Relaxed);
        if cross {
            self.cross_meter_frames.fetch_add(1, Ordering::Relaxed);
            self.cross_meter_bytes
                .fetch_add(len as u64, Ordering::Relaxed);
        }
    }

    /// Records a datagram dropped by the loss model.
    pub fn record_loss(&self) {
        self.datagrams_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            datagrams_lost: self.datagrams_lost.load(Ordering::Relaxed),
            meter_frames: self.meter_frames.load(Ordering::Relaxed),
            meter_bytes: self.meter_bytes.load(Ordering::Relaxed),
            cross_frames: self.cross_frames.load(Ordering::Relaxed),
            cross_bytes: self.cross_bytes.load(Ordering::Relaxed),
            cross_meter_frames: self.cross_meter_frames.load(Ordering::Relaxed),
            cross_meter_bytes: self.cross_meter_bytes.load(Ordering::Relaxed),
        }
    }
}

impl WireSnapshot {
    /// Counter-wise difference `self - earlier`, for interval reports.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier
    /// (any counter would go negative).
    pub fn since(&self, earlier: &WireSnapshot) -> WireSnapshot {
        WireSnapshot {
            frames: self.frames - earlier.frames,
            bytes: self.bytes - earlier.bytes,
            datagrams_lost: self.datagrams_lost - earlier.datagrams_lost,
            meter_frames: self.meter_frames - earlier.meter_frames,
            meter_bytes: self.meter_bytes - earlier.meter_bytes,
            cross_frames: self.cross_frames - earlier.cross_frames,
            cross_bytes: self.cross_bytes - earlier.cross_bytes,
            cross_meter_frames: self.cross_meter_frames - earlier.cross_meter_frames,
            cross_meter_bytes: self.cross_meter_bytes - earlier.cross_meter_bytes,
        }
    }

    /// Fraction of wire bytes that were monitor overhead, in `[0, 1]`.
    /// Zero when nothing was carried.
    pub fn meter_byte_fraction(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.meter_bytes as f64 / self.bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = WireStats::new();
        s.record_frame(100, true);
        s.record_frame(50, false);
        s.record_meter_frame(60, true);
        s.record_loss();
        let snap = s.snapshot();
        assert_eq!(snap.frames, 3);
        assert_eq!(snap.bytes, 210);
        assert_eq!(snap.meter_frames, 1);
        assert_eq!(snap.meter_bytes, 60);
        assert_eq!(snap.datagrams_lost, 1);
        assert_eq!(snap.cross_frames, 2);
        assert_eq!(snap.cross_bytes, 160);
        assert_eq!(snap.cross_meter_frames, 1);
        assert_eq!(snap.cross_meter_bytes, 60);
    }

    #[test]
    fn since_subtracts() {
        let s = WireStats::new();
        s.record_frame(10, false);
        let a = s.snapshot();
        s.record_meter_frame(20, true);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.frames, 1);
        assert_eq!(d.bytes, 20);
        assert_eq!(d.meter_bytes, 20);
        assert_eq!(d.cross_bytes, 20);
        assert_eq!(d.cross_meter_bytes, 20);
    }

    #[test]
    fn meter_fraction() {
        let s = WireStats::new();
        assert_eq!(s.snapshot().meter_byte_fraction(), 0.0);
        s.record_frame(75, false);
        s.record_meter_frame(25, true);
        let f = s.snapshot().meter_byte_fraction();
        assert!((f - 0.25).abs() < 1e-9);
    }

    #[test]
    fn stats_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireStats>();
    }
}
