//! Host names and identifiers.
//!
//! "When communicating an address, the literal name of the host and
//! the number of the port are exchanged. The receiving process then
//! constructs the socket name using its own host address for the
//! specified machine." (§3.5.4)
//!
//! The registry is the simulation's name service: it assigns each
//! literal host name a small numeric [`HostId`] (the `machine` field of
//! meter message headers) and translates in both directions.

use std::collections::HashMap;
use std::fmt;

/// Numeric identifier of a simulated machine.
///
/// Appears as the `machine` field in meter message headers and in
/// Internet-domain socket names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<HostId> for u32 {
    fn from(h: HostId) -> u32 {
        h.0
    }
}

/// Error returned when a host name or id is not registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownHostError {
    name: String,
}

impl UnknownHostError {
    /// The name that failed to resolve.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnknownHostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown host `{}`", self.name)
    }
}

impl std::error::Error for UnknownHostError {}

/// Bidirectional map between literal host names and [`HostId`]s.
///
/// # Example
///
/// ```
/// use dpm_simnet::HostRegistry;
///
/// let mut hosts = HostRegistry::new();
/// let blue = hosts.register("blue");
/// assert_eq!(hosts.lookup("blue"), Some(blue));
/// assert_eq!(hosts.name(blue), Some("blue"));
/// assert_eq!(hosts.resolve("green").unwrap_err().name(), "green");
/// ```
#[derive(Debug, Clone, Default)]
pub struct HostRegistry {
    by_name: HashMap<String, HostId>,
    names: Vec<String>,
}

impl HostRegistry {
    /// Creates an empty registry.
    pub fn new() -> HostRegistry {
        HostRegistry::default()
    }

    /// Registers a host name, returning its id. Registering the same
    /// name twice returns the existing id (idempotent).
    pub fn register(&mut self, name: &str) -> HostId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = HostId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up a host name, if registered.
    pub fn lookup(&self, name: &str) -> Option<HostId> {
        self.by_name.get(name).copied()
    }

    /// Like [`HostRegistry::lookup`] but returns an error carrying the
    /// name, for call sites that must report to the user.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownHostError`] when `name` is not registered.
    pub fn resolve(&self, name: &str) -> Result<HostId, UnknownHostError> {
        self.lookup(name).ok_or_else(|| UnknownHostError {
            name: name.to_owned(),
        })
    }

    /// The literal name of a host id, if registered.
    pub fn name(&self, id: HostId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (HostId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut r = HostRegistry::new();
        let a = r.register("red");
        let b = r.register("green");
        let c = r.register("blue");
        assert_eq!((a, b, c), (HostId(0), HostId(1), HostId(2)));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = HostRegistry::new();
        let a = r.register("red");
        assert_eq!(r.register("red"), a);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn both_directions_resolve() {
        let mut r = HostRegistry::new();
        let a = r.register("yellow");
        assert_eq!(r.lookup("yellow"), Some(a));
        assert_eq!(r.name(a), Some("yellow"));
        assert_eq!(r.lookup("nope"), None);
        assert_eq!(r.name(HostId(99)), None);
    }

    #[test]
    fn iter_in_registration_order() {
        let mut r = HostRegistry::new();
        r.register("a");
        r.register("b");
        let got: Vec<_> = r.iter().map(|(i, n)| (i.0, n.to_owned())).collect();
        assert_eq!(got, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn resolve_error_carries_name() {
        let r = HostRegistry::new();
        let err = r.resolve("mauve").unwrap_err();
        assert_eq!(err.name(), "mauve");
        assert!(err.to_string().contains("mauve"));
    }
}
