//! Virtual time: the hidden global clock and skewed machine clocks.
//!
//! "Time can be synchronized in a relative sense between processors,
//! but a complete ordering of events (full synchronization) is not
//! possible. … even algorithms that work well cannot guarantee
//! perfectly synchronized clocks." (§1.1)
//!
//! The simulation therefore keeps one *unobservable* [`GlobalTime`]
//! (discrete-event style, advanced by activity) and derives each
//! machine's visible clock from it through a per-machine offset and
//! rate skew. Traces taken on different machines disagree about
//! absolute time exactly the way the paper's VAXen did, which is what
//! makes the analysis crate's happens-before reconstruction meaningful.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The hidden "true" time of the simulation, in microseconds.
///
/// It only moves forward. Activity (computation, system calls, message
/// latency) advances it; a blocked receiver waiting for a message that
/// is still "in flight" jumps it forward to the delivery time, as in
/// any discrete-event simulator.
#[derive(Debug, Default)]
pub struct GlobalTime {
    micros: AtomicU64,
}

impl GlobalTime {
    /// Creates a clock at time zero.
    pub fn new() -> GlobalTime {
        GlobalTime::default()
    }

    /// Current true time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }

    /// Advances true time by `d` microseconds, returning the new time.
    pub fn advance_us(&self, d: u64) -> u64 {
        self.micros.fetch_add(d, Ordering::SeqCst) + d
    }

    /// Advances true time to at least `t` microseconds, returning the
    /// (possibly larger) current time. Never moves time backwards.
    pub fn advance_to_us(&self, t: u64) -> u64 {
        self.micros.fetch_max(t, Ordering::SeqCst).max(t)
    }
}

/// Configuration for one machine's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockSpec {
    /// Fixed offset added to the derived local time, in microseconds.
    /// Models machines booted at different moments.
    pub offset_us: i64,
    /// Rate skew in parts per million. `+200` means this machine's
    /// crystal runs 200 ppm fast. Real 1980s clocks drifted tens of
    /// ppm; the TEMPO work the paper cites fought exactly this.
    pub skew_ppm: i32,
}

/// One machine's view of time, derived from [`GlobalTime`].
///
/// The visible reading (in milliseconds, as the `cpuTime` header field)
/// is `(global * (1_000_000 + skew_ppm) / 1_000_000 + offset) / 1000`.
///
/// # Example
///
/// ```
/// use dpm_simnet::{ClockSpec, GlobalTime, MachineClock};
/// use std::sync::Arc;
///
/// let global = Arc::new(GlobalTime::new());
/// let fast = MachineClock::new(global.clone(), ClockSpec { offset_us: 0, skew_ppm: 1000 });
/// let slow = MachineClock::new(global.clone(), ClockSpec { offset_us: 0, skew_ppm: -1000 });
/// global.advance_us(10_000_000); // 10 true seconds
/// assert!(fast.now_ms() > slow.now_ms());
/// ```
#[derive(Debug, Clone)]
pub struct MachineClock {
    global: Arc<GlobalTime>,
    spec: ClockSpec,
}

impl MachineClock {
    /// Creates a machine clock deriving from `global` with `spec`.
    pub fn new(global: Arc<GlobalTime>, spec: ClockSpec) -> MachineClock {
        MachineClock { global, spec }
    }

    /// The clock's configuration.
    pub fn spec(&self) -> ClockSpec {
        self.spec
    }

    /// The underlying global time handle.
    pub fn global(&self) -> &Arc<GlobalTime> {
        &self.global
    }

    /// The machine's local time in microseconds.
    pub fn now_us(&self) -> i64 {
        self.at_us(self.global.now_us())
    }

    /// The machine's local time corresponding to a given *global*
    /// time, in microseconds. Used to stamp an event that logically
    /// occurred at `global_us` even if other activity has since pushed
    /// the global clock further.
    pub fn at_us(&self, global_us: u64) -> i64 {
        let g = global_us as i128;
        let skewed = g * (1_000_000 + self.spec.skew_ppm as i128) / 1_000_000;
        (skewed + self.spec.offset_us as i128) as i64
    }

    /// Like [`MachineClock::at_us`] but in clamped milliseconds — the
    /// value stamped into `cpuTime` meter-header fields.
    pub fn at_ms(&self, global_us: u64) -> u32 {
        (self.at_us(global_us).max(0) / 1000) as u32
    }

    /// The machine's local time in milliseconds — the value stamped
    /// into the `cpuTime` field of meter message headers.
    ///
    /// Negative local times (possible with a large negative offset
    /// right after boot) clamp to zero, as a real `time(2)` would never
    /// go below the epoch in practice.
    pub fn now_ms(&self) -> u32 {
        self.at_ms(self.global.now_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_time_advances_monotonically() {
        let t = GlobalTime::new();
        assert_eq!(t.now_us(), 0);
        assert_eq!(t.advance_us(5), 5);
        assert_eq!(t.advance_to_us(3), 5, "advance_to never goes backwards");
        assert_eq!(t.advance_to_us(9), 9);
        assert_eq!(t.now_us(), 9);
    }

    #[test]
    fn zero_skew_zero_offset_tracks_global() {
        let g = Arc::new(GlobalTime::new());
        let c = MachineClock::new(g.clone(), ClockSpec::default());
        g.advance_us(123_456);
        assert_eq!(c.now_us(), 123_456);
        assert_eq!(c.now_ms(), 123);
    }

    #[test]
    fn skew_makes_clocks_diverge() {
        let g = Arc::new(GlobalTime::new());
        let fast = MachineClock::new(
            g.clone(),
            ClockSpec {
                offset_us: 0,
                skew_ppm: 500,
            },
        );
        let slow = MachineClock::new(
            g.clone(),
            ClockSpec {
                offset_us: 0,
                skew_ppm: -500,
            },
        );
        g.advance_us(100_000_000); // 100 s
        let gap = fast.now_us() - slow.now_us();
        // ±500 ppm over 100 s → 100 ms total divergence.
        assert_eq!(gap, 100_000);
    }

    #[test]
    fn offset_shifts_clock() {
        let g = Arc::new(GlobalTime::new());
        let c = MachineClock::new(
            g.clone(),
            ClockSpec {
                offset_us: 2_000_000,
                skew_ppm: 0,
            },
        );
        assert_eq!(c.now_ms(), 2000);
        g.advance_us(1_000_000);
        assert_eq!(c.now_ms(), 3000);
    }

    #[test]
    fn negative_local_time_clamps_in_ms() {
        let g = Arc::new(GlobalTime::new());
        let c = MachineClock::new(
            g,
            ClockSpec {
                offset_us: -5_000_000,
                skew_ppm: 0,
            },
        );
        assert_eq!(c.now_ms(), 0);
        assert!(c.now_us() < 0, "raw microseconds still visible");
    }

    #[test]
    fn clock_skew_can_order_receive_before_send() {
        // The pathology the paper warns about: with unsynchronized
        // clocks, a receive can be *timestamped* before its send.
        let g = Arc::new(GlobalTime::new());
        let sender = MachineClock::new(
            g.clone(),
            ClockSpec {
                offset_us: 1_000_000, // sender's clock is 1 s ahead
                skew_ppm: 0,
            },
        );
        let receiver = MachineClock::new(g.clone(), ClockSpec::default());
        g.advance_us(1_000_000);
        let send_stamp = sender.now_ms();
        g.advance_us(5_000); // 5 ms of network latency
        let recv_stamp = receiver.now_ms();
        assert!(
            recv_stamp < send_stamp,
            "receive stamped {recv_stamp} ms, send stamped {send_stamp} ms"
        );
    }
}
