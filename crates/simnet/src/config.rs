//! Network behaviour: latency, datagram loss and reordering.
//!
//! "The delivery of the messages is not guaranteed, though it is
//! likely. Nor is the order in which a set of datagrams arrive
//! guaranteed to be the order in which they were sent." (§3.1)
//!
//! Stream communication, by contrast, is reliable and ordered; the
//! kernel applies the latency model to both but the loss/reorder model
//! only to datagrams.

use crate::registry::HostId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Static description of the simulated network's behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Minimum one-way latency between *different* machines, in
    /// microseconds of true time.
    pub latency_min_us: u64,
    /// Maximum one-way latency between different machines.
    pub latency_max_us: u64,
    /// Latency for local (same-machine) IPC. "Such links are reliable
    /// when used within a single machine" (§3.5.2) — loss never
    /// applies locally.
    pub local_latency_us: u64,
    /// Probability in `[0, 1]` that a cross-machine datagram is lost.
    pub datagram_loss: f64,
    /// Probability in `[0, 1]` that a cross-machine datagram is
    /// delayed an extra latency sample, modelling reordering.
    pub datagram_reorder: f64,
}

impl NetConfig {
    /// A 1980s-departmental-LAN profile: 2–8 ms one-way latency,
    /// 0.5 % datagram loss, 2 % reordering.
    pub fn lan() -> NetConfig {
        NetConfig {
            latency_min_us: 2_000,
            latency_max_us: 8_000,
            local_latency_us: 200,
            datagram_loss: 0.005,
            datagram_reorder: 0.02,
        }
    }

    /// A perfectly well-behaved network: fixed small latency, no loss,
    /// no reordering. Useful for deterministic tests.
    pub fn ideal() -> NetConfig {
        NetConfig {
            latency_min_us: 1_000,
            latency_max_us: 1_000,
            local_latency_us: 100,
            datagram_loss: 0.0,
            datagram_reorder: 0.0,
        }
    }

    /// A hostile network for failure-injection tests: high variance,
    /// heavy datagram loss and reordering.
    pub fn lossy() -> NetConfig {
        NetConfig {
            latency_min_us: 1_000,
            latency_max_us: 50_000,
            local_latency_us: 200,
            datagram_loss: 0.2,
            datagram_reorder: 0.3,
        }
    }

    /// Builds the stateful [`LatencyModel`] for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `latency_min_us > latency_max_us` or a probability is
    /// outside `[0, 1]` — configurations are validated eagerly so a
    /// bad one cannot silently skew an experiment.
    pub fn latency_model(&self, seed: u64) -> LatencyModel {
        assert!(
            self.latency_min_us <= self.latency_max_us,
            "latency_min_us {} > latency_max_us {}",
            self.latency_min_us,
            self.latency_max_us
        );
        assert!(
            (0.0..=1.0).contains(&self.datagram_loss),
            "datagram_loss {} outside [0,1]",
            self.datagram_loss
        );
        assert!(
            (0.0..=1.0).contains(&self.datagram_reorder),
            "datagram_reorder {} outside [0,1]",
            self.datagram_reorder
        );
        LatencyModel {
            cfg: self.clone(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for NetConfig {
    /// The default network is [`NetConfig::lan`].
    fn default() -> NetConfig {
        NetConfig::lan()
    }
}

/// What the network decided to do with a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver after the given latency, in microseconds of true time.
    Deliver {
        /// One-way delay before the datagram is visible to the
        /// receiver.
        latency_us: u64,
    },
    /// Silently drop the datagram.
    Lost,
}

/// Stateful sampler of network behaviour. One per simulated cluster,
/// seeded for reproducibility.
#[derive(Debug)]
pub struct LatencyModel {
    cfg: NetConfig,
    rng: StdRng,
}

impl LatencyModel {
    /// The configuration this model was built from.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Samples a one-way latency between two hosts, in microseconds.
    /// Same-host traffic uses the (smaller, fixed) local latency.
    pub fn sample_us(&mut self, src: HostId, dst: HostId) -> u64 {
        if src == dst {
            return self.cfg.local_latency_us;
        }
        if self.cfg.latency_min_us == self.cfg.latency_max_us {
            return self.cfg.latency_min_us;
        }
        self.rng
            .gen_range(self.cfg.latency_min_us..=self.cfg.latency_max_us)
    }

    /// Decides the fate of one cross-machine datagram: lost, delivered,
    /// or delivered late (reordered). Local datagrams are reliable and
    /// always delivered with local latency.
    pub fn datagram_fate(&mut self, src: HostId, dst: HostId) -> Fate {
        if src == dst {
            return Fate::Deliver {
                latency_us: self.cfg.local_latency_us,
            };
        }
        if self.rng.gen_bool(self.cfg.datagram_loss) {
            return Fate::Lost;
        }
        let mut latency = self.sample_us(src, dst);
        if self.rng.gen_bool(self.cfg.datagram_reorder) {
            // An extra latency sample pushes this datagram behind
            // later ones: reordering.
            latency += self.sample_us(src, dst);
        }
        Fate::Deliver {
            latency_us: latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: HostId = HostId(0);
    const B: HostId = HostId(1);

    #[test]
    fn ideal_network_is_deterministic() {
        let mut m = NetConfig::ideal().latency_model(1);
        for _ in 0..100 {
            assert_eq!(m.sample_us(A, B), 1_000);
            assert_eq!(m.datagram_fate(A, B), Fate::Deliver { latency_us: 1_000 });
        }
    }

    #[test]
    fn local_traffic_is_fast_and_reliable() {
        let mut m = NetConfig::lossy().latency_model(2);
        for _ in 0..1000 {
            assert_eq!(m.datagram_fate(A, A), Fate::Deliver { latency_us: 200 });
        }
    }

    #[test]
    fn lan_latency_stays_in_bounds() {
        let cfg = NetConfig::lan();
        let mut m = cfg.latency_model(3);
        for _ in 0..1000 {
            let l = m.sample_us(A, B);
            assert!(l >= cfg.latency_min_us && l <= cfg.latency_max_us);
        }
    }

    #[test]
    fn lossy_network_actually_loses_datagrams() {
        let mut m = NetConfig::lossy().latency_model(4);
        let lost = (0..2000)
            .filter(|_| matches!(m.datagram_fate(A, B), Fate::Lost))
            .count();
        // 20 % loss over 2000 trials: expect roughly 400; accept a wide band.
        assert!((200..700).contains(&lost), "lost {lost} of 2000");
    }

    #[test]
    fn reordering_adds_an_extra_latency_sample() {
        // A reordered datagram is delivered with two latency samples
        // stacked; with heavy reorder probability some fates must land
        // beyond the single-sample maximum, and none beyond twice it.
        let cfg = NetConfig::lossy();
        let mut m = cfg.latency_model(5);
        let mut beyond_max = 0usize;
        for _ in 0..2000 {
            if let Fate::Deliver { latency_us } = m.datagram_fate(A, B) {
                assert!(latency_us >= cfg.latency_min_us);
                assert!(latency_us <= 2 * cfg.latency_max_us);
                if latency_us > cfg.latency_max_us {
                    beyond_max += 1;
                }
            }
        }
        // 30 % reorder over ~1600 delivered: expect hundreds.
        assert!(beyond_max > 100, "only {beyond_max} reordered fates");
    }

    #[test]
    fn no_reordering_when_probability_is_zero() {
        let cfg = NetConfig {
            datagram_reorder: 0.0,
            ..NetConfig::lossy()
        };
        let mut m = cfg.latency_model(6);
        for _ in 0..2000 {
            if let Fate::Deliver { latency_us } = m.datagram_fate(A, B) {
                assert!(
                    latency_us <= cfg.latency_max_us,
                    "latency {latency_us} exceeds single-sample max"
                );
            }
        }
    }

    #[test]
    fn loss_and_reorder_fates_replay_under_one_seed() {
        // The loss and reorder draws both come from the seeded rng, so
        // the full fate sequence — not just the latency samples — must
        // replay.
        let cfg = NetConfig::lossy();
        let mut m1 = cfg.latency_model(77);
        let mut m2 = cfg.latency_model(77);
        let f1: Vec<_> = (0..500).map(|_| m1.datagram_fate(A, B)).collect();
        let f2: Vec<_> = (0..500).map(|_| m2.datagram_fate(A, B)).collect();
        assert_eq!(f1, f2);
        assert!(f1.iter().any(|f| matches!(f, Fate::Lost)));
    }

    #[test]
    fn same_seed_same_behaviour() {
        let cfg = NetConfig::lan();
        let mut m1 = cfg.latency_model(42);
        let mut m2 = cfg.latency_model(42);
        for _ in 0..100 {
            assert_eq!(m1.datagram_fate(A, B), m2.datagram_fate(A, B));
            assert_eq!(m1.sample_us(A, B), m2.sample_us(A, B));
        }
    }

    #[test]
    #[should_panic(expected = "latency_min_us")]
    fn inverted_latency_bounds_panic() {
        let cfg = NetConfig {
            latency_min_us: 10,
            latency_max_us: 5,
            ..NetConfig::ideal()
        };
        let _ = cfg.latency_model(0);
    }

    #[test]
    #[should_panic(expected = "datagram_loss")]
    fn bad_loss_probability_panics() {
        let cfg = NetConfig {
            datagram_loss: 1.5,
            ..NetConfig::ideal()
        };
        let _ = cfg.latency_model(0);
    }
}
