//! Simulated network substrate for the distributed programs monitor.
//!
//! The paper's monitor ran on several VAXen on a LAN, each with its own
//! unsynchronized hardware clock. This crate supplies the equivalents:
//!
//! * [`GlobalTime`] — the hidden "true" time of the simulation,
//!   advanced by activity (discrete-event style). No component of the
//!   monitored system can observe it; it exists so that latency and
//!   ordering are well defined.
//! * [`MachineClock`] — a per-machine view of time with configurable
//!   offset and rate skew. As the paper notes (§1.1), time can be
//!   synchronized in a relative sense but a complete ordering of
//!   events is not possible; machine clocks here genuinely disagree.
//! * [`LatencyModel`] and [`NetConfig`] — message delay is finite and
//!   non-deterministic (§1.1's *delay* factor), datagrams may be lost
//!   or reordered (§3.1), streams are reliable.
//! * [`HostRegistry`] — maps literal host names to numeric host ids.
//!   Socket names are exchanged as literal host name + port because a
//!   host may have different addresses on different networks (§3.5.4).
//! * [`WireStats`] — counts frames/bytes for the benchmark harness.
//!
//! # Example
//!
//! ```
//! use dpm_simnet::{GlobalTime, HostRegistry, NetConfig};
//! use std::sync::Arc;
//!
//! let time = Arc::new(GlobalTime::new());
//! let mut hosts = HostRegistry::new();
//! let red = hosts.register("red");
//! let blue = hosts.register("blue");
//! assert_ne!(red, blue);
//! assert_eq!(hosts.lookup("red"), Some(red));
//!
//! let cfg = NetConfig::lan();
//! let mut latency = cfg.latency_model(7);
//! let d = latency.sample_us(red, blue);
//! assert!(d >= cfg.latency_min_us && d <= cfg.latency_max_us);
//! # let _ = time;
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod fault;
pub mod registry;
pub mod stats;

pub use clock::{ClockSpec, GlobalTime, MachineClock};
pub use config::{Fate, LatencyModel, NetConfig};
pub use fault::{DgramFault, FaultInjector, NoFaults};
pub use registry::{HostId, HostRegistry, UnknownHostError};
pub use stats::WireStats;
