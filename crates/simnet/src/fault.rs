//! Deterministic fault-injection hook points.
//!
//! The random [`LatencyModel`](crate::LatencyModel) loses and reorders
//! datagrams *statistically*; chaos testing needs the same failures
//! under *test control*. A [`FaultInjector`] is consulted by the
//! delivery paths of the simulated kernel before the random model gets
//! a say, so a scripted fault plan (see the `dpm-chaos` crate) can
//! drop, duplicate or delay a specific message, refuse a connection
//! during a partition window, or force a meter flush to be
//! retransmitted.
//!
//! Every hook receives the virtual send time (`now_us`, true time in
//! microseconds) so injectors can gate decisions on virtual-time
//! windows rather than wall-clock state — the same seed then replays
//! the exact same failure schedule.
//!
//! The default implementation of every hook is a no-op ([`NoFaults`]
//! implements the trait with nothing overridden), so a cluster built
//! without an injector behaves exactly as before.

use crate::registry::HostId;

/// What a fault injector decided to do with one cross-machine datagram.
///
/// `Pass` hands the decision back to the random
/// [`LatencyModel`](crate::LatencyModel); the other variants override
/// it entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DgramFault {
    /// No injected fault: fall through to the latency model.
    Pass,
    /// Drop the datagram silently.
    Drop,
    /// Deliver the datagram twice — once normally, once after the
    /// extra delay — modelling a retransmission racing its original.
    Duplicate {
        /// Extra delay of the duplicate copy, in microseconds.
        extra_us: u64,
    },
    /// Deliver once, after the normal latency plus this extra delay.
    Delay {
        /// Extra delay, in microseconds of true time.
        extra_us: u64,
    },
}

/// Hook points consulted by the simulated kernel's delivery paths.
///
/// Implementations must be deterministic functions of their arguments
/// and of internal counters only — never of wall-clock time — so a
/// fault schedule replays identically under the same seed. All hooks
/// default to "no fault"; override only what a plan needs.
pub trait FaultInjector: Send + Sync {
    /// Decides the fate of one cross-machine datagram sent from `src`
    /// to `dst` at virtual time `now_us`. Returning
    /// [`DgramFault::Pass`] defers to the random latency model.
    fn dgram_fault(&self, _src: HostId, _dst: HostId, _now_us: u64) -> DgramFault {
        DgramFault::Pass
    }

    /// Whether a *new* cross-machine connection from `src` to `dst` at
    /// virtual time `now_us` should be refused (connection refused, as
    /// during a network partition). Established streams are not torn
    /// down; see [`FaultInjector::stream_extra_us`].
    fn connect_blocked(&self, _src: HostId, _dst: HostId, _now_us: u64) -> bool {
        false
    }

    /// Extra delivery delay, in microseconds, applied to a stream
    /// segment sent from `src` to `dst` at virtual time `now_us`.
    /// Streams stay reliable — a partition delays their bytes until
    /// the heal time (TCP retransmits after the partition heals), it
    /// does not lose them.
    fn stream_extra_us(&self, _src: HostId, _dst: HostId, _now_us: u64) -> u64 {
        0
    }

    /// Whether the meter-message flush from `src` to `dst` at virtual
    /// time `now_us` should be delivered *twice*, modelling
    /// at-least-once retransmission of buffered meter messages. The
    /// filter's sequence-number dedup must absorb the duplicate.
    fn duplicate_meter_flush(&self, _src: HostId, _dst: HostId, _now_us: u64) -> bool {
        false
    }
}

/// The do-nothing injector: every hook keeps its default no-op
/// behaviour. This is what a cluster uses when no fault plan is
/// installed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    const A: HostId = HostId(0);
    const B: HostId = HostId(1);

    #[test]
    fn no_faults_is_transparent() {
        let inj = NoFaults;
        assert_eq!(inj.dgram_fault(A, B, 0), DgramFault::Pass);
        assert!(!inj.connect_blocked(A, B, 0));
        assert_eq!(inj.stream_extra_us(A, B, 0), 0);
        assert!(!inj.duplicate_meter_flush(A, B, 0));
    }

    #[test]
    fn injectors_are_object_safe() {
        let inj: Box<dyn FaultInjector> = Box::new(NoFaults);
        assert_eq!(inj.dgram_fault(A, B, 99), DgramFault::Pass);
    }

    /// A scripted injector sees the virtual send time, so partitions
    /// can be expressed as pure time windows.
    #[test]
    fn time_windowed_injector() {
        struct Window;
        impl FaultInjector for Window {
            fn connect_blocked(&self, _s: HostId, _d: HostId, now_us: u64) -> bool {
                (1_000..2_000).contains(&now_us)
            }
        }
        let w = Window;
        assert!(!w.connect_blocked(A, B, 999));
        assert!(w.connect_blocked(A, B, 1_000));
        assert!(w.connect_blocked(A, B, 1_999));
        assert!(!w.connect_blocked(A, B, 2_000));
    }
}
