//! Invariant checks a chaos run must uphold.
//!
//! Injected faults are allowed to slow the monitor down, force
//! retries, and crash daemons — they are *not* allowed to corrupt
//! what the log store accepted. These checkers read a store back and
//! verify the safety properties end to end:
//!
//! * **No duplication** — at-least-once meter delivery plus the
//!   filter's sequence dedup must net out to each `(machine, pid,
//!   seq)` appearing at most once in the store.
//! * **No loss of accepted records** — for workloads whose transport
//!   to the filter is reliable, the per-process sequence numbers in
//!   the store must be gapless.
//!
//! Checkers return `Err(description)` rather than panicking so a test
//! can prepend the failing plan's seed and spec (see
//! [`FaultPlan::describe`](crate::FaultPlan::describe)) — the one
//! line needed to replay the failure.
//!
//! Every violation also dumps the telemetry flight recorder
//! ([`dpm_telemetry::dump_failure`]): the recent retries, heals, and
//! give-ups that led up to the bad store are exactly the context a
//! post-mortem needs, and they are gone once the run is torn down.

use std::collections::HashMap;

use dpm_controlplane::{ControlEvent, ControlLog, JobTable};
use dpm_logstore::StoreReader;
use dpm_meter::MeterMsg;

/// The key the sequence invariants are stated over: which process
/// emitted the record, and where.
type ProcKey = (u16, u32); // (machine, pid)

/// Per-process sequence numbers extracted from every frame of a store.
///
/// Frames whose payload is not a decodable meter message, or whose
/// sequence is `0` (unsequenced, the paper's original header layout),
/// are counted but not tracked — the sequence invariants only apply to
/// kernel-stamped records.
#[derive(Debug, Default)]
pub struct SeqCensus {
    /// `(machine, pid)` → every sequence number seen, in scan order.
    pub seqs: HashMap<ProcKey, Vec<u32>>,
    /// Frames scanned in total.
    pub frames: u64,
    /// Frames skipped: undecodable payload or unsequenced (`seq == 0`).
    pub skipped: u64,
}

/// Reads every frame of `reader` and tallies per-process sequences.
pub fn census(reader: &StoreReader) -> SeqCensus {
    let mut out = SeqCensus::default();
    for frame in reader.scan() {
        out.frames += 1;
        match MeterMsg::decode(frame.raw) {
            Ok((msg, _)) if msg.header.seq != 0 => {
                out.seqs
                    .entry((msg.header.machine, msg.body.pid()))
                    .or_default()
                    .push(msg.header.seq);
            }
            _ => out.skipped += 1,
        }
    }
    out
}

/// Checks that no `(machine, pid, seq)` triple appears twice in the
/// store — the "no record duplicated" invariant. Duplicated meter
/// flushes must be absorbed by the filter's dedup before they reach
/// the store.
///
/// # Errors
///
/// A description of the first duplicated triple found.
pub fn check_no_duplicates(reader: &StoreReader) -> Result<SeqCensus, String> {
    let c = census(reader);
    for (&(machine, pid), seqs) in &c.seqs {
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                let msg = format!(
                    "duplicate record: machine {machine} pid {pid} seq {} appears twice \
                     ({} records for that process)",
                    pair[0],
                    seqs.len()
                );
                dpm_telemetry::dump_failure(&format!("invariant no-duplicates failed: {msg}"));
                return Err(msg);
            }
        }
    }
    Ok(c)
}

/// Checks that each process's stored sequences are gapless `1..=n` —
/// the "no accepted record lost" invariant, applicable when the
/// meter-message path to the filter is reliable (duplication and
/// daemon crashes are fine; datagram *drop* chaos between meter
/// sources and the filter would legitimately lose records and should
/// not be checked with this).
///
/// # Errors
///
/// A description of the first gap found.
pub fn check_gapless(reader: &StoreReader) -> Result<SeqCensus, String> {
    let c = census(reader);
    for (&(machine, pid), seqs) in &c.seqs {
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for (i, &seq) in sorted.iter().enumerate() {
            let expect = (i + 1) as u32;
            if seq != expect {
                let msg = format!(
                    "lost record: machine {machine} pid {pid} expected seq {expect}, \
                     found {seq} (process has {} distinct seqs)",
                    sorted.len()
                );
                dpm_telemetry::dump_failure(&format!("invariant gapless failed: {msg}"));
                return Err(msg);
            }
        }
    }
    Ok(c)
}

/// Both sequence invariants at once: no duplicates, no gaps.
///
/// # Errors
///
/// The first violated invariant's description.
pub fn check_exactly_once(reader: &StoreReader) -> Result<SeqCensus, String> {
    check_no_duplicates(reader)?;
    check_gapless(reader)
}

/// What [`check_control_plane`] verified, for assertions in tests.
#[derive(Debug, Default)]
pub struct ControlCensus {
    /// Control events replayed from the log.
    pub events: u64,
    /// Jobs ever created (including since-removed ones).
    pub jobs_created: usize,
    /// Jobs still live at the end of the log.
    pub jobs_live: usize,
    /// Filters created.
    pub filters: usize,
}

/// Replays a control log and checks the failover safety invariants —
/// what controller crashes and lease takeovers are *not* allowed to
/// corrupt:
///
/// * **One creation per job** — a job name is created at most once
///   (idempotent RPC plus the log means a retried `newjob` must not
///   fork the job's history).
/// * **Exactly one terminal state** — every job that was accepted
///   either was removed or has every process in a terminal state
///   (killed, or merely acquired) by the end of the log; no job is
///   left half-running with nobody responsible for it.
/// * **No orphaned filter reference** — every job's filter was
///   recorded in the log, so a standby can always rebuild the
///   rendering path for `getlog`/`watch` after takeover.
/// * **Linear lease chain** — job ownership never overlapped: each
///   takeover's lease begins at or after the previous owner's expiry
///   ([`JobTable::check_lease_chain`]).
///
/// # Errors
///
/// A description of the first violated invariant; the telemetry
/// flight recorder is dumped alongside.
pub fn check_control_plane(reader: &StoreReader) -> Result<ControlCensus, String> {
    let events = ControlLog::replay(reader);
    let mut created: HashMap<String, u64> = HashMap::new();
    for (_, ev) in &events {
        if let ControlEvent::JobCreated { job, .. } = ev {
            *created.entry(job.clone()).or_default() += 1;
        }
    }
    let fail = |msg: String| {
        dpm_telemetry::dump_failure(&format!("invariant control-plane failed: {msg}"));
        Err(msg)
    };
    for (job, n) in &created {
        if *n > 1 {
            return fail(format!("job '{job}' created {n} times"));
        }
    }
    let mut table = JobTable::new();
    table.apply_all(events.iter().map(|(_, ev)| ev));
    for jr in table.jobs.values() {
        if table.filter(&jr.filter).is_none() {
            return fail(format!(
                "job '{}' references filter '{}' which the log never created",
                jr.name, jr.filter
            ));
        }
        if jr.removed {
            continue;
        }
        if let Some(p) = jr
            .procs
            .iter()
            .find(|p| p.state != "killed" && p.state != "acquired")
        {
            return fail(format!(
                "job '{}' ended the log with process '{}' (pid {} on {}) still {} — \
                 no terminal state reached",
                jr.name, p.name, p.pid, p.machine, p.state
            ));
        }
    }
    if let Err(msg) = table.check_lease_chain() {
        return fail(msg);
    }
    Ok(ControlCensus {
        events: events.len() as u64,
        jobs_created: created.len(),
        jobs_live: table.live_jobs().len(),
        filters: table.filters.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_logstore::{LogStore, MemBackend, StoreConfig};
    use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterTermProc, TermReason};
    use std::sync::Arc;

    fn record(machine: u16, pid: u32, seq: u32) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                machine,
                seq,
                cpu_time: 10,
                ..MeterHeader::default()
            },
            body: MeterBody::TermProc(MeterTermProc {
                pid,
                pc: 0,
                reason: TermReason::Normal,
            }),
        }
        .encode()
    }

    fn store_with(records: &[Vec<u8>]) -> StoreReader {
        let backend = Arc::new(MemBackend::new());
        let store = LogStore::open(backend.clone(), "inv", StoreConfig::default());
        let mut w = store.writer(0);
        for r in records {
            w.append(r);
        }
        w.sync();
        StoreReader::load(backend.as_ref(), "inv")
    }

    #[test]
    fn clean_store_passes_both_invariants() {
        let reader = store_with(&[
            record(1, 100, 1),
            record(1, 100, 2),
            record(2, 100, 1), // same pid on another machine is distinct
            record(1, 101, 1),
            record(1, 100, 3),
        ]);
        let c = check_exactly_once(&reader).expect("clean store");
        assert_eq!(c.frames, 5);
        assert_eq!(c.skipped, 0);
        assert_eq!(c.seqs[&(1, 100)], vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_seq_is_reported_with_coordinates() {
        let reader = store_with(&[record(1, 100, 1), record(1, 100, 2), record(1, 100, 2)]);
        let err = check_no_duplicates(&reader).unwrap_err();
        assert!(err.contains("machine 1 pid 100 seq 2"), "{err}");
        // Gaplessness treats the duplicate as one record and passes.
        check_gapless(&reader).expect("dup is not a gap");
    }

    #[test]
    fn gap_is_reported_and_unsequenced_records_are_exempt() {
        let reader = store_with(&[record(1, 100, 1), record(1, 100, 3), record(1, 200, 0)]);
        let err = check_gapless(&reader).unwrap_err();
        assert!(err.contains("expected seq 2, found 3"), "{err}");
        let c = check_no_duplicates(&reader).expect("no dups");
        assert_eq!(c.skipped, 1, "seq 0 is unsequenced and skipped");
    }

    fn control_store(events: &[ControlEvent]) -> StoreReader {
        let backend = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(backend.clone(), "ctl");
        for ev in events {
            log.append(ev);
        }
        StoreReader::load(backend.as_ref(), "ctl")
    }

    fn filter_created(name: &str) -> ControlEvent {
        ControlEvent::FilterCreated {
            name: name.to_owned(),
            machine: "red".to_owned(),
            pid: 7,
            port: 4000,
            logfile: format!("/usr/tmp/log.{name}"),
            mode: "store".to_owned(),
            shards: 1,
            role: "leaf".to_owned(),
            upstream: String::new(),
            desc_text: String::new(),
        }
    }

    #[test]
    fn clean_control_log_passes() {
        let reader = control_store(&[
            filter_created("f1"),
            ControlEvent::JobCreated {
                job: "j".to_owned(),
                filter: "f1".to_owned(),
            },
            ControlEvent::LeaseAcquired {
                job: "j".to_owned(),
                owner: "red:3000".to_owned(),
                at_us: 0,
                expires_us: 1_000,
            },
            ControlEvent::ProcAdded {
                job: "j".to_owned(),
                name: "worker".to_owned(),
                machine: "red".to_owned(),
                pid: 9,
                state: "new".to_owned(),
            },
            // A clean takeover: the next owner begins after expiry.
            ControlEvent::LeaseAcquired {
                job: "j".to_owned(),
                owner: "blue:3000".to_owned(),
                at_us: 1_500,
                expires_us: 2_500,
            },
            ControlEvent::ProcStateChanged {
                job: "j".to_owned(),
                machine: "red".to_owned(),
                pid: 9,
                state: "killed".to_owned(),
            },
        ]);
        let c = check_control_plane(&reader).expect("clean control log");
        assert_eq!(c.events, 6);
        assert_eq!(c.jobs_created, 1);
        assert_eq!(c.jobs_live, 1);
        assert_eq!(c.filters, 1);
    }

    #[test]
    fn nonterminal_job_and_orphan_filter_are_reported() {
        let stuck = control_store(&[
            filter_created("f1"),
            ControlEvent::JobCreated {
                job: "j".to_owned(),
                filter: "f1".to_owned(),
            },
            ControlEvent::ProcAdded {
                job: "j".to_owned(),
                name: "worker".to_owned(),
                machine: "red".to_owned(),
                pid: 9,
                state: "running".to_owned(),
            },
        ]);
        let err = check_control_plane(&stuck).unwrap_err();
        assert!(err.contains("no terminal state"), "{err}");

        let orphan = control_store(&[ControlEvent::JobCreated {
            job: "j".to_owned(),
            filter: "ghost".to_owned(),
        }]);
        let err = check_control_plane(&orphan).unwrap_err();
        assert!(err.contains("never created"), "{err}");
    }

    #[test]
    fn overlapping_lease_owners_are_reported() {
        let reader = control_store(&[
            filter_created("f1"),
            ControlEvent::JobCreated {
                job: "j".to_owned(),
                filter: "f1".to_owned(),
            },
            ControlEvent::JobRemoved {
                job: "j".to_owned(),
            },
            ControlEvent::LeaseAcquired {
                job: "j".to_owned(),
                owner: "red:3000".to_owned(),
                at_us: 0,
                expires_us: 1_000,
            },
        ]);
        // Re-apply the lease under another owner before expiry by
        // appending a conflicting acquisition.
        let backend = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(backend.clone(), "ctl");
        log.append(&filter_created("f1"));
        log.append(&ControlEvent::JobCreated {
            job: "j".to_owned(),
            filter: "f1".to_owned(),
        });
        log.append(&ControlEvent::LeaseAcquired {
            job: "j".to_owned(),
            owner: "red:3000".to_owned(),
            at_us: 0,
            expires_us: 1_000,
        });
        log.append(&ControlEvent::LeaseAcquired {
            job: "j".to_owned(),
            owner: "blue:3000".to_owned(),
            at_us: 500, // before red's lease expired: split brain
            expires_us: 1_500,
        });
        log.append(&ControlEvent::JobRemoved {
            job: "j".to_owned(),
        });
        let bad = StoreReader::load(backend.as_ref(), "ctl");
        let err = check_control_plane(&bad).unwrap_err();
        assert!(err.contains("before"), "{err}");
        // The removed-job store above (no overlap) stays clean.
        check_control_plane(&reader).expect("removed job is terminal");
    }
}
