//! Invariant checks a chaos run must uphold.
//!
//! Injected faults are allowed to slow the monitor down, force
//! retries, and crash daemons — they are *not* allowed to corrupt
//! what the log store accepted. These checkers read a store back and
//! verify the safety properties end to end:
//!
//! * **No duplication** — at-least-once meter delivery plus the
//!   filter's sequence dedup must net out to each `(machine, pid,
//!   seq)` appearing at most once in the store.
//! * **No loss of accepted records** — for workloads whose transport
//!   to the filter is reliable, the per-process sequence numbers in
//!   the store must be gapless.
//!
//! Checkers return `Err(description)` rather than panicking so a test
//! can prepend the failing plan's seed and spec (see
//! [`FaultPlan::describe`](crate::FaultPlan::describe)) — the one
//! line needed to replay the failure.
//!
//! Every violation also dumps the telemetry flight recorder
//! ([`dpm_telemetry::dump_failure`]): the recent retries, heals, and
//! give-ups that led up to the bad store are exactly the context a
//! post-mortem needs, and they are gone once the run is torn down.

use std::collections::HashMap;

use dpm_logstore::StoreReader;
use dpm_meter::MeterMsg;

/// The key the sequence invariants are stated over: which process
/// emitted the record, and where.
type ProcKey = (u16, u32); // (machine, pid)

/// Per-process sequence numbers extracted from every frame of a store.
///
/// Frames whose payload is not a decodable meter message, or whose
/// sequence is `0` (unsequenced, the paper's original header layout),
/// are counted but not tracked — the sequence invariants only apply to
/// kernel-stamped records.
#[derive(Debug, Default)]
pub struct SeqCensus {
    /// `(machine, pid)` → every sequence number seen, in scan order.
    pub seqs: HashMap<ProcKey, Vec<u32>>,
    /// Frames scanned in total.
    pub frames: u64,
    /// Frames skipped: undecodable payload or unsequenced (`seq == 0`).
    pub skipped: u64,
}

/// Reads every frame of `reader` and tallies per-process sequences.
pub fn census(reader: &StoreReader) -> SeqCensus {
    let mut out = SeqCensus::default();
    for frame in reader.scan() {
        out.frames += 1;
        match MeterMsg::decode(frame.raw) {
            Ok((msg, _)) if msg.header.seq != 0 => {
                out.seqs
                    .entry((msg.header.machine, msg.body.pid()))
                    .or_default()
                    .push(msg.header.seq);
            }
            _ => out.skipped += 1,
        }
    }
    out
}

/// Checks that no `(machine, pid, seq)` triple appears twice in the
/// store — the "no record duplicated" invariant. Duplicated meter
/// flushes must be absorbed by the filter's dedup before they reach
/// the store.
///
/// # Errors
///
/// A description of the first duplicated triple found.
pub fn check_no_duplicates(reader: &StoreReader) -> Result<SeqCensus, String> {
    let c = census(reader);
    for (&(machine, pid), seqs) in &c.seqs {
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                let msg = format!(
                    "duplicate record: machine {machine} pid {pid} seq {} appears twice \
                     ({} records for that process)",
                    pair[0],
                    seqs.len()
                );
                dpm_telemetry::dump_failure(&format!("invariant no-duplicates failed: {msg}"));
                return Err(msg);
            }
        }
    }
    Ok(c)
}

/// Checks that each process's stored sequences are gapless `1..=n` —
/// the "no accepted record lost" invariant, applicable when the
/// meter-message path to the filter is reliable (duplication and
/// daemon crashes are fine; datagram *drop* chaos between meter
/// sources and the filter would legitimately lose records and should
/// not be checked with this).
///
/// # Errors
///
/// A description of the first gap found.
pub fn check_gapless(reader: &StoreReader) -> Result<SeqCensus, String> {
    let c = census(reader);
    for (&(machine, pid), seqs) in &c.seqs {
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        for (i, &seq) in sorted.iter().enumerate() {
            let expect = (i + 1) as u32;
            if seq != expect {
                let msg = format!(
                    "lost record: machine {machine} pid {pid} expected seq {expect}, \
                     found {seq} (process has {} distinct seqs)",
                    sorted.len()
                );
                dpm_telemetry::dump_failure(&format!("invariant gapless failed: {msg}"));
                return Err(msg);
            }
        }
    }
    Ok(c)
}

/// Both sequence invariants at once: no duplicates, no gaps.
///
/// # Errors
///
/// The first violated invariant's description.
pub fn check_exactly_once(reader: &StoreReader) -> Result<SeqCensus, String> {
    check_no_duplicates(reader)?;
    check_gapless(reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_logstore::{LogStore, MemBackend, StoreConfig};
    use dpm_meter::{MeterBody, MeterHeader, MeterMsg, MeterTermProc, TermReason};
    use std::sync::Arc;

    fn record(machine: u16, pid: u32, seq: u32) -> Vec<u8> {
        MeterMsg {
            header: MeterHeader {
                machine,
                seq,
                cpu_time: 10,
                ..MeterHeader::default()
            },
            body: MeterBody::TermProc(MeterTermProc {
                pid,
                pc: 0,
                reason: TermReason::Normal,
            }),
        }
        .encode()
    }

    fn store_with(records: &[Vec<u8>]) -> StoreReader {
        let backend = Arc::new(MemBackend::new());
        let store = LogStore::open(backend.clone(), "inv", StoreConfig::default());
        let mut w = store.writer(0);
        for r in records {
            w.append(r);
        }
        w.sync();
        StoreReader::load(backend.as_ref(), "inv")
    }

    #[test]
    fn clean_store_passes_both_invariants() {
        let reader = store_with(&[
            record(1, 100, 1),
            record(1, 100, 2),
            record(2, 100, 1), // same pid on another machine is distinct
            record(1, 101, 1),
            record(1, 100, 3),
        ]);
        let c = check_exactly_once(&reader).expect("clean store");
        assert_eq!(c.frames, 5);
        assert_eq!(c.skipped, 0);
        assert_eq!(c.seqs[&(1, 100)], vec![1, 2, 3]);
    }

    #[test]
    fn duplicate_seq_is_reported_with_coordinates() {
        let reader = store_with(&[record(1, 100, 1), record(1, 100, 2), record(1, 100, 2)]);
        let err = check_no_duplicates(&reader).unwrap_err();
        assert!(err.contains("machine 1 pid 100 seq 2"), "{err}");
        // Gaplessness treats the duplicate as one record and passes.
        check_gapless(&reader).expect("dup is not a gap");
    }

    #[test]
    fn gap_is_reported_and_unsequenced_records_are_exempt() {
        let reader = store_with(&[record(1, 100, 1), record(1, 100, 3), record(1, 200, 0)]);
        let err = check_gapless(&reader).unwrap_err();
        assert!(err.contains("expected seq 2, found 3"), "{err}");
        let c = check_no_duplicates(&reader).expect("no dups");
        assert_eq!(c.skipped, 1, "seq 0 is unsequenced and skipped");
    }
}
