//! Process-level fault executors: crashing and restarting a machine's
//! meterdaemon, and killing a controller for failover scenarios.
//!
//! Network and disk faults are injected passively through hook points;
//! killing a daemon or controller is an *action* a chaos scenario
//! performs at a chosen moment. These helpers find the victim by its
//! well-known program name (no pid-window guessing), kill it with an
//! uncatchable signal, and later respawn it as root — modelling a
//! machine whose monitor daemon dies and is restarted by init, or a
//! controller host that drops dead mid-session and whose jobs a
//! standby must adopt.

use std::sync::Arc;

use dpm_meterd::{meterd_main, METERD_PROGRAM};
use dpm_simos::{Cluster, Machine, Pid, RunState, Sig, Uid};

/// The program name controllers spawn under (their notification
/// listener forks as `control+`).
pub const CONTROLLER_PROGRAM: &str = "control";

/// Live (non-zombie) meterdaemon pids on `machine`.
fn live_daemons(machine: &Machine) -> Vec<Pid> {
    machine
        .procs_named(METERD_PROGRAM)
        .into_iter()
        .filter(|&pid| {
            machine
                .proc_state(pid)
                .is_some_and(|state| !state.is_dead())
        })
        .collect()
}

/// Kills every live meterdaemon on the named machine with `SIGKILL`
/// and returns the pids that were killed (empty if none was running).
/// The daemon's sockets close, so in-flight RPCs to it fail and
/// clients fall back to their retry policies — exactly the condition
/// the hardened RPC layer exists for.
///
/// # Panics
///
/// If the cluster has no machine with that name — a harness bug.
pub fn crash_daemon(cluster: &Arc<Cluster>, machine: &str) -> Vec<Pid> {
    let m = cluster
        .machine(machine)
        .unwrap_or_else(|| panic!("no machine named '{machine}'"));
    let pids = live_daemons(&m);
    for &pid in &pids {
        // `from: None` is the kernel itself: permission checks do not
        // apply, and `Sig::Kill` cannot be caught or ignored.
        let _ = m.signal(None, pid, Sig::Kill);
    }
    pids
}

/// Spawns a fresh meterdaemon on the named machine (as root, the uid
/// meterdaemons run under) and returns its pid. Call after
/// [`crash_daemon`] to model a daemon restart; the new daemon rebinds
/// the well-known port, re-registers with its filters, and serves the
/// same RPC surface — clients that kept retrying reconnect to it
/// transparently.
///
/// # Panics
///
/// If the cluster has no machine with that name, or a live daemon is
/// still running there (two daemons would fight over the port).
pub fn restart_daemon(cluster: &Arc<Cluster>, machine: &str) -> Pid {
    let m = cluster
        .machine(machine)
        .unwrap_or_else(|| panic!("no machine named '{machine}'"));
    assert!(
        live_daemons(&m).is_empty(),
        "meterdaemon already running on '{machine}'"
    );
    m.spawn_fn(METERD_PROGRAM, Uid::ROOT, None, true, |p| {
        meterd_main(p, Vec::new())
    })
}

/// Kills every live controller process on the named machine with
/// `SIGKILL` — both the parked `control` body and its forked
/// `control+` notification listener — and returns the pids killed.
/// The controller's control-log lease stops being renewed the moment
/// it dies; once the lease lapses (simulated time keeps advancing), a
/// standby's `Controller::adopt_from` takes the jobs over.
///
/// # Panics
///
/// If the cluster has no machine with that name — a harness bug.
pub fn crash_controller(cluster: &Arc<Cluster>, machine: &str) -> Vec<Pid> {
    let m = cluster
        .machine(machine)
        .unwrap_or_else(|| panic!("no machine named '{machine}'"));
    let mut pids: Vec<Pid> = [CONTROLLER_PROGRAM, "control+"]
        .iter()
        .flat_map(|name| m.procs_named(name))
        .filter(|&pid| m.proc_state(pid).is_some_and(|state| !state.is_dead()))
        .collect();
    pids.sort();
    pids.dedup();
    for &pid in &pids {
        let _ = m.signal(None, pid, Sig::Kill);
    }
    pids
}

/// Whether the named machine currently has a live meterdaemon.
///
/// # Panics
///
/// If the cluster has no machine with that name.
pub fn daemon_alive(cluster: &Arc<Cluster>, machine: &str) -> bool {
    let m = cluster
        .machine(machine)
        .unwrap_or_else(|| panic!("no machine named '{machine}'"));
    !live_daemons(&m).is_empty()
}

/// Blocks until the named machine's meterdaemon pid `pid` is a zombie
/// or gone. [`crash_daemon`] delivers the signal; the victim thread
/// still needs a beat to observe it.
pub fn await_daemon_death(cluster: &Arc<Cluster>, machine: &str, pid: Pid) {
    let m = cluster
        .machine(machine)
        .unwrap_or_else(|| panic!("no machine named '{machine}'"));
    loop {
        match m.proc_state(pid) {
            Some(RunState::Zombie(_)) | None => return,
            _ => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }
}
