//! Fault plans as pure data.
//!
//! A [`ChaosSpec`] says *what kinds* of faults may happen and how
//! often; paired with a seed (see [`crate::FaultPlan`]) it determines
//! *exactly which* events are hit. The spec is plain data with no
//! state, so the same `(seed, spec)` pair names the same failure
//! schedule forever — a failing run's banner line is enough to replay
//! it.

use std::fmt;

/// A one-way probability in `[0, 1]`, stored in basis points so the
/// spec is `Eq`/hashable and never subject to float drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Prob(u32);

impl Prob {
    /// A probability from a fraction (clamped to `[0, 1]`).
    pub fn new(p: f64) -> Prob {
        Prob((p.clamp(0.0, 1.0) * 10_000.0).round() as u32)
    }

    /// The probability in basis points (`0..=10_000`).
    pub fn basis_points(self) -> u32 {
        self.0
    }

    /// Whether this probability is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:02}%", self.0 / 100, self.0 % 100)
    }
}

/// A network partition between two named machines for a window of
/// virtual time. While the window is open, new connections between the
/// two are refused, datagrams between them are dropped, and bytes on
/// already-established streams are held back until the heal time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    /// One side (machine name).
    pub a: String,
    /// The other side (machine name).
    pub b: String,
    /// Window start, in virtual microseconds.
    pub from_us: u64,
    /// Window end (heal time), in virtual microseconds.
    pub until_us: u64,
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "part[{}-{}@{}..{}us]",
            self.a, self.b, self.from_us, self.until_us
        )
    }
}

/// Disk faults injected into a log store backend (see
/// [`crate::FaultyBackend`]). Counts are "every Nth append", 0 = off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DiskSpec {
    /// Every Nth append tears: a prefix of the data lands, then the
    /// call fails. 0 disables.
    pub torn_every: u32,
    /// Every Nth append fails cleanly with a transient I/O error and
    /// writes nothing. 0 disables.
    pub error_every: u32,
}

impl DiskSpec {
    /// Whether any disk fault is enabled.
    pub fn is_active(self) -> bool {
        self.torn_every > 0 || self.error_every > 0
    }
}

/// What kinds of faults to inject, and how often. Pure data: combine
/// with a seed via [`crate::FaultPlan`] to get a concrete, replayable
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ChaosSpec {
    /// Per-datagram drop probability.
    pub drop: Prob,
    /// Per-datagram duplication probability (the copy arrives later).
    pub duplicate: Prob,
    /// Per-datagram extra-delay probability.
    pub delay: Prob,
    /// Extra delay magnitude for delayed (and duplicated) datagrams,
    /// in virtual microseconds.
    pub delay_us: u64,
    /// Probability that a kernel meter-buffer flush is delivered
    /// twice (retransmission double).
    pub meter_dup: Prob,
    /// Partition windows between named machines.
    pub partitions: Vec<Partition>,
    /// Log store disk faults.
    pub disk: DiskSpec,
}

impl ChaosSpec {
    /// An empty spec (no faults).
    pub fn new() -> ChaosSpec {
        ChaosSpec::default()
    }

    /// Sets the datagram drop probability.
    #[must_use]
    pub fn drop(mut self, p: f64) -> ChaosSpec {
        self.drop = Prob::new(p);
        self
    }

    /// Sets the datagram duplication probability.
    #[must_use]
    pub fn duplicate(mut self, p: f64) -> ChaosSpec {
        self.duplicate = Prob::new(p);
        self
    }

    /// Sets the datagram extra-delay probability and magnitude.
    #[must_use]
    pub fn delay(mut self, p: f64, extra_us: u64) -> ChaosSpec {
        self.delay = Prob::new(p);
        self.delay_us = extra_us;
        self
    }

    /// Sets the meter-flush duplication probability.
    #[must_use]
    pub fn meter_dup(mut self, p: f64) -> ChaosSpec {
        self.meter_dup = Prob::new(p);
        self
    }

    /// Adds a partition window between machines `a` and `b`.
    #[must_use]
    pub fn partition(mut self, a: &str, b: &str, from_us: u64, until_us: u64) -> ChaosSpec {
        self.partitions.push(Partition {
            a: a.to_owned(),
            b: b.to_owned(),
            from_us,
            until_us,
        });
        self
    }

    /// Tears every Nth log store append.
    #[must_use]
    pub fn disk_torn_every(mut self, n: u32) -> ChaosSpec {
        self.disk.torn_every = n;
        self
    }

    /// Fails every Nth log store append cleanly.
    #[must_use]
    pub fn disk_error_every(mut self, n: u32) -> ChaosSpec {
        self.disk.error_every = n;
        self
    }
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if !self.drop.is_zero() {
            parts.push(format!("drop={}", self.drop));
        }
        if !self.duplicate.is_zero() {
            parts.push(format!("dup={}", self.duplicate));
        }
        if !self.delay.is_zero() {
            parts.push(format!("delay={}+{}us", self.delay, self.delay_us));
        }
        if !self.meter_dup.is_zero() {
            parts.push(format!("meterdup={}", self.meter_dup));
        }
        for p in &self.partitions {
            parts.push(p.to_string());
        }
        if self.disk.torn_every > 0 {
            parts.push(format!("torn={}", self.disk.torn_every));
        }
        if self.disk.error_every > 0 {
            parts.push(format!("diskerr={}", self.disk.error_every));
        }
        if parts.is_empty() {
            return f.write_str("no-faults");
        }
        f.write_str(&parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_clamp_and_print() {
        assert_eq!(Prob::new(0.5).basis_points(), 5000);
        assert_eq!(Prob::new(-1.0).basis_points(), 0);
        assert_eq!(Prob::new(7.0).basis_points(), 10_000);
        assert!(Prob::new(0.0).is_zero());
        assert_eq!(Prob::new(0.25).to_string(), "25.00%");
    }

    #[test]
    fn spec_builds_and_displays() {
        let s = ChaosSpec::new()
            .drop(0.1)
            .duplicate(0.05)
            .delay(0.2, 3000)
            .meter_dup(0.1)
            .partition("red", "blue", 1000, 5000)
            .disk_torn_every(3);
        let text = s.to_string();
        assert!(text.contains("drop=10.00%"), "{text}");
        assert!(text.contains("part[red-blue@1000..5000us]"), "{text}");
        assert_eq!(ChaosSpec::new().to_string(), "no-faults");
        // The spec is plain data: equal specs are equal.
        assert_eq!(s.clone(), s);
    }
}
