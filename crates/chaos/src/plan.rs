//! Seeded fault plans and the injector they produce.
//!
//! A [`FaultPlan`] binds a [`ChaosSpec`] to a seed and to the
//! cluster's machine roster. [`FaultPlan::injector`] turns the plan
//! into a [`ChaosInjector`] — an implementation of the simulated
//! kernel's [`FaultInjector`] hook trait whose every decision is a
//! pure hash of `(seed, event kind, link, per-link event counter)`.
//! Two injectors built from the same `(seed, spec, hosts)` make
//! identical decisions in identical order, so a failing chaos run is
//! replayed by quoting its seed and spec.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpm_simnet::{DgramFault, FaultInjector, HostId};
use parking_lot::Mutex;

use crate::spec::{ChaosSpec, Prob};

/// Event-kind tags fed into the decision hash so that e.g. the drop
/// decision and the duplicate decision for the same datagram are
/// independent coin flips.
const KIND_DROP: u8 = 1;
const KIND_DUP: u8 = 2;
const KIND_DELAY: u8 = 3;
const KIND_METER_DUP: u8 = 4;

/// A concrete, replayable fault schedule: a spec, a seed, and the
/// machine roster that partition names resolve against.
///
/// The plan itself is immutable data. Call [`FaultPlan::injector`] to
/// get the stateful decision-maker to install in a cluster (state is
/// only per-link event counters — the source of schedule determinism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    spec: ChaosSpec,
    hosts: Vec<String>,
}

impl FaultPlan {
    /// Builds a plan from a seed, a spec, and the machine names of the
    /// cluster **in builder order** — the simulated network assigns
    /// [`HostId`]s in the order machines are added, and partition
    /// windows name machines, so the roster is how the plan maps names
    /// to ids.
    pub fn new(seed: u64, spec: ChaosSpec, hosts: &[&str]) -> FaultPlan {
        FaultPlan {
            seed,
            spec,
            hosts: hosts.iter().map(|h| (*h).to_owned()).collect(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's spec.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// One line naming the plan — print this in test failures so the
    /// schedule can be replayed (`seed` + spec fully determine it).
    pub fn describe(&self) -> String {
        format!("chaos plan seed={} spec=[{}]", self.seed, self.spec)
    }

    /// The injector for this plan, ready to install via
    /// `ClusterBuilder::fault_injector` (or
    /// `SimulationBuilder::fault_injector`).
    ///
    /// # Panics
    ///
    /// If a partition in the spec names a machine missing from the
    /// plan's roster — that is a bug in the test, not a runtime
    /// condition, so it fails loudly at build time.
    pub fn injector(&self) -> Arc<ChaosInjector> {
        let resolve = |name: &str| -> HostId {
            let idx = self
                .hosts
                .iter()
                .position(|h| h == name)
                .unwrap_or_else(|| panic!("partition names unknown machine '{name}'"));
            HostId(idx as u32)
        };
        let windows = self
            .spec
            .partitions
            .iter()
            .map(|p| Window {
                a: resolve(&p.a),
                b: resolve(&p.b),
                from_us: p.from_us,
                until_us: p.until_us,
            })
            .collect();
        Arc::new(ChaosInjector {
            seed: self.seed,
            spec: self.spec.clone(),
            windows,
            counters: Mutex::new(HashMap::new()),
            tally: FaultTally::default(),
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A partition window with the machine names already resolved to ids.
#[derive(Debug, Clone, Copy)]
struct Window {
    a: HostId,
    b: HostId,
    from_us: u64,
    until_us: u64,
}

impl Window {
    /// Whether the window covers traffic between `x` and `y` (either
    /// direction) at virtual time `now_us`.
    fn covers(&self, x: HostId, y: HostId, now_us: u64) -> bool {
        let pair = (x == self.a && y == self.b) || (x == self.b && y == self.a);
        pair && (self.from_us..self.until_us).contains(&now_us)
    }
}

/// Running totals of faults actually fired, for test assertions:
/// "did this plan exercise anything?" is answerable without instru-
/// menting the system under test.
#[derive(Debug, Default)]
pub struct FaultTally {
    drops: AtomicU64,
    dups: AtomicU64,
    delays: AtomicU64,
    meter_dups: AtomicU64,
    blocked: AtomicU64,
}

impl FaultTally {
    /// Datagrams dropped (scripted drops plus partition drops).
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Datagrams duplicated.
    pub fn dups(&self) -> u64 {
        self.dups.load(Ordering::Relaxed)
    }

    /// Datagrams given extra delay.
    pub fn delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Meter flushes delivered twice.
    pub fn meter_dups(&self) -> u64 {
        self.meter_dups.load(Ordering::Relaxed)
    }

    /// Connections refused by partition windows.
    pub fn blocked_connects(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The stateful decision-maker a [`FaultPlan`] installs into a
/// cluster. Decisions are pure hashes of the seed, the event kind, the
/// link, and a per-`(kind, link)` event counter — never of wall-clock
/// time or thread interleaving — so the schedule is identical on every
/// run with the same plan.
pub struct ChaosInjector {
    seed: u64,
    spec: ChaosSpec,
    windows: Vec<Window>,
    /// Per-`(kind, src, dst)` event counters. A mutex (not atomics per
    /// key) because the map grows lazily; contention is negligible at
    /// simulation datagram rates.
    counters: Mutex<HashMap<(u8, u32, u32), u64>>,
    tally: FaultTally,
}

impl ChaosInjector {
    /// The next counter value for `(kind, src→dst)`. Events on one
    /// link are serialised by the simulated kernel, so the counter
    /// sequence — and therefore every decision — is deterministic.
    fn next_count(&self, kind: u8, src: HostId, dst: HostId) -> u64 {
        let mut counters = self.counters.lock();
        let n = counters.entry((kind, src.0, dst.0)).or_insert(0);
        let v = *n;
        *n += 1;
        v
    }

    /// Whether the `(kind, link, count)` event fires at probability
    /// `p`: splitmix64-style counter hash reduced modulo basis points.
    fn hit(&self, p: Prob, kind: u8, src: HostId, dst: HostId) -> bool {
        if p.is_zero() {
            return false;
        }
        let count = self.next_count(kind, src, dst);
        let h = mix(
            self.seed ^ (u64::from(kind) << 56),
            u64::from(src.0),
            u64::from(dst.0),
            count,
        );
        (h % 10_000) < u64::from(p.basis_points())
    }

    fn in_partition(&self, src: HostId, dst: HostId, now_us: u64) -> Option<Window> {
        self.windows
            .iter()
            .find(|w| w.covers(src, dst, now_us))
            .copied()
    }

    /// What this injector has actually fired so far. Scheduling is
    /// deterministic but *traffic* is not (a test may send more or
    /// fewer datagrams run to run), so the tally is for "the plan did
    /// something" assertions, not exact counts.
    pub fn tally(&self) -> &FaultTally {
        &self.tally
    }
}

impl FaultInjector for ChaosInjector {
    fn dgram_fault(&self, src: HostId, dst: HostId, now_us: u64) -> DgramFault {
        if self.in_partition(src, dst, now_us).is_some() {
            FaultTally::bump(&self.tally.drops);
            return DgramFault::Drop;
        }
        // Each fault class gets its own counter stream so adding one
        // probability never perturbs the schedule of another.
        if self.hit(self.spec.drop, KIND_DROP, src, dst) {
            FaultTally::bump(&self.tally.drops);
            return DgramFault::Drop;
        }
        if self.hit(self.spec.duplicate, KIND_DUP, src, dst) {
            FaultTally::bump(&self.tally.dups);
            return DgramFault::Duplicate {
                extra_us: self.spec.delay_us.max(1),
            };
        }
        if self.hit(self.spec.delay, KIND_DELAY, src, dst) {
            FaultTally::bump(&self.tally.delays);
            return DgramFault::Delay {
                extra_us: self.spec.delay_us.max(1),
            };
        }
        DgramFault::Pass
    }

    fn connect_blocked(&self, src: HostId, dst: HostId, now_us: u64) -> bool {
        let blocked = self.in_partition(src, dst, now_us).is_some();
        if blocked {
            FaultTally::bump(&self.tally.blocked);
        }
        blocked
    }

    fn stream_extra_us(&self, src: HostId, dst: HostId, now_us: u64) -> u64 {
        // Streams are reliable: a partition holds their bytes back
        // until the heal time instead of losing them.
        match self.in_partition(src, dst, now_us) {
            Some(w) => w.until_us.saturating_sub(now_us),
            None => 0,
        }
    }

    fn duplicate_meter_flush(&self, src: HostId, dst: HostId, _now_us: u64) -> bool {
        let dup = self.hit(self.spec.meter_dup, KIND_METER_DUP, src, dst);
        if dup {
            FaultTally::bump(&self.tally.meter_dups);
        }
        dup
    }
}

impl fmt::Debug for ChaosInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosInjector")
            .field("seed", &self.seed)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

/// A splitmix64-style avalanche over the four decision inputs. Not
/// cryptographic — just well-mixed enough that per-link event streams
/// look independent while staying a pure function of the inputs.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChaosSpec;

    const A: HostId = HostId(0);
    const B: HostId = HostId(1);
    const C: HostId = HostId(2);

    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(
            seed,
            ChaosSpec::new().drop(0.3).duplicate(0.2).delay(0.1, 500),
            &["red", "blue", "green"],
        )
    }

    #[test]
    fn same_plan_replays_the_same_schedule() {
        let x = lossy_plan(7).injector();
        let y = lossy_plan(7).injector();
        let seq_x: Vec<DgramFault> = (0..500).map(|t| x.dgram_fault(A, B, t)).collect();
        let seq_y: Vec<DgramFault> = (0..500).map(|t| y.dgram_fault(A, B, t)).collect();
        assert_eq!(seq_x, seq_y);
        assert!(seq_x.contains(&DgramFault::Drop), "30% drop never fired");
        assert!(
            seq_x
                .iter()
                .any(|f| matches!(f, DgramFault::Duplicate { .. })),
            "20% duplicate never fired"
        );
        // The tally mirrors what fired.
        let t = x.tally();
        assert!(t.drops() > 0 && t.dups() > 0 && t.delays() > 0);
        assert_eq!(t.meter_dups(), 0);
        assert_eq!(t.blocked_connects(), 0);
    }

    #[test]
    fn different_seeds_differ_and_links_are_independent() {
        let x = lossy_plan(7).injector();
        let z = lossy_plan(8).injector();
        let seq_x: Vec<DgramFault> = (0..500).map(|t| x.dgram_fault(A, B, t)).collect();
        let seq_z: Vec<DgramFault> = (0..500).map(|t| z.dgram_fault(A, B, t)).collect();
        assert_ne!(seq_x, seq_z, "seeds 7 and 8 produced identical schedules");
        // Counters are per-link: traffic on A→C does not perturb A→B.
        let w = lossy_plan(7).injector();
        let seq_w: Vec<DgramFault> = (0..500)
            .map(|t| {
                let _ = w.dgram_fault(A, C, t);
                w.dgram_fault(A, B, t)
            })
            .collect();
        assert_eq!(seq_x, seq_w);
    }

    #[test]
    fn partitions_block_both_directions_inside_the_window() {
        let plan = FaultPlan::new(
            1,
            ChaosSpec::new().partition("red", "blue", 1_000, 5_000),
            &["red", "blue", "green"],
        );
        let inj = plan.injector();
        assert!(!inj.connect_blocked(A, B, 999));
        assert!(inj.connect_blocked(A, B, 1_000));
        assert!(inj.connect_blocked(B, A, 4_999));
        assert!(!inj.connect_blocked(A, B, 5_000));
        assert!(!inj.connect_blocked(A, C, 3_000), "green is unaffected");
        assert_eq!(inj.dgram_fault(A, B, 3_000), DgramFault::Drop);
        assert_eq!(inj.dgram_fault(A, C, 3_000), DgramFault::Pass);
        // Stream bytes are delayed to the heal time, not dropped.
        assert_eq!(inj.stream_extra_us(A, B, 3_000), 2_000);
        assert_eq!(inj.stream_extra_us(A, B, 6_000), 0);
    }

    #[test]
    fn meter_dup_fires_at_its_own_rate() {
        let plan = FaultPlan::new(3, ChaosSpec::new().meter_dup(0.5), &["red", "blue"]);
        let inj = plan.injector();
        let hits = (0..200)
            .filter(|&t| inj.duplicate_meter_flush(A, B, t))
            .count();
        assert!(
            (60..140).contains(&hits),
            "50% dup rate wildly off: {hits}/200"
        );
        // Datagram hooks are untouched by a meter-dup-only spec.
        assert_eq!(inj.dgram_fault(A, B, 0), DgramFault::Pass);
    }

    #[test]
    fn unknown_partition_host_panics_at_build_time() {
        let plan = FaultPlan::new(
            1,
            ChaosSpec::new().partition("red", "mauve", 0, 1),
            &["red", "blue"],
        );
        let err = std::panic::catch_unwind(|| plan.injector());
        assert!(err.is_err());
    }

    #[test]
    fn describe_names_seed_and_spec() {
        let d = lossy_plan(42).describe();
        assert!(d.contains("seed=42"), "{d}");
        assert!(d.contains("drop=30.00%"), "{d}");
    }
}
