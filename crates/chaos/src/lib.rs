//! `dpm-chaos`: deterministic fault injection for the distributed
//! programs monitor.
//!
//! The monitor's whole value is what it reports when a distributed
//! program misbehaves — so the monitor itself must survive the same
//! weather: lost and duplicated datagrams, partitioned machines,
//! crashed meterdaemons, flaky disks. This crate scripts that weather
//! as **pure data**: a [`ChaosSpec`] names fault classes and rates, a
//! seed pins the exact schedule, and a [`FaultPlan`] (spec + seed +
//! machine roster) produces the stateful decision-makers the
//! simulation hooks consume. Same `(seed, spec)`, same faults, same
//! order — a failing chaos run is replayed from its one-line banner.
//!
//! Four fault surfaces:
//!
//! * **Network** — [`FaultPlan::injector`] yields a [`ChaosInjector`]
//!   implementing the simulated kernel's
//!   [`FaultInjector`](dpm_simnet::FaultInjector) hooks: per-datagram
//!   drop/duplicate/delay, partition windows that refuse connections
//!   and hold stream bytes until heal time, and meter-flush
//!   duplication (which the filter's sequence dedup must absorb).
//! * **Disk** — [`FaultyBackend`] wraps a log store backend and makes
//!   appends tear or fail on a counter schedule; the store's
//!   group-commit writer must heal.
//! * **Processes** — [`crash_daemon`]/[`restart_daemon`] kill and
//!   respawn a machine's meterdaemon; the hardened RPC layer
//!   (timeouts, bounded retry, idempotent request ids) and the
//!   controller's resync must ride it out. [`crash_controller`] kills
//!   a controller mid-session; the control log and lease takeover
//!   must let a standby adopt its jobs.
//! * **Verification** — the [`invariants`] module reads a store back
//!   and checks that faults never became corruption: no accepted
//!   record lost, none duplicated; and, for the control plane, that
//!   every accepted job reached exactly one terminal state, no filter
//!   was orphaned, and job ownership never overlapped
//!   ([`invariants::check_control_plane`]).
//!
//! ```
//! use dpm_chaos::{ChaosSpec, FaultPlan};
//!
//! let spec = ChaosSpec::new()
//!     .drop(0.05)
//!     .duplicate(0.02)
//!     .partition("red", "blue", 200_000, 900_000);
//! let plan = FaultPlan::new(42, spec, &["red", "blue", "green"]);
//! let injector = plan.injector(); // install via ClusterBuilder::fault_injector
//! println!("{}", plan.describe()); // quote this line to replay the run
//! # let _ = injector;
//! ```

#![warn(missing_docs)]

mod disk;
mod exec;
pub mod invariants;
mod plan;
mod spec;

pub use disk::{DiskFaultStats, FaultyBackend};
pub use exec::{
    await_daemon_death, crash_controller, crash_daemon, daemon_alive, restart_daemon,
    CONTROLLER_PROGRAM,
};
pub use plan::{ChaosInjector, FaultPlan, FaultTally};
pub use spec::{ChaosSpec, DiskSpec, Partition, Prob};
