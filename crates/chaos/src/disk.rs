//! Disk fault injection for the log store.
//!
//! [`FaultyBackend`] wraps any log store [`Backend`] and makes
//! [`Backend::try_append`] fail on a deterministic schedule: every Nth
//! append tears (a prefix of the data lands, then the call errors) or
//! fails cleanly. The group-commit writer is expected to heal torn
//! tails by reading the file back and truncating before retrying —
//! which is exactly what these faults exist to exercise.

use std::io;
use std::sync::Arc;

use dpm_logstore::Backend;
use parking_lot::Mutex;

use crate::spec::DiskSpec;

/// Running totals of what the backend injected, for test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskFaultStats {
    /// Appends attempted (including ones that failed).
    pub appends: u64,
    /// Appends that tore: a prefix was written, then the call failed.
    pub torn: u64,
    /// Appends that failed cleanly with nothing written.
    pub errors: u64,
}

/// A [`Backend`] decorator that injects torn writes and transient
/// append errors on a counter schedule from a [`DiskSpec`].
///
/// The schedule is a pure function of the append counter — append
/// number `k` tears iff `torn_every > 0 && k % torn_every == 0`
/// (1-based), and likewise for clean errors — so a single-writer
/// store sees the identical fault sequence on every run. Reads,
/// replacing writes, listing and sync pass through untouched: the
/// store must always be able to *heal*, only fresh appends are flaky.
pub struct FaultyBackend {
    inner: Arc<dyn Backend>,
    spec: DiskSpec,
    state: Mutex<DiskFaultStats>,
}

impl FaultyBackend {
    /// Wraps `inner` with the fault schedule in `spec`.
    pub fn new(inner: Arc<dyn Backend>, spec: DiskSpec) -> FaultyBackend {
        FaultyBackend {
            inner,
            spec,
            state: Mutex::new(DiskFaultStats::default()),
        }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> DiskFaultStats {
        *self.state.lock()
    }
}

impl Backend for FaultyBackend {
    fn append(&self, name: &str, data: &[u8]) {
        // The infallible path cannot report a fault; pass through so
        // index sidecars and non-chaos-aware callers stay correct.
        self.inner.append(name, data);
    }

    fn try_append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let (tear, fail) = {
            let mut st = self.state.lock();
            st.appends += 1;
            let k = st.appends;
            let tear =
                self.spec.torn_every > 0 && k.is_multiple_of(u64::from(self.spec.torn_every));
            // A torn write takes precedence over a clean error when the
            // schedules collide — it is the harder case to heal.
            let fail = !tear
                && self.spec.error_every > 0
                && k.is_multiple_of(u64::from(self.spec.error_every));
            if tear {
                st.torn += 1;
            }
            if fail {
                st.errors += 1;
            }
            (tear, fail)
        };
        if tear {
            self.inner.append(name, &data[..data.len() / 2]);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected torn write",
            ));
        }
        if fail {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient append error",
            ));
        }
        self.inner.try_append(name, data)
    }

    fn write(&self, name: &str, data: &[u8]) {
        self.inner.write(name, data);
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.read(name)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.list(prefix)
    }

    fn sync(&self, name: &str) {
        self.inner.sync(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_logstore::MemBackend;

    #[test]
    fn faults_fire_on_the_counter_schedule() {
        let inner = Arc::new(MemBackend::new());
        let spec = DiskSpec {
            torn_every: 3,
            error_every: 0,
        };
        let b = FaultyBackend::new(inner.clone(), spec);
        assert!(b.try_append("f", b"aabb").is_ok()); // 1
        assert!(b.try_append("f", b"ccdd").is_ok()); // 2
        let torn = b.try_append("f", b"eeff"); // 3: tears
        assert!(torn.is_err());
        // Half the torn payload landed — the healing path's job.
        assert_eq!(inner.read("f").unwrap(), b"aabbccddee");
        assert!(b.try_append("f", b"gg").is_ok()); // 4
        let st = b.stats();
        assert_eq!((st.appends, st.torn, st.errors), (4, 1, 0));
    }

    #[test]
    fn clean_errors_write_nothing_and_heal_paths_pass_through() {
        let inner = Arc::new(MemBackend::new());
        let spec = DiskSpec {
            torn_every: 0,
            error_every: 2,
        };
        let b = FaultyBackend::new(inner.clone(), spec);
        assert!(b.try_append("f", b"11").is_ok()); // 1
        assert!(b.try_append("f", b"22").is_err()); // 2: clean failure
        assert_eq!(inner.read("f").unwrap(), b"11");
        // Healing uses `write` (truncate/replace): never faulted.
        b.write("f", b"healed");
        assert_eq!(b.read("f").unwrap(), b"healed");
        assert_eq!(b.list(""), vec!["f".to_owned()]);
        b.sync("f");
        assert_eq!(b.stats().errors, 1);
    }

    #[test]
    fn torn_beats_error_when_schedules_collide() {
        let inner = Arc::new(MemBackend::new());
        let spec = DiskSpec {
            torn_every: 2,
            error_every: 2,
        };
        let b = FaultyBackend::new(inner, spec);
        assert!(b.try_append("f", b"xx").is_ok());
        assert!(b.try_append("f", b"yy").is_err());
        let st = b.stats();
        assert_eq!((st.torn, st.errors), (1, 0));
    }
}
