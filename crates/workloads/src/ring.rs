//! A datagram token ring.
//!
//! Each process binds a port and forwards a token datagram to its
//! successor for a number of laps. Because "the delivery of the
//! messages is not guaranteed" (§3.1), the holder retransmits the
//! token until its successor acknowledges; duplicates are suppressed
//! by the token's strictly decreasing hop count. A trace of this
//! workload exhibits exactly the lost-send records the analysis
//! crate's unmatched-send detector is for.

use crate::util::read_timeout;
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockName, SockType, SysError, SysResult};
use std::sync::Arc;

/// Base port; node `i` listens on `RING_PORT + i`.
pub const RING_PORT: u16 = 1900;

/// Retransmission timeout, virtual milliseconds.
const RETRANS_MS: u64 = 30;
/// How long a finished node lingers to re-acknowledge duplicates.
const LINGER_MS: u64 = 120;
/// Retransmissions of a *final* token (its holder has all its laps)
/// before concluding the successor acked, lingered out, and exited.
/// A successor cannot exit without having seen every token, so the
/// token is undelivered only if every one of these copies dropped.
const FINAL_RETRANS: u32 = 64;
/// Hard virtual-time deadline: a fault schedule that defeats the
/// protocol must surface as a visible failure, never a hung test.
const DEADLINE_MS: u64 = 60_000;

/// Ring node: args `[index, n_nodes, next_host, laps, starter]`.
///
/// The token carries the remaining hop count; each node decrements and
/// forwards it until the count reaches zero. The starter injects a
/// token worth `laps * n` hops.
///
/// # Errors
///
/// Propagates socket errors; `EINVAL` on bad arguments.
pub fn ring_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let index: u16 = arg(&args, 0).ok_or(SysError::Einval)?;
    let n: u16 = arg(&args, 1).ok_or(SysError::Einval)?;
    let next_host: String = args.get(2).cloned().ok_or(SysError::Einval)?;
    let laps: u32 = arg(&args, 3).unwrap_or(3);
    let starter = args.get(4).map(String::as_str) == Some("start");
    if n == 0 {
        return Err(SysError::Einval);
    }

    let sock = p.socket(Domain::Inet, SockType::Datagram)?;
    p.bind(sock, BindTo::Port(RING_PORT + index))?;
    let next_port = RING_PORT + (index + 1) % n;
    let next_hid = p.cluster().resolve_host(&next_host)?;
    let next = SockName::Inet {
        host: next_hid.0,
        port: next_port,
    };

    let total_hops = laps * n as u32;
    let deadline = u64::from(p.time_ms()) + DEADLINE_MS;
    let mut tokens_seen = 0u32;
    // Hop counts strictly decrease around the ring, so anything not
    // smaller than the last accepted token is a duplicate.
    let mut last_accepted = u32::MAX;
    let mut outgoing: Option<u32> = if starter { Some(total_hops) } else { None };

    'outer: loop {
        // Reliable forward of anything we owe our successor.
        if let Some(hops) = outgoing.take() {
            let mut attempts = 0u32;
            loop {
                p.sendto(sock, format!("token {hops}").as_bytes(), &next)?;
                attempts += 1;
                match read_timeout(&p, sock, 64, RETRANS_MS)? {
                    Some(data) if data == b"ack" => break,
                    Some(data) => {
                        // An interleaved (necessarily duplicate) token;
                        // ignore it — its sender will retransmit and we
                        // will acknowledge from the main loop.
                        let _ = data;
                    }
                    None => {} // timed out: retransmit
                }
                // On a final token the acks themselves may all have
                // been lost and the successor, done and lingered out,
                // gone: count enough unanswered copies as delivered
                // instead of retransmitting at a dead port forever.
                if tokens_seen >= laps && attempts >= FINAL_RETRANS {
                    break;
                }
                if u64::from(p.time_ms()) > deadline {
                    break 'outer;
                }
            }
            if tokens_seen >= laps {
                break 'outer;
            }
            continue;
        }

        // Wait for a token (the holder retransmits), but never past
        // the deadline — a blocking receive here is where a defeated
        // protocol would otherwise hang the run.
        let (data, src) = loop {
            match p.recvfrom_nb(sock, 64)? {
                Some(got) => break got,
                None => {
                    if u64::from(p.time_ms()) > deadline {
                        break 'outer;
                    }
                    p.sleep_ms(RETRANS_MS)?;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        };
        let Some(hops) = parse_token(&data) else {
            continue;
        };
        if let Some(src) = &src {
            p.sendto(sock, b"ack", src)?;
        }
        if hops >= last_accepted {
            continue; // duplicate
        }
        last_accepted = hops;
        tokens_seen += 1;
        p.compute_ms(1)?;
        if hops > 1 {
            outgoing = Some(hops - 1);
        } else if tokens_seen >= laps {
            break;
        }
    }

    // Linger: our final ack may have been lost; keep re-acknowledging
    // duplicate tokens until the ring has been quiet for a while.
    let mut quiet = 0u64;
    while quiet < LINGER_MS {
        match p.recvfrom_nb(sock, 64)? {
            Some((data, src)) => {
                quiet = 0;
                if parse_token(&data).is_some() {
                    if let Some(src) = src {
                        p.sendto(sock, b"ack", &src)?;
                    }
                }
            }
            None => {
                p.sleep_ms(5)?;
                quiet += 5;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }

    p.write(
        1,
        format!("node {index} saw {tokens_seen} tokens\n").as_bytes(),
    )?;
    Ok(())
}

fn parse_token(data: &[u8]) -> Option<u32> {
    let text = std::str::from_utf8(data).ok()?;
    text.strip_prefix("token ")?.trim().parse().ok()
}

fn arg<T: std::str::FromStr>(args: &[String], i: usize) -> Option<T> {
    args.get(i).and_then(|s| s.parse().ok())
}

/// Registers the ring program and installs `/bin/ring` everywhere.
pub fn register(cluster: &Arc<Cluster>) {
    cluster.register_program("ring", ring_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/ring", "ring");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::Uid;

    fn run_ring(net: NetConfig, laps: u32) -> Vec<String> {
        let c = Cluster::builder()
            .net(net)
            .seed(4)
            .machine("a")
            .machine("b")
            .machine("c")
            .build();
        register(&c);
        let hosts = ["a", "b", "c"];
        let mut pids = Vec::new();
        for i in 0..3u16 {
            let next = hosts[(i as usize + 1) % 3];
            let args: Vec<String> = vec![
                i.to_string(),
                "3".into(),
                next.into(),
                laps.to_string(),
                if i == 0 { "start".into() } else { "no".into() },
            ];
            let pid = c
                .spawn_user(hosts[i as usize], "ring", Uid(1), move |p| {
                    ring_main(p, args)
                })
                .unwrap();
            pids.push((hosts[i as usize], pid));
        }
        let mut outs = Vec::new();
        for (h, pid) in pids {
            let m = c.machine(h).unwrap();
            assert_eq!(m.wait_exit(pid), Some(dpm_meter::TermReason::Normal));
            outs.push(String::from_utf8_lossy(&m.console_output(pid).unwrap()).into_owned());
        }
        c.shutdown();
        outs
    }

    #[test]
    fn token_circulates_on_an_ideal_network() {
        let outs = run_ring(NetConfig::ideal(), 2);
        assert_eq!(outs[0].trim(), "node 0 saw 2 tokens");
        assert_eq!(outs[1].trim(), "node 1 saw 2 tokens");
        assert_eq!(outs[2].trim(), "node 2 saw 2 tokens");
    }

    #[test]
    fn token_survives_a_lossy_network_via_retransmission() {
        let outs = run_ring(NetConfig::lossy(), 2);
        for o in outs {
            assert!(o.contains("saw 2 tokens"), "every node finished: {o}");
        }
    }
}
