//! Synchronous Byzantine agreement with oral messages — OM(1),
//! tolerating one traitor among four generals — instrumented for the
//! trace checker.
//!
//! The commander (general 0) sends its order to every lieutenant in
//! round 1; each lieutenant relays what it received to every other
//! lieutenant in round 2 and then decides the majority of the values
//! it holds (missing values default to 1, the retreat-averse
//! convention). A traitor commander sends different orders to
//! different lieutenants; a traitor lieutenant relays the opposite of
//! what it received. With `n = 4 = 3f + 1` the loyal lieutenants
//! agree regardless, and when the commander is loyal they decide its
//! order — the two interactive-consistency conditions.
//!
//! Rounds are synchronized by virtual-time deadlines (the "reliably
//! detect the absence of a message" assumption of the oral-messages
//! model maps onto a timeout in the simulated cluster). Every message
//! is a length-beacon datagram (see [`dpm_analysis::properties`]):
//! round-1 orders encode `value * 16 + recipient`, round-2 relays
//! encode `value * 16 + relayer`, and each lieutenant's decision goes
//! out as a marker beacon to the dead [`MARKER_PORT`] — so agreement,
//! validity, the message-complexity bound, *and the traitor's
//! identity* are all recoverable from meter records alone.

use dpm_analysis::properties::{
    beacon_len, BYZ_PORT, KIND_BYZ_DECIDE, KIND_BYZ_R1, KIND_BYZ_R2, KIND_HELLO, MARKER_PORT,
};
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockName, SockType, SysError, SysResult};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Round-1 collection deadline, virtual ms after start.
const ROUND1_MS: u64 = 6_000;
/// Round-2 collection deadline, virtual ms after start.
const ROUND2_MS: u64 = 14_000;
/// Receive-poll step, virtual ms.
const POLL_MS: u64 = 2;
/// Retransmit interval for readiness HELLOs, virtual ms.
const HELLO_MS: u64 = 20;
/// Stop waiting for peer readiness after this long.
const BARRIER_GRACE_MS: u64 = 5_000;
/// The oral-messages default when a message is absent ("retreat" in
/// the paper's telling; 1 here so ties and silence are deterministic).
const DEFAULT_VALUE: u32 = 1;

fn beacon_bytes(kind: u32, payload: u32) -> Vec<u8> {
    let len = beacon_len(kind, payload) as usize;
    let mut bytes = format!("{kind} {payload} ").into_bytes();
    assert!(bytes.len() <= len, "beacon header exceeds its length");
    bytes.resize(len, b'.');
    bytes
}

fn parse_beacon(data: &[u8]) -> Option<(u32, u32)> {
    let text = std::str::from_utf8(data).ok()?;
    let mut it = text.split_whitespace();
    Some((it.next()?.parse().ok()?, it.next()?.parse().ok()?))
}

/// Byzantine general: args
/// `[index, n, order, traitor, host0 .. host_{n-1}]` where `order` is
/// the commander's value (0 or 1) and `traitor` is the treacherous
/// general's index (or any value `>= n` for an all-loyal run).
///
/// # Errors
///
/// Propagates socket errors; `EINVAL` on bad arguments.
pub fn byzantine_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let index: u32 = arg(&args, 0).ok_or(SysError::Einval)?;
    let n: u32 = arg(&args, 1).ok_or(SysError::Einval)?;
    let order: u32 = arg::<u32>(&args, 2).ok_or(SysError::Einval)? % 2;
    let traitor: u32 = arg(&args, 3).ok_or(SysError::Einval)?;
    if !(2..=16).contains(&n) || index >= n || args.len() < 4 + n as usize {
        return Err(SysError::Einval);
    }
    let hosts: Vec<String> = args[4..4 + n as usize].to_vec();

    let sock = p.socket(Domain::Inet, SockType::Datagram)?;
    p.bind(sock, BindTo::Port(BYZ_PORT + index as u16))?;
    let addr_of = |p: &Proc, j: u32| -> SysResult<SockName> {
        let hid = p.cluster().resolve_host(&hosts[j as usize])?;
        Ok(SockName::Inet {
            host: hid.0,
            port: BYZ_PORT + j as u16,
        })
    };
    let own_hid = p.cluster().resolve_host(&hosts[index as usize])?;
    let marker = SockName::Inet {
        host: own_hid.0,
        port: MARKER_PORT,
    };
    p.sendto(sock, &beacon_bytes(KIND_HELLO, index), &marker)?;
    let barrier_until = u64::from(p.time_ms()) + BARRIER_GRACE_MS;

    if index == 0 {
        // Readiness barrier: a datagram to a not-yet-bound port
        // silently vanishes, so the commander holds its orders until
        // every lieutenant has been heard from (hearing from j proves
        // j's socket is bound). HELLOs retransmit until then; they are
        // not protocol beacons, so the checker ignores them.
        let mut heard = std::collections::BTreeSet::new();
        let mut next_hello: u64 = 0;
        loop {
            let now = u64::from(p.time_ms());
            if heard.len() as u32 >= n - 1 || now >= barrier_until {
                break;
            }
            if now >= next_hello {
                for j in 1..n {
                    if !heard.contains(&j) {
                        p.sendto(sock, &beacon_bytes(KIND_HELLO, index), &addr_of(&p, j)?)?;
                    }
                }
                next_hello = now + HELLO_MS;
            }
            match p.recvfrom_nb(sock, 65_536)? {
                Some((data, src)) => {
                    if let (Some(j), Some(_)) = (peer_of(&src), parse_beacon(&data)) {
                        heard.insert(j);
                    }
                }
                None => {
                    p.sleep_ms(POLL_MS)?;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        }
        // Round 1. A traitor commander is two-faced — alternating
        // orders per lieutenant.
        for j in 1..n {
            let v = if traitor == 0 { (order + j) % 2 } else { order };
            p.sendto(
                sock,
                &beacon_bytes(KIND_BYZ_R1, v * 16 + j),
                &addr_of(&p, j)?,
            )?;
        }
        // Linger until the lieutenants are done relaying, so the job's
        // processes wind down together.
        let start = u64::from(p.time_ms());
        while u64::from(p.time_ms()) < start + ROUND1_MS {
            p.sleep_ms(20)?;
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        p.write(1, format!("commander ordered {order}\n").as_bytes())?;
        return Ok(());
    }

    // Lieutenant: wait until every other general has been heard from
    // (the same readiness barrier, folded into the main loop so an
    // early round-1 order is not lost), then collect the order
    // (round 1), relay it (round 2), collect the other lieutenants'
    // relays, decide by majority. Round deadlines run from the moment
    // the barrier resolves.
    let mut heard: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut next_hello: u64 = 0;
    let mut start: Option<u64> = None;
    let mut got_order: Option<u32> = None;
    let mut relays: BTreeMap<u32, u32> = BTreeMap::new();
    let mut relayed = false;
    let decided: u32;
    loop {
        let now = u64::from(p.time_ms());
        if start.is_none() {
            if heard.len() as u32 >= n - 1 || now >= barrier_until {
                start = Some(now);
            } else if now >= next_hello {
                for j in 0..n {
                    if j != index && !heard.contains(&j) {
                        p.sendto(sock, &beacon_bytes(KIND_HELLO, index), &addr_of(&p, j)?)?;
                    }
                }
                next_hello = now + HELLO_MS;
            }
        }
        if let Some(start) = start {
            if !relayed && (got_order.is_some() || now >= start + ROUND1_MS) {
                let v = got_order.unwrap_or(DEFAULT_VALUE);
                // A traitor lieutenant relays the opposite of what it
                // was told — the same lie to everyone (the checker
                // catches it by comparing relays against the
                // commander's order).
                let relay = if traitor == index { 1 - v } else { v };
                for j in 1..n {
                    if j != index {
                        p.sendto(
                            sock,
                            &beacon_bytes(KIND_BYZ_R2, relay * 16 + index),
                            &addr_of(&p, j)?,
                        )?;
                    }
                }
                relayed = true;
            }
            if relayed && (relays.len() as u32 == n - 2 || now >= start + ROUND2_MS) {
                let mut vals: Vec<u32> = vec![got_order.unwrap_or(DEFAULT_VALUE)];
                for j in 1..n {
                    if j != index {
                        vals.push(relays.get(&j).copied().unwrap_or(DEFAULT_VALUE));
                    }
                }
                let ones = vals.iter().filter(|&&v| v == 1).count();
                let d = u32::from(2 * ones >= vals.len());
                p.sendto(
                    sock,
                    &beacon_bytes(KIND_BYZ_DECIDE, d * 16 + index),
                    &marker,
                )?;
                decided = d;
                break;
            }
        }
        match p.recvfrom_nb(sock, 65_536)? {
            Some((data, src)) => {
                let Some(j) = peer_of(&src) else { continue };
                let Some((kind, payload)) = parse_beacon(&data) else {
                    continue;
                };
                // Any message proves the sender's socket is bound.
                heard.insert(j);
                match kind {
                    // First copy wins; duplicates injected by the
                    // network die here (their surplus receive stays
                    // in the trace for the checker).
                    KIND_BYZ_R1 if j == 0 && got_order.is_none() => {
                        got_order = Some((payload / 16) % 2);
                    }
                    KIND_BYZ_R2 if j != 0 => {
                        relays.entry(payload % 16).or_insert((payload / 16) % 2);
                    }
                    _ => {}
                }
            }
            None => {
                p.sleep_ms(POLL_MS)?;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }
    p.write(
        1,
        format!("lieutenant {index} decides {decided}\n").as_bytes(),
    )?;
    Ok(())
}

/// The general id of a datagram source, from its bound port.
fn peer_of(src: &Option<SockName>) -> Option<u32> {
    match src {
        Some(SockName::Inet { port, .. }) if *port >= BYZ_PORT => Some(u32::from(*port - BYZ_PORT)),
        _ => None,
    }
}

fn arg<T: std::str::FromStr>(args: &[String], i: usize) -> Option<T> {
    args.get(i).and_then(|s| s.parse().ok())
}

/// Registers the program and installs `/bin/byz` everywhere.
pub fn register(cluster: &Arc<Cluster>) {
    cluster.register_program("byz", byzantine_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/byz", "byz");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::Uid;

    fn run(order: u32, traitor: u32) -> Vec<String> {
        let hosts = ["a", "b", "c", "d"];
        let c = {
            let mut b = Cluster::builder().net(NetConfig::ideal()).seed(5);
            for h in hosts {
                b = b.machine(h);
            }
            b.build()
        };
        register(&c);
        let mut pids = Vec::new();
        for (i, h) in hosts.iter().enumerate() {
            let mut args: Vec<String> = vec![
                i.to_string(),
                "4".into(),
                order.to_string(),
                traitor.to_string(),
            ];
            args.extend(hosts.iter().map(|s| (*s).to_string()));
            let pid = c
                .spawn_user(h, "byz", Uid(1), move |p| byzantine_main(p, args))
                .unwrap();
            pids.push((*h, pid));
        }
        let mut outs = Vec::new();
        for (h, pid) in pids {
            let m = c.machine(h).unwrap();
            assert_eq!(m.wait_exit(pid), Some(dpm_meter::TermReason::Normal));
            outs.push(String::from_utf8_lossy(&m.console_output(pid).unwrap()).into_owned());
        }
        c.shutdown();
        outs
    }

    #[test]
    fn loyal_run_decides_the_commanders_order() {
        let outs = run(0, 99);
        for o in &outs[1..] {
            assert!(o.contains("decides 0"), "{o}");
        }
    }

    #[test]
    fn loyal_lieutenants_agree_despite_a_traitor_lieutenant() {
        let outs = run(1, 2);
        assert!(outs[1].contains("decides 1"), "{}", outs[1]);
        assert!(outs[3].contains("decides 1"), "{}", outs[3]);
    }

    #[test]
    fn loyal_lieutenants_agree_despite_a_traitor_commander() {
        // Two-faced orders for order=1 are 0,1,0 — every lieutenant
        // holds one 1 and two 0s, so all agree on 0.
        let outs = run(1, 0);
        for o in &outs[1..] {
            assert!(o.contains("decides 0"), "{o}");
        }
    }
}
