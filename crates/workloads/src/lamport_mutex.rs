//! Lamport's distributed mutual exclusion, instrumented for the
//! trace checker.
//!
//! The algorithm is the one from *Time, Clocks, and the Ordering of
//! Events* — the very paper the monitor's happens-before analysis
//! implements (§4.1 cites it): every participant broadcasts a
//! timestamped REQUEST, replies to every request it hears, enters the
//! critical section when its own request heads the `(ts, id)`-ordered
//! queue and it holds a later-stamped message from every peer, and
//! broadcasts RELEASE on exit. Clocks tick on request issue and
//! request receipt, which is enough for the standard safety proof and
//! keeps timestamps small.
//!
//! Every protocol message is a *beacon* datagram (see
//! [`dpm_analysis::properties`]): its length encodes the message kind
//! and the request key, so the meter's `msgLength` field carries the
//! protocol step into the trace. Critical-section entry and exit are
//! marker beacons sent to the dead [`MARKER_PORT`] on the sender's own
//! machine. The message text itself carries the protocol fields
//! (clock stamp, per-peer sequence number) padded out to the beacon
//! length — the *receiver* reads the text, the *checker* reads only
//! lengths.
//!
//! Channels are made FIFO (which Lamport assumes) by a per-peer
//! sequence layer: each message carries a sequence number, receivers
//! deliver in order and drop duplicates. There are no retransmits: a
//! datagram lost by the network stays lost, the protocol stalls, and
//! the run ends at a virtual-time deadline — deliberately, so that an
//! injected fault survives into the trace for the checker to
//! localize instead of being papered over.

use dpm_analysis::properties::{
    beacon_len, KIND_CS_ENTER, KIND_CS_EXIT, KIND_HELLO, KIND_RELEASE, KIND_REPLY, KIND_REQ,
    MARKER_PORT, MUTEX_PORT,
};
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockName, SockType, SysError, SysResult};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Give up this long (virtual ms) after start even if rounds remain —
/// under injected partitions the protocol legitimately stalls, and a
/// graceful exit leaves a partial trace for the checker.
const DEADLINE_MS: u64 = 30_000;
/// Receive-poll step, virtual ms.
const POLL_MS: u64 = 2;
/// Retransmit interval for readiness HELLOs, virtual ms.
const HELLO_MS: u64 = 20;
/// Stop waiting for peer readiness after this long: under a from-boot
/// partition the protocol must still issue requests, so that their
/// loss reaches the trace for the checker to localize.
const BARRIER_GRACE_MS: u64 = 5_000;

/// A parsed protocol message: kind, payload (request key), sender's
/// clock stamp, per-channel sequence number.
struct Msg {
    kind: u32,
    payload: u32,
    stamp: u64,
}

/// Builds the wire bytes: protocol fields as text, padded with `.` to
/// the beacon length that encodes `(kind, payload)`.
fn beacon_bytes(kind: u32, payload: u32, stamp: u64, seq: u64) -> Vec<u8> {
    let len = beacon_len(kind, payload) as usize;
    let mut bytes = format!("{kind} {payload} {stamp} {seq} ").into_bytes();
    assert!(bytes.len() <= len, "beacon header exceeds its length");
    bytes.resize(len, b'.');
    bytes
}

fn parse_beacon(data: &[u8]) -> Option<(Msg, u64)> {
    let text = std::str::from_utf8(data).ok()?;
    let mut it = text.split_whitespace();
    let kind = it.next()?.parse().ok()?;
    let payload = it.next()?.parse().ok()?;
    let stamp = it.next()?.parse().ok()?;
    let seq = it.next()?.parse().ok()?;
    Some((
        Msg {
            kind,
            payload,
            stamp,
        },
        seq,
    ))
}

/// Per-peer FIFO state: outgoing sequence counter, next expected
/// incoming sequence, and a reorder buffer.
#[derive(Default)]
struct Channel {
    seq_out: u64,
    next_in: u64,
    buffer: BTreeMap<u64, Msg>,
}

/// Lamport-mutex node: args
/// `[index, n, rounds, host0 .. host_{n-1}, gap_ms?]`.
///
/// Node `index` runs on `host_index`, binds `MUTEX_PORT + index`, and
/// enters the critical section `rounds` times. The optional trailing
/// `gap_ms` sleeps that long between a node's successive requests —
/// it stretches the run so an injected fault window can land
/// mid-protocol.
///
/// # Errors
///
/// Propagates socket errors; `EINVAL` on bad arguments.
pub fn lamport_mutex_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let index: u32 = arg(&args, 0).ok_or(SysError::Einval)?;
    let n: u32 = arg(&args, 1).ok_or(SysError::Einval)?;
    let rounds: u32 = arg(&args, 2).unwrap_or(2);
    if n == 0 || n > 16 || index >= n || args.len() < 3 + n as usize {
        return Err(SysError::Einval);
    }
    let hosts: Vec<String> = args[3..3 + n as usize].to_vec();
    let gap_ms: u64 = arg(&args, 3 + n as usize).unwrap_or(0);

    let sock = p.socket(Domain::Inet, SockType::Datagram)?;
    p.bind(sock, BindTo::Port(MUTEX_PORT + index as u16))?;
    let mut peer_addr: BTreeMap<u32, SockName> = BTreeMap::new();
    for (j, host) in hosts.iter().enumerate() {
        let j = j as u32;
        if j != index {
            let hid = p.cluster().resolve_host(host)?;
            peer_addr.insert(
                j,
                SockName::Inet {
                    host: hid.0,
                    port: MUTEX_PORT + j as u16,
                },
            );
        }
    }
    let own_hid = p.cluster().resolve_host(&hosts[index as usize])?;
    let marker = SockName::Inet {
        host: own_hid.0,
        port: MARKER_PORT,
    };

    // Markers need no FIFO layer (they are never received); their
    // "sequence" slot carries the entry count for human readers.
    p.sendto(sock, &beacon_bytes(KIND_HELLO, index, 0, 0), &marker)?;

    let mut clock: u64 = 0;
    let mut queue: BTreeSet<(u64, u32)> = BTreeSet::new();
    let mut max_stamp: BTreeMap<u32, u64> = peer_addr.keys().map(|&j| (j, 0)).collect();
    let mut releases_seen: BTreeMap<u32, u32> = peer_addr.keys().map(|&j| (j, 0)).collect();
    let mut chans: BTreeMap<u32, Channel> =
        peer_addr.keys().map(|&j| (j, Channel::default())).collect();
    let mut own_req: Option<u64> = None;
    let mut entered = 0u32;
    let mut ready: BTreeSet<u32> = BTreeSet::new();
    let mut next_hello: u64 = 0;
    let barrier_until = u64::from(p.time_ms()) + BARRIER_GRACE_MS;
    let deadline = u64::from(p.time_ms()) + DEADLINE_MS;

    loop {
        // Readiness barrier: a datagram to a not-yet-bound port
        // silently vanishes (UDP semantics), so requests wait until
        // every peer has been heard from — hearing from j proves j's
        // socket is bound. HELLOs retransmit until then; they are not
        // protocol beacons, so the checker's message bound and fault
        // localization ignore them. The grace deadline keeps a
        // from-boot partition from muting the protocol entirely.
        let now = u64::from(p.time_ms());
        let barrier_done = ready.len() == peer_addr.len() || now >= barrier_until;
        if !barrier_done && now >= next_hello {
            for (&j, addr) in &peer_addr {
                if !ready.contains(&j) {
                    p.sendto(sock, &beacon_bytes(KIND_HELLO, index, 0, 0), addr)?;
                }
            }
            next_hello = now + HELLO_MS;
        }

        // Issue the next request.
        if barrier_done && own_req.is_none() && entered < rounds {
            clock += 1;
            let ts = clock;
            // The beacon payload is ts*16+index; the encoding bounds
            // the timestamp. Clocks only tick on request events, so
            // this is ~n*rounds, far below the bound.
            assert!(ts < 375, "timestamp outgrew the beacon encoding");
            queue.insert((ts, index));
            own_req = Some(ts);
            let key = ts as u32 * 16 + index;
            for (&j, addr) in &peer_addr {
                let ch = chans.get_mut(&j).expect("channel");
                p.sendto(sock, &beacon_bytes(KIND_REQ, key, clock, ch.seq_out), addr)?;
                ch.seq_out += 1;
            }
        }

        // Try to enter: head of the queue, later stamp from everyone.
        if let Some(ts) = own_req {
            let head = queue.iter().next() == Some(&(ts, index));
            if head && max_stamp.values().all(|&s| s > ts) {
                let key = ts as u32 * 16 + index;
                p.sendto(
                    sock,
                    &beacon_bytes(KIND_CS_ENTER, key, clock, u64::from(entered)),
                    &marker,
                )?;
                p.compute_ms(2)?;
                p.sendto(
                    sock,
                    &beacon_bytes(KIND_CS_EXIT, key, clock, u64::from(entered)),
                    &marker,
                )?;
                queue.remove(&(ts, index));
                own_req = None;
                entered += 1;
                for (&j, addr) in &peer_addr {
                    let ch = chans.get_mut(&j).expect("channel");
                    p.sendto(
                        sock,
                        &beacon_bytes(KIND_RELEASE, key, clock, ch.seq_out),
                        addr,
                    )?;
                    ch.seq_out += 1;
                }
                if gap_ms > 0 && entered < rounds {
                    p.sleep_ms(gap_ms)?;
                }
            }
        }

        // Done when our rounds are in and every peer has released its
        // last round (nobody can still need our stamps after that).
        if entered >= rounds && releases_seen.values().all(|&r| r >= rounds) {
            break;
        }
        if u64::from(p.time_ms()) >= deadline {
            break;
        }

        // Receive: sequence-reassemble per peer, then process in FIFO
        // order. Duplicates (seq already delivered) are dropped here —
        // the meter has already recorded the surplus receive, which is
        // exactly how the checker sees the duplication.
        match p.recvfrom_nb(sock, 65_536)? {
            Some((data, src)) => {
                let Some(j) = peer_of(&src) else { continue };
                let Some((msg, seq)) = parse_beacon(&data) else {
                    continue;
                };
                // Any message proves the sender is up; HELLOs carry
                // nothing else and bypass the sequence layer.
                ready.insert(j);
                if msg.kind == KIND_HELLO {
                    continue;
                }
                let Some(ch) = chans.get_mut(&j) else {
                    continue;
                };
                if seq >= ch.next_in {
                    ch.buffer.insert(seq, msg);
                }
                loop {
                    // Deliver in sequence order; stop at the first gap.
                    let msg = {
                        let ch = chans.get_mut(&j).expect("channel");
                        let next = ch.next_in;
                        match ch.buffer.remove(&next) {
                            Some(m) => {
                                ch.next_in += 1;
                                m
                            }
                            None => break,
                        }
                    };
                    max_stamp.entry(j).and_modify(|s| *s = (*s).max(msg.stamp));
                    match msg.kind {
                        KIND_REQ => {
                            let (ts, id) = (u64::from(msg.payload / 16), msg.payload % 16);
                            clock = clock.max(ts) + 1;
                            queue.insert((ts, id));
                            let ch = chans.get_mut(&j).expect("channel");
                            let reply = beacon_bytes(KIND_REPLY, msg.payload, clock, ch.seq_out);
                            ch.seq_out += 1;
                            p.sendto(sock, &reply, &peer_addr[&j])?;
                        }
                        KIND_RELEASE => {
                            let (ts, id) = (u64::from(msg.payload / 16), msg.payload % 16);
                            queue.remove(&(ts, id));
                            releases_seen.entry(j).and_modify(|r| *r += 1);
                        }
                        _ => {} // REPLY carries only its stamp.
                    }
                }
            }
            None => {
                p.sleep_ms(POLL_MS)?;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }

    p.write(
        1,
        format!("node {index} entered {entered}/{rounds}\n").as_bytes(),
    )?;
    Ok(())
}

/// The algorithm id of a datagram source, from its bound port.
fn peer_of(src: &Option<SockName>) -> Option<u32> {
    match src {
        Some(SockName::Inet { port, .. }) if *port >= MUTEX_PORT => {
            Some(u32::from(*port - MUTEX_PORT))
        }
        _ => None,
    }
}

fn arg<T: std::str::FromStr>(args: &[String], i: usize) -> Option<T> {
    args.get(i).and_then(|s| s.parse().ok())
}

/// Registers the program and installs `/bin/lmutex` everywhere.
pub fn register(cluster: &Arc<Cluster>) {
    cluster.register_program("lmutex", lamport_mutex_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/lmutex", "lmutex");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::Uid;

    #[test]
    fn all_nodes_complete_their_rounds_on_an_ideal_network() {
        let hosts = ["a", "b", "c", "d"];
        let c = {
            let mut b = Cluster::builder().net(NetConfig::ideal()).seed(9);
            for h in hosts {
                b = b.machine(h);
            }
            b.build()
        };
        register(&c);
        let mut pids = Vec::new();
        for (i, h) in hosts.iter().enumerate() {
            let mut args: Vec<String> = vec![i.to_string(), "4".into(), "2".into()];
            args.extend(hosts.iter().map(|s| (*s).to_string()));
            let pid = c
                .spawn_user(h, "lmutex", Uid(1), move |p| lamport_mutex_main(p, args))
                .unwrap();
            pids.push((*h, pid));
        }
        for (h, pid) in pids {
            let m = c.machine(h).unwrap();
            assert_eq!(m.wait_exit(pid), Some(dpm_meter::TermReason::Normal));
            let out = String::from_utf8_lossy(&m.console_output(pid).unwrap()).into_owned();
            assert!(out.contains("entered 2/2"), "node on {h}: {out}");
        }
        c.shutdown();
    }
}
