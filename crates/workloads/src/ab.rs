//! The Appendix-B computation: processes `A` and `B`.
//!
//! The paper's example session (§4.4, Appendix B) creates a job `foo`
//! with process `A` on machine red and process `B` on machine green,
//! meters `send receive fork accept connect`, starts the job, and
//! waits for both to terminate normally. These are the two programs.
//!
//! `B` is a small server: it binds a port, accepts one connection, and
//! echoes messages until end-of-file. `A` connects to `B`, exchanges a
//! number of request/reply rounds, and exits. `A` also forks a child
//! that computes briefly, so the session's `fork` flag has something
//! to record.

use crate::util::{connect_retry, write_line};
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockType, SysError, SysResult};
use std::sync::Arc;

/// Default port `B` listens on.
pub const B_PORT: u16 = 1700;

/// Program `A`: args `[b_host] [port] [rounds]` (defaults: `green`,
/// 1700, 5).
///
/// # Errors
///
/// Propagates socket errors; fails if `B` never comes up.
pub fn a_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let host = args.first().map_or("green", String::as_str).to_owned();
    let port: u16 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(B_PORT);
    let rounds: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    // Fork a helper so the fork flag of the Appendix-B session has an
    // event to record.
    let child = p.fork_with(|c| {
        c.compute_ms(3)?;
        Ok(())
    })?;

    let s = connect_retry(&p, &host, port, 200)?;
    for i in 0..rounds {
        write_line(&p, s, &format!("request {i}"))?;
        let reply = p.read_line(s)?.ok_or(SysError::Epipe)?;
        if reply != format!("echo: request {i}") {
            return Err(SysError::Einval);
        }
        p.compute_ms(2)?;
    }
    p.close(s)?;
    let _ = p.wait_child()?;
    let _ = child;
    p.write(1, b"A done\n")?;
    Ok(())
}

/// Program `B`: args `[port]` (default 1700). Accepts one connection
/// and echoes lines until end-of-file.
///
/// # Errors
///
/// Propagates socket errors.
pub fn b_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let port: u16 = args.first().and_then(|s| s.parse().ok()).unwrap_or(B_PORT);
    let s = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(s, BindTo::Port(port))?;
    p.listen(s, 4)?;
    let (conn, _peer) = p.accept(s)?;
    while let Some(line) = p.read_line(conn)? {
        p.compute_ms(1)?;
        write_line(&p, conn, &format!("echo: {line}"))?;
    }
    p.close(conn)?;
    p.write(1, b"B done\n")?;
    Ok(())
}

/// Registers `A` and `B` and installs `/bin/A` on red-like machines
/// and `/bin/B` everywhere (the controller will `rcp` as needed).
pub fn register(cluster: &Arc<Cluster>) {
    cluster.register_program("A", a_main);
    cluster.register_program("B", b_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/A", "A");
        cluster.install_program_file(&name, "/bin/B", "B");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::Uid;

    #[test]
    fn a_and_b_run_to_completion() {
        let c = Cluster::builder()
            .net(NetConfig::lan())
            .seed(5)
            .machine("red")
            .machine("green")
            .build();
        register(&c);
        let b = c
            .spawn_user("green", "B", Uid(1), |p| b_main(p, vec![]))
            .unwrap();
        let a = c
            .spawn_user("red", "A", Uid(1), |p| a_main(p, vec![]))
            .unwrap();
        assert_eq!(
            c.machine("red").unwrap().wait_exit(a),
            Some(dpm_meter::TermReason::Normal)
        );
        assert_eq!(
            c.machine("green").unwrap().wait_exit(b),
            Some(dpm_meter::TermReason::Normal)
        );
        let out = c.machine("red").unwrap().console_output(a).unwrap();
        assert_eq!(String::from_utf8_lossy(&out), "A done\n");
        c.shutdown();
    }
}
