//! A staged stream pipeline.
//!
//! Stage `i` accepts a connection from stage `i-1`, transforms each
//! item (charging CPU for the transformation), and forwards it to
//! stage `i+1`. The first stage generates items; the last consumes
//! them. Monitoring a pipeline was the motivating shape for the
//! paper's *measurement of parallelism*: once the pipe fills, all
//! stages are busy concurrently, and the trace's `procTime` deltas
//! show it.

use crate::util::{connect_retry, write_line};
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockType, SysError, SysResult};
use std::sync::Arc;

/// Base port; stage `i` (for `i > 0`) listens on `PIPE_PORT + i`.
pub const PIPE_PORT: u16 = 2100;

/// Pipeline stage: args `[index, n_stages, next_host, n_items,
/// work_ms]`.
///
/// * stage 0 generates `n_items` items and sends them downstream;
/// * stages `1..n-1` listen on `PIPE_PORT + index`, transform, and
///   forward;
/// * stage `n-1` consumes and reports the item count on stdout.
///
/// # Errors
///
/// Propagates socket errors; `EINVAL` on bad arguments.
pub fn stage_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let index: u16 = arg(&args, 0).ok_or(SysError::Einval)?;
    let n_stages: u16 = arg(&args, 1).ok_or(SysError::Einval)?;
    let next_host: String = args.get(2).cloned().unwrap_or_default();
    let n_items: u32 = arg(&args, 3).unwrap_or(20);
    let work_ms: u64 = arg(&args, 4).unwrap_or(2);
    let last = index == n_stages - 1;

    // Upstream side (everyone but stage 0).
    let upstream = if index > 0 {
        let l = p.socket(Domain::Inet, SockType::Stream)?;
        p.bind(l, BindTo::Port(PIPE_PORT + index))?;
        p.listen(l, 1)?;
        let (conn, _) = p.accept(l)?;
        Some(conn)
    } else {
        None
    };

    // Downstream side (everyone but the last stage).
    let downstream = if !last {
        Some(connect_retry(&p, &next_host, PIPE_PORT + index + 1, 300)?)
    } else {
        None
    };

    let mut processed = 0u32;
    if let Some(up) = upstream {
        while let Some(line) = p.read_line(up)? {
            p.compute_ms(work_ms)?;
            processed += 1;
            if let Some(down) = downstream {
                write_line(&p, down, &format!("{line}+s{index}"))?;
            }
        }
        p.close(up)?;
    } else {
        // Stage 0: the generator.
        let down = downstream.ok_or(SysError::Einval)?;
        for i in 0..n_items {
            p.compute_ms(work_ms)?;
            write_line(&p, down, &format!("item{i}"))?;
            processed += 1;
        }
    }
    if let Some(down) = downstream {
        p.close(down)?;
    }
    if last {
        p.write(1, format!("sink got {processed} items\n").as_bytes())?;
    }
    Ok(())
}

fn arg<T: std::str::FromStr>(args: &[String], i: usize) -> Option<T> {
    args.get(i).and_then(|s| s.parse().ok())
}

/// Registers the stage program and installs `/bin/stage` everywhere.
pub fn register(cluster: &Arc<Cluster>) {
    cluster.register_program("stage", stage_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/stage", "stage");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::Uid;

    #[test]
    fn three_stage_pipeline_passes_every_item() {
        let c = Cluster::builder()
            .net(NetConfig::lan())
            .seed(6)
            .machine("a")
            .machine("b")
            .machine("c")
            .build();
        register(&c);
        let hosts = ["a", "b", "c"];
        let mut sink = None;
        for i in 0..3u16 {
            let next = if i < 2 { hosts[i as usize + 1] } else { "" };
            let args: Vec<String> = vec![
                i.to_string(),
                "3".into(),
                next.into(),
                "15".into(),
                "1".into(),
            ];
            let pid = c
                .spawn_user(hosts[i as usize], "stage", Uid(1), move |p| {
                    stage_main(p, args)
                })
                .unwrap();
            if i == 2 {
                sink = Some(pid);
            }
        }
        let m = c.machine("c").unwrap();
        let sink = sink.unwrap();
        assert_eq!(m.wait_exit(sink), Some(dpm_meter::TermReason::Normal));
        let out = String::from_utf8_lossy(&m.console_output(sink).unwrap()).into_owned();
        assert_eq!(out.trim(), "sink got 15 items");
        c.shutdown();
    }
}
