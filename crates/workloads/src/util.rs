//! Small helpers shared by the workload programs.

use dpm_simos::{connect_backoff, Backoff, Fd, Proc, SysResult};

/// Connects a fresh stream socket to `(host, port)`, retrying while
/// the server side is still coming up — the standard dance for a
/// computation whose processes all start at once (`startjob` starts
/// every process; nothing orders server `listen` before client
/// `connect`). Built on the shared bounded-backoff policy
/// ([`dpm_simos::Backoff`]) rather than a fixed-interval spin: delays
/// double from 5 ms up to a cap, so a late server is found quickly and
/// a dead one is reported after at most `tries` attempts.
///
/// # Errors
///
/// `ECONNREFUSED` after `tries` attempts; other errors immediately.
pub fn connect_retry(p: &Proc, host: &str, port: u16, tries: u32) -> SysResult<Fd> {
    connect_backoff(p, host, port, Backoff::new(tries, 5, 160))
}

/// Receives on a socket with a virtual-time deadline: polls
/// non-blocking reads, advancing virtual time between polls so that
/// timeouts make progress even when every process is waiting (the
/// discrete-event equivalent of an alarm clock). Returns `None` on
/// timeout.
///
/// # Errors
///
/// Read errors propagate.
pub fn read_timeout(p: &Proc, fd: Fd, max: usize, timeout_ms: u64) -> SysResult<Option<Vec<u8>>> {
    let step = 2;
    let mut waited = 0;
    loop {
        if let Some(data) = p.read_nb(fd, max)? {
            return Ok(Some(data));
        }
        if waited >= timeout_ms {
            return Ok(None);
        }
        p.sleep_ms(step)?;
        waited += step;
        // Yield real CPU so other simulated processes run; a tiny real
        // sleep keeps polling loops from starving busy threads.
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
}

/// Writes a `\n`-terminated text line.
///
/// # Errors
///
/// Write errors propagate.
pub fn write_line(p: &Proc, fd: Fd, line: &str) -> SysResult<()> {
    let mut bytes = line.as_bytes().to_vec();
    bytes.push(b'\n');
    p.write(fd, &bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::{BindTo, Cluster, Domain, SockType, Uid};

    #[test]
    fn connect_retry_waits_for_the_listener() {
        let c = Cluster::builder()
            .net(NetConfig::ideal())
            .machine("a")
            .machine("b")
            .build();
        let server = c
            .spawn_user("b", "late-server", Uid(1), |p| {
                // Come up late.
                p.sleep_ms(50)?;
                let s = p.socket(Domain::Inet, SockType::Stream)?;
                p.bind(s, BindTo::Port(900))?;
                p.listen(s, 1)?;
                let (conn, _) = p.accept(s)?;
                p.write(conn, b"ok")?;
                Ok(())
            })
            .unwrap();
        let client = c
            .spawn_user("a", "client", Uid(1), |p| {
                let s = connect_retry(&p, "b", 900, 100)?;
                assert_eq!(p.read(s, 10)?, b"ok");
                Ok(())
            })
            .unwrap();
        assert_eq!(
            c.machine("a").unwrap().wait_exit(client),
            Some(dpm_meter::TermReason::Normal)
        );
        c.machine("b").unwrap().wait_exit(server);
        c.shutdown();
    }

    #[test]
    fn read_timeout_times_out_in_virtual_time() {
        let c = Cluster::builder()
            .net(NetConfig::ideal())
            .machine("a")
            .build();
        let pid = c
            .spawn_user("a", "t", Uid(1), |p| {
                let s = p.socket(Domain::Inet, SockType::Datagram)?;
                p.bind(s, BindTo::Port(1))?;
                let before = p.time_ms();
                let got = read_timeout(&p, s, 10, 40)?;
                assert!(got.is_none());
                assert!(p.time_ms() >= before + 40, "virtual time advanced");
                Ok(())
            })
            .unwrap();
        assert_eq!(
            c.machine("a").unwrap().wait_exit(pid),
            Some(dpm_meter::TermReason::Normal)
        );
        c.shutdown();
    }
}
