//! Distributed programs to monitor.
//!
//! The measurement tools are only interesting when pointed at real
//! computations; this crate supplies the ones the paper used or
//! motivates, each written against the simulated kernel's system-call
//! interface (so they can be created by the meterdaemons, metered
//! transparently, and controlled through the controller):
//!
//! * [`ab`] — the two-process computation of the Appendix-B example
//!   session (`A` on red, `B` on green);
//! * [`tsp`] — the distributed traveling-salesman branch-and-bound of
//!   Lai & Miller 84, the computation the paper reports debugging and
//!   speeding up with these tools (§5);
//! * [`ring`] — a datagram token ring with retransmission, for
//!   exercising datagram loss and the unmatched-send analysis;
//! * [`pipeline`] — a staged stream pipeline, for the parallelism
//!   analysis;
//! * [`client_server`] — a forking server in the `inetd` style, the
//!   natural target of the `acquire` command;
//! * [`lamport_mutex`] — Lamport's distributed mutual exclusion,
//!   emitting length-beacon datagrams so the trace checker
//!   (`dpm_analysis::properties`) can verify safety from the log;
//! * [`byzantine`] — synchronous Byzantine agreement (oral messages,
//!   one traitor among four generals), likewise trace-checkable.
//!
//! [`register_all`] registers every program with a cluster and
//! installs the corresponding `/bin` files on every machine.

#![warn(missing_docs)]

pub mod ab;
pub mod byzantine;
pub mod client_server;
pub mod lamport_mutex;
pub mod pipeline;
pub mod ring;
pub mod tsp;
pub mod util;

use dpm_simos::Cluster;
use std::sync::Arc;

/// Registers every workload program on the cluster.
pub fn register_all(cluster: &Arc<Cluster>) {
    ab::register(cluster);
    tsp::register(cluster);
    ring::register(cluster);
    pipeline::register(cluster);
    client_server::register(cluster);
    lamport_mutex::register(cluster);
    byzantine::register(cluster);
}
