//! A forking client–server workload.
//!
//! The server is the kind of long-lived system process the paper's
//! `acquire` command exists for: "situations may arise in which a
//! process such as a system server is an important component of a
//! computation. … Even more simply, a user may be interested only in
//! monitoring a system server to better understand its behavior."
//! (§4.3)
//!
//! The server accepts connections forever and forks one child per
//! connection (the `inetd` idiom), so an acquired server's trace shows
//! fork inheritance doing its job: children are metered automatically.

use crate::util::{connect_retry, write_line};
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockType, SysError, SysResult};
use std::sync::Arc;

/// Default server port.
pub const SERVER_PORT: u16 = 2200;

/// The server: args `[port]`. Runs until killed; forks a handler per
/// connection. Each handler serves `get <n>` requests with `n` bytes
/// of payload and closes on `quit` or end-of-file.
///
/// # Errors
///
/// Propagates socket errors.
pub fn server_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let port: u16 = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SERVER_PORT);
    let l = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(l, BindTo::Port(port))?;
    p.listen(l, 16)?;
    loop {
        let (conn, _peer) = p.accept(l)?;
        p.fork_with(move |c| {
            while let Some(line) = c.read_line(conn)? {
                let mut it = line.split_whitespace();
                match it.next() {
                    Some("get") => {
                        let n: usize = it.next().and_then(|v| v.parse().ok()).unwrap_or(1);
                        c.compute_ms(1)?;
                        let payload = vec![b'x'; n.min(4096)];
                        c.write(conn, &payload)?;
                    }
                    Some("quit") => break,
                    _ => write_line(&c, conn, "error")?,
                }
            }
            c.close(conn)?;
            Ok(())
        })?;
        p.close(conn)?;
    }
}

/// A client: args `[server_host, port, n_requests, req_size]`.
///
/// # Errors
///
/// Propagates socket errors.
pub fn client_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let host = args.first().map_or("red", String::as_str).to_owned();
    let port: u16 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SERVER_PORT);
    let n: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let size: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(64);

    let s = connect_retry(&p, &host, port, 300)?;
    for _ in 0..n {
        write_line(&p, s, &format!("get {size}"))?;
        let mut got = 0;
        while got < size {
            let chunk = p.read(s, size - got)?;
            if chunk.is_empty() {
                return Err(SysError::Epipe);
            }
            got += chunk.len();
        }
        p.compute_ms(1)?;
    }
    write_line(&p, s, "quit")?;
    p.close(s)?;
    p.write(1, format!("client done: {n} requests\n").as_bytes())?;
    Ok(())
}

/// Registers both programs and installs `/bin/server` and
/// `/bin/client` everywhere.
pub fn register(cluster: &Arc<Cluster>) {
    cluster.register_program("server", server_main);
    cluster.register_program("client", client_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/server", "server");
        cluster.install_program_file(&name, "/bin/client", "client");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::{Sig, Uid};

    #[test]
    fn two_clients_share_the_forking_server() {
        let c = Cluster::builder()
            .net(NetConfig::ideal())
            .seed(8)
            .machine("red")
            .machine("green")
            .machine("blue")
            .build();
        register(&c);
        let server = c
            .spawn_user("red", "server", Uid(1), |p| server_main(p, vec![]))
            .unwrap();
        let c1 = c
            .spawn_user("green", "client", Uid(1), |p| {
                client_main(
                    p,
                    vec![
                        "red".into(),
                        SERVER_PORT.to_string(),
                        "3".into(),
                        "32".into(),
                    ],
                )
            })
            .unwrap();
        let c2 = c
            .spawn_user("blue", "client", Uid(1), |p| {
                client_main(
                    p,
                    vec![
                        "red".into(),
                        SERVER_PORT.to_string(),
                        "3".into(),
                        "128".into(),
                    ],
                )
            })
            .unwrap();
        assert_eq!(
            c.machine("green").unwrap().wait_exit(c1),
            Some(dpm_meter::TermReason::Normal)
        );
        assert_eq!(
            c.machine("blue").unwrap().wait_exit(c2),
            Some(dpm_meter::TermReason::Normal)
        );
        // The server runs until killed, like a real daemon.
        let red = c.machine("red").unwrap();
        red.signal(None, server, Sig::Kill).unwrap();
        assert_eq!(red.wait_exit(server), Some(dpm_meter::TermReason::Killed));
        c.shutdown();
    }
}
