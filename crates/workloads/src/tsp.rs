//! The distributed traveling-salesman computation.
//!
//! "Initial experience with these tools [Lai & Miller 84] has shown
//! them to be useful for measurement studies, as well as for program
//! debugging. A multiprocess computation was developed and debugged
//! using the tool, which led to substantial modifications of the
//! program resulting in substantial improvements of its performance."
//! (§5) — that computation was a distributed traveling-salesman
//! solver, reproduced here as a master/worker branch-and-bound.
//!
//! The master fixes the first edge of the tour (city 0 → k) to form
//! one subproblem per non-initial city, hands subproblems to workers
//! over stream connections, and shares the best tour length found so
//! far as the bound accompanying each new task — the work-sharing
//! feedback that made the original program interesting to measure.

use crate::util::write_line;
use dpm_simos::{BindTo, Cluster, Domain, Proc, SockType, SysError, SysResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Default port the TSP master listens on.
pub const TSP_PORT: u16 = 1800;

/// Generates the symmetric random distance matrix both sides derive
/// from the shared seed (instead of shipping the matrix around, as the
/// original did to keep messages small).
#[allow(clippy::needless_range_loop)] // symmetric matrix fill is clearest indexed
pub fn distance_matrix(n: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = vec![vec![0u32; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let w = rng.gen_range(1..100);
            d[i][j] = w;
            d[j][i] = w;
        }
    }
    d
}

/// Exhaustive branch-and-bound for tours starting with the fixed
/// prefix. Returns the best complete-tour length found that beats
/// `bound` (or `bound` itself) and the number of search-tree nodes
/// explored (the virtual CPU the caller should charge).
pub fn solve(dist: &[Vec<u32>], prefix: &[usize], bound: u32) -> (u32, u64) {
    let n = dist.len();
    let mut visited = vec![false; n];
    let mut len = 0u32;
    for w in prefix.windows(2) {
        len += dist[w[0]][w[1]];
    }
    for &c in prefix {
        visited[c] = true;
    }
    let mut best = bound;
    let mut nodes = 0u64;
    let last = *prefix.last().expect("nonempty prefix");
    dfs(
        dist,
        &mut visited,
        last,
        len,
        prefix.len(),
        &mut best,
        &mut nodes,
    );
    (best, nodes)
}

fn dfs(
    dist: &[Vec<u32>],
    visited: &mut [bool],
    at: usize,
    len: u32,
    depth: usize,
    best: &mut u32,
    nodes: &mut u64,
) {
    *nodes += 1;
    let n = dist.len();
    if len >= *best {
        return; // bound pruning
    }
    if depth == n {
        let total = len + dist[at][0];
        if total < *best {
            *best = total;
        }
        return;
    }
    for next in 1..n {
        if !visited[next] {
            visited[next] = true;
            dfs(
                dist,
                visited,
                next,
                len + dist[at][next],
                depth + 1,
                best,
                nodes,
            );
            visited[next] = false;
        }
    }
}

/// Plain sequential solution (the baseline the distributed version is
/// compared against).
pub fn solve_sequential(dist: &[Vec<u32>]) -> (u32, u64) {
    solve(dist, &[0], u32::MAX)
}

/// TSP master: args `[port, n_cities, n_workers, seed]`.
///
/// Writes `best <len>` to stdout when done.
///
/// # Errors
///
/// Propagates socket errors; `EINVAL` on bad arguments.
pub fn master_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let port: u16 = arg(&args, 0).unwrap_or(TSP_PORT);
    let n: usize = arg(&args, 1).unwrap_or(10);
    let workers: usize = arg(&args, 2).unwrap_or(2);
    let seed: u64 = arg(&args, 3).unwrap_or(7);
    if n < 3 || workers == 0 {
        return Err(SysError::Einval);
    }

    let listener = p.socket(Domain::Inet, SockType::Stream)?;
    p.bind(listener, BindTo::Port(port))?;
    p.listen(listener, workers)?;
    let conns: Vec<u32> = (0..workers)
        .map(|_| p.accept(listener).map(|(fd, _)| fd))
        .collect::<SysResult<_>>()?;

    // Subproblems: fix the tour's first step 0 → k.
    let mut tasks: Vec<usize> = (1..n).collect();
    let mut best = u32::MAX;
    let mut outstanding = 0usize;
    // Prime every worker with one task.
    let mut idle: Vec<u32> = conns.clone();
    while !tasks.is_empty() || outstanding > 0 {
        while let (Some(k), Some(conn)) = (tasks.last().copied(), idle.pop()) {
            tasks.pop();
            write_line(&p, conn, &format!("task {n} {seed} {k} {best}"))?;
            outstanding += 1;
        }
        if outstanding == 0 {
            break;
        }
        // Collect one result from whichever worker answers first —
        // select(2) over the busy connections.
        let busy: Vec<u32> = conns
            .iter()
            .copied()
            .filter(|c| !idle.contains(c))
            .collect();
        let ready = p.select(&busy)?;
        let conn = ready[0];
        let data = p.read(conn, 256)?;
        if data.is_empty() {
            return Err(SysError::Epipe); // a worker died on us
        }
        let text = String::from_utf8_lossy(&data);
        for line in text.lines() {
            let mut it = line.split_whitespace();
            match it.next() {
                Some("best") => {
                    let len: u32 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(SysError::Einval)?;
                    best = best.min(len);
                    outstanding -= 1;
                    idle.push(conn);
                }
                _ => return Err(SysError::Einval),
            }
        }
    }
    for conn in conns {
        write_line(&p, conn, "quit")?;
        p.close(conn)?;
    }
    p.write(1, format!("best {best}\n").as_bytes())?;
    Ok(())
}

/// TSP worker: args `[master_host, port]`.
///
/// # Errors
///
/// Propagates socket errors; `EINVAL` on a garbled task.
pub fn worker_main(p: Proc, args: Vec<String>) -> SysResult<()> {
    let host = args.first().map_or("red", String::as_str).to_owned();
    let port: u16 = arg(&args, 1).unwrap_or(TSP_PORT);
    let s = crate::util::connect_retry(&p, &host, port, 300)?;
    let mut dist: Option<(Vec<Vec<u32>>, usize, u64)> = None;
    let mut solved = 0u32;
    while let Some(line) = p.read_line(s)? {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("task") => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(SysError::Einval)?;
                let seed: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(SysError::Einval)?;
                let k: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(SysError::Einval)?;
                let bound: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(SysError::Einval)?;
                let d = match &dist {
                    Some((d, dn, ds)) if *dn == n && *ds == seed => d,
                    _ => {
                        dist = Some((distance_matrix(n, seed), n, seed));
                        &dist.as_ref().expect("just set").0
                    }
                };
                let (best, nodes) = solve(d, &[0, k], bound);
                // Charge virtual CPU proportional to the search.
                p.compute_us(nodes.max(1) * 5)?;
                write_line(&p, s, &format!("best {best}"))?;
                solved += 1;
            }
            Some("quit") => break,
            _ => return Err(SysError::Einval),
        }
    }
    p.close(s)?;
    p.write(1, format!("worker solved {solved}\n").as_bytes())?;
    Ok(())
}

fn arg<T: std::str::FromStr>(args: &[String], i: usize) -> Option<T> {
    args.get(i).and_then(|s| s.parse().ok())
}

/// Registers the master and worker programs and installs
/// `/bin/tsp-master` and `/bin/tsp-worker` on every machine.
pub fn register(cluster: &Arc<Cluster>) {
    cluster.register_program("tsp-master", master_main);
    cluster.register_program("tsp-worker", worker_main);
    for m in cluster.machines() {
        let name = m.name().to_owned();
        cluster.install_program_file(&name, "/bin/tsp-master", "tsp-master");
        cluster.install_program_file(&name, "/bin/tsp-worker", "tsp-worker");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_simnet::NetConfig;
    use dpm_simos::Uid;

    #[test]
    fn branch_and_bound_matches_brute_force_on_small_instances() {
        for seed in 0..5 {
            let d = distance_matrix(7, seed);
            let (best, _) = solve_sequential(&d);
            // Brute force.
            let mut perm: Vec<usize> = (1..7).collect();
            let mut brute = u32::MAX;
            permute(&mut perm, 0, &mut |p| {
                let mut len = d[0][p[0]];
                for w in p.windows(2) {
                    len += d[w[0]][w[1]];
                }
                len += d[*p.last().unwrap()][0];
                brute = brute.min(len);
            });
            assert_eq!(best, brute, "seed {seed}");
        }
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn subproblem_union_covers_the_full_search() {
        let d = distance_matrix(8, 3);
        let (seq, _) = solve_sequential(&d);
        let mut best = u32::MAX;
        for k in 1..8 {
            let (b, _) = solve(&d, &[0, k], best);
            best = best.min(b);
        }
        assert_eq!(best, seq);
    }

    #[test]
    fn tighter_bound_prunes_more() {
        let d = distance_matrix(9, 1);
        let (opt, loose_nodes) = solve(&d, &[0, 1], u32::MAX);
        let (_, tight_nodes) = solve(&d, &[0, 1], opt);
        assert!(
            tight_nodes < loose_nodes,
            "bound {opt}: {tight_nodes} !< {loose_nodes}"
        );
    }

    #[test]
    fn distributed_master_worker_finds_the_optimum() {
        let c = Cluster::builder()
            .net(NetConfig::ideal())
            .seed(2)
            .machine("red")
            .machine("green")
            .machine("blue")
            .build();
        register(&c);
        let n = 9;
        let seed = 11;
        let master = c
            .spawn_user("red", "master", Uid(1), move |p| {
                master_main(
                    p,
                    vec![
                        TSP_PORT.to_string(),
                        n.to_string(),
                        "2".to_string(),
                        seed.to_string(),
                    ],
                )
            })
            .unwrap();
        for m in ["green", "blue"] {
            c.spawn_user(m, "worker", Uid(1), |p| {
                worker_main(p, vec!["red".into(), TSP_PORT.to_string()])
            })
            .unwrap();
        }
        let red = c.machine("red").unwrap();
        assert_eq!(red.wait_exit(master), Some(dpm_meter::TermReason::Normal));
        let out = String::from_utf8_lossy(&red.console_output(master).unwrap()).into_owned();
        let (expected, _) = solve_sequential(&distance_matrix(n, seed));
        assert_eq!(out.trim(), format!("best {expected}"));
        c.shutdown();
    }
}
