//! Integration tests for the log store: crash recovery after torn
//! writes, query correctness over multi-segment stores, and the
//! directory-backed backend end to end.

use dpm_logstore::{
    segment_name, Backend, DirBackend, LogStore, MemBackend, ProcId, StoreConfig, StoreReader,
};
use dpm_meter::HEADER_LEN;
use std::sync::Arc;

/// A minimal well-formed meter record: `size` at 0, `machine` at 4,
/// a trace type at 20, and `pid` at body offset 0.
fn raw(machine: u16, pid: u32, fill: usize) -> Vec<u8> {
    let mut r = vec![0u8; HEADER_LEN + 4 + fill];
    let size = r.len() as u32;
    r[0..4].copy_from_slice(&size.to_le_bytes());
    r[4..6].copy_from_slice(&machine.to_le_bytes());
    r[20..24].copy_from_slice(&5u32.to_le_bytes());
    r[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&pid.to_le_bytes());
    r
}

/// Satellite: a torn write at the segment tail (simulated crash mid-
/// frame) loses only the torn frame. Reopening recovers every record
/// before the tear and appends cleanly after it.
#[test]
fn torn_write_recovers_to_last_valid_frame() {
    let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
    let cfg = StoreConfig::default();
    {
        let store = LogStore::open(Arc::clone(&backend), "log", cfg);
        let mut w = store.writer(0);
        for i in 0..10 {
            w.append(&raw(3, 100 + i, 4));
        }
        w.flush();
    }
    // Crash mid-append: chop the newest segment mid-frame.
    let seg = segment_name("log", 0, 0);
    let bytes = backend.read(&seg).expect("segment exists");
    backend.write(&seg, &bytes[..bytes.len() - 7]);

    // Reopen: the nine whole frames survive, the torn tenth is gone.
    let store = LogStore::open(Arc::clone(&backend), "log", cfg);
    let reader = store.reader();
    let pids: Vec<u32> = reader.scan().map(|f| f.proc.pid).collect();
    assert_eq!(pids, (100..109).collect::<Vec<u32>>());
    // Seq resumes past the largest *surviving* frame... the torn
    // frame's seq (9) may be reissued or skipped; either way new
    // appends must land after everything stored.
    assert!(store.next_seq() >= 9);

    // And appends after recovery extend the log on a clean boundary.
    let mut w = store.writer(0);
    w.append(&raw(3, 999, 4));
    w.flush();
    let reader = store.reader();
    let pids: Vec<u32> = reader.scan().map(|f| f.proc.pid).collect();
    assert_eq!(pids.len(), 10);
    assert_eq!(pids[..9], (100..109).collect::<Vec<u32>>()[..]);
    assert_eq!(*pids.last().unwrap(), 999);
    let seqs: Vec<u64> = reader.scan().map(|f| f.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "strictly ascending: {seqs:?}"
    );
}

/// A crash can also tear the fixed segment header itself (the very
/// first write to a fresh segment). Recovery restarts that segment.
#[test]
fn torn_header_restarts_segment() {
    let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
    let cfg = StoreConfig::default();
    // Hand-craft a store dir whose only segment is half a header.
    backend.write(&segment_name("log", 0, 0), &[0xAB; 11]);
    let store = LogStore::open(Arc::clone(&backend), "log", cfg);
    assert_eq!(store.reader().scan().count(), 0);
    let mut w = store.writer(0);
    w.append(&raw(1, 42, 0));
    w.flush();
    let reader = store.reader();
    assert_eq!(reader.n_records(), 1);
    assert_eq!(
        reader.scan().next().unwrap().proc,
        ProcId {
            machine: 1,
            pid: 42
        }
    );
}

/// Queries stay exact across segment rotation and multiple shards.
#[test]
fn queries_span_segments_and_shards() {
    let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
    let cfg = StoreConfig {
        segment_bytes: 400,
        batch_bytes: 100,
        index_every: 4,
    };
    let store = LogStore::open(Arc::clone(&backend), "log", cfg);
    let mut w0 = store.writer(0);
    let mut w1 = store.writer(1);
    // Interleave two shards; machine/pid cycle over six processes.
    for i in 0..60u32 {
        let r = raw((i % 3) as u16 + 1, 100 + (i % 2), 8);
        if i % 2 == 0 {
            w0.append(&r);
        } else {
            w1.append(&r);
        }
    }
    w0.flush();
    w1.flush();

    let reader = store.reader();
    assert!(reader.n_segments() > 2, "rotation across shards");
    assert_eq!(reader.n_records(), 60);

    // scan(): dense, globally seq-ordered.
    let seqs: Vec<u64> = reader.scan().map(|f| f.seq).collect();
    assert_eq!(seqs, (0..60).collect::<Vec<u64>>());

    // by_proc(): exactly the matching records, in order.
    let got = reader.by_proc(ProcId {
        machine: 1,
        pid: 100,
    });
    let want: Vec<u64> = reader
        .scan()
        .filter(|f| {
            f.proc
                == ProcId {
                    machine: 1,
                    pid: 100,
                }
        })
        .map(|f| f.seq)
        .collect();
    assert!(!want.is_empty());
    assert_eq!(got.iter().map(|f| f.seq).collect::<Vec<_>>(), want);

    // range_by_time(): a window cut at the middle frame's timestamp
    // returns exactly the frames inside it.
    let all: Vec<(u64, u64)> = reader.scan().map(|f| (f.seq, f.ts_us)).collect();
    let (lo, hi) = (all[10].1, all[49].1);
    let got: Vec<u64> = reader
        .range_by_time(lo, hi)
        .into_iter()
        .map(|f| f.seq)
        .collect();
    let want: Vec<u64> = all
        .iter()
        .filter(|&&(_, ts)| ts >= lo && ts <= hi)
        .map(|&(seq, _)| seq)
        .collect();
    assert_eq!(got, want);
}

/// The directory backend round-trips a store through real files,
/// including recovery from a torn tail done with plain `fs` calls.
#[test]
fn dir_backend_store_round_trip() {
    let tmp = std::env::temp_dir().join(format!("dpm-store-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let backend: Arc<dyn Backend> = Arc::new(DirBackend::new(&tmp));
    {
        let store = LogStore::open(Arc::clone(&backend), "log", StoreConfig::default());
        let mut w = store.writer(0);
        for i in 0..5 {
            w.append(&raw(2, 200 + i, 0));
        }
        w.sync();
    }
    // Tear the tail with plain std::fs, as a crashed OS would leave it.
    let seg_path = tmp.join("log/s0000-00000000.seg");
    let bytes = std::fs::read(&seg_path).unwrap();
    std::fs::write(&seg_path, &bytes[..bytes.len() - 5]).unwrap();

    let store = LogStore::open(Arc::clone(&backend), "log", StoreConfig::default());
    let reader = store.reader();
    let pids: Vec<u32> = reader.scan().map(|f| f.proc.pid).collect();
    assert_eq!(pids, vec![200, 201, 202, 203]);
    let _ = std::fs::remove_dir_all(&tmp);
}

/// `from_segment_bytes` (the remote-fetch path) sees the same records
/// as a local reader.
#[test]
fn segment_bytes_reader_matches_local() {
    let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
    let store = LogStore::open(Arc::clone(&backend), "log", StoreConfig::default());
    let mut w = store.writer(0);
    for i in 0..7 {
        w.append(&raw(1, 300 + i, 2));
    }
    w.flush();
    // Probe segment names densely, as the controller's getlog does.
    let mut fetched = Vec::new();
    for no in 0.. {
        match backend.read(&segment_name("log", 0, no)) {
            Some(bytes) => fetched.push(bytes),
            None => break,
        }
    }
    let remote = StoreReader::from_segment_bytes(fetched);
    let local = store.reader();
    let a: Vec<(u64, u32)> = remote.scan().map(|f| (f.seq, f.proc.pid)).collect();
    let b: Vec<(u64, u32)> = local.scan().map(|f| (f.seq, f.proc.pid)).collect();
    assert_eq!(a, b);
    assert_eq!(a.len(), 7);
}
