//! The on-disk format: frames and segment headers.
//!
//! ## Frame
//!
//! Every accepted record becomes one frame (all integers
//! little-endian, VAX order like the meter wire format):
//!
//! ```text
//! u32  payload length            ─┐ 8-byte frame prefix
//! u32  CRC-32 of the payload     ─┘
//! u64  seq        arrival ordinal, global across shards
//! u64  ts_us      monotonic store timestamp, microseconds
//! u16  shard      the filter shard that accepted the record
//! u16  machine    copied out of the record header (index key)
//! u32  pid        copied out of the record body   (index key)
//! ...  raw record — the meter wire bytes, verbatim
//! ```
//!
//! The 24-byte envelope duplicates `(machine, pid)` so index
//! construction and point queries never parse record descriptions.
//! A frame is *valid* iff its length field is in range and the CRC
//! matches; recovery truncates a segment to its last valid frame.
//!
//! ## Segment header
//!
//! Each segment file starts with a fixed 32-byte header:
//!
//! ```text
//! [0..8)   magic  b"DPMSEG01"
//! [8..12)  u32    format version (1)
//! [12..14) u16    shard id
//! [14..16) u16    reserved (0)
//! [16..24) u64    base seq — lower bound on the frames' seq numbers
//! [24..32) u64    store timestamp at creation, microseconds
//! ```

use crate::crc::crc32;
use dpm_meter::{HEADER_LEN, MAX_METER_MSG};

/// Magic bytes opening every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"DPMSEG01";

/// On-disk format version.
pub const SEG_VERSION: u32 = 1;

/// Byte length of the fixed segment header.
pub const SEG_HEADER_LEN: usize = 32;

/// Byte length of the frame envelope (seq, ts, shard, machine, pid).
pub const ENVELOPE_LEN: usize = 24;

/// Bytes a frame adds on top of the raw record it stores
/// (8-byte prefix + envelope).
pub const FRAME_OVERHEAD: usize = 8 + ENVELOPE_LEN;

/// Largest payload a valid frame may carry.
pub const MAX_PAYLOAD: usize = ENVELOPE_LEN + MAX_METER_MSG;

/// A process key as the store indexes it: the record header's
/// `machine` and the record body's `pid`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId {
    /// Machine (host id) from the record header.
    pub machine: u16,
    /// Process id on that machine, from the record body.
    pub pid: u32,
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}:p{}", self.machine, self.pid)
    }
}

/// Extracts the index key from a raw meter record. Every Appendix-A
/// event body begins with `pid` at offset 0 and the header carries
/// `machine` at offset 4, so this works for all standard formats; a
/// record too short to carry a pid keys as pid 0.
pub fn proc_id_of(raw: &[u8]) -> ProcId {
    let machine = raw
        .get(4..6)
        .map(|b| u16::from_le_bytes([b[0], b[1]]))
        .unwrap_or(0);
    let pid = raw
        .get(HEADER_LEN..HEADER_LEN + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .unwrap_or(0);
    ProcId { machine, pid }
}

/// The decoded envelope of one frame (borrowing nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Arrival ordinal, global across shards.
    pub seq: u64,
    /// Monotonic store timestamp, microseconds.
    pub ts_us: u64,
    /// Accepting shard.
    pub shard: u16,
    /// Index key.
    pub proc: ProcId,
}

/// Appends one encoded frame to `out`; returns the frame's byte
/// length.
pub fn encode_frame(out: &mut Vec<u8>, env: &Envelope, raw: &[u8]) -> usize {
    let payload_len = ENVELOPE_LEN + raw.len();
    debug_assert!(payload_len <= MAX_PAYLOAD, "record exceeds MAX_METER_MSG");
    let start = out.len();
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder
    out.extend_from_slice(&env.seq.to_le_bytes());
    out.extend_from_slice(&env.ts_us.to_le_bytes());
    out.extend_from_slice(&env.shard.to_le_bytes());
    out.extend_from_slice(&env.proc.machine.to_le_bytes());
    out.extend_from_slice(&env.proc.pid.to_le_bytes());
    out.extend_from_slice(raw);
    let crc = crc32(&out[start + 8..]);
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Decodes the frame starting at `off` in `bytes`. Returns the
/// envelope, the raw record slice, and the offset one past the frame.
/// `None` for anything invalid — truncation, out-of-range length, or
/// CRC mismatch — which recovery treats as the torn tail.
pub fn decode_frame(bytes: &[u8], off: usize) -> Option<(Envelope, &[u8], usize)> {
    let prefix = bytes.get(off..off + 8)?;
    let payload_len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize;
    if !(ENVELOPE_LEN..=MAX_PAYLOAD).contains(&payload_len) {
        return None;
    }
    let want_crc = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]);
    let payload = bytes.get(off + 8..off + 8 + payload_len)?;
    if crc32(payload) != want_crc {
        return None;
    }
    let env = Envelope {
        seq: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
        ts_us: u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")),
        shard: u16::from_le_bytes([payload[16], payload[17]]),
        proc: ProcId {
            machine: u16::from_le_bytes([payload[18], payload[19]]),
            pid: u32::from_le_bytes([payload[20], payload[21], payload[22], payload[23]]),
        },
    };
    Some((env, &payload[ENVELOPE_LEN..], off + 8 + payload_len))
}

/// Encodes a segment header.
pub fn encode_seg_header(shard: u16, base_seq: u64, created_us: u64) -> [u8; SEG_HEADER_LEN] {
    let mut h = [0u8; SEG_HEADER_LEN];
    h[0..8].copy_from_slice(SEG_MAGIC);
    h[8..12].copy_from_slice(&SEG_VERSION.to_le_bytes());
    h[12..14].copy_from_slice(&shard.to_le_bytes());
    // [14..16) reserved
    h[16..24].copy_from_slice(&base_seq.to_le_bytes());
    h[24..32].copy_from_slice(&created_us.to_le_bytes());
    h
}

/// Decoded segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegHeader {
    /// Shard id the segment belongs to.
    pub shard: u16,
    /// Lower bound on the seq numbers of the segment's frames.
    pub base_seq: u64,
    /// Store timestamp at creation, microseconds.
    pub created_us: u64,
}

/// Validates and decodes a segment header; `None` when the bytes do
/// not start with a well-formed header of a known version.
pub fn decode_seg_header(bytes: &[u8]) -> Option<SegHeader> {
    let h = bytes.get(..SEG_HEADER_LEN)?;
    if &h[0..8] != SEG_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    if version != SEG_VERSION {
        return None;
    }
    Some(SegHeader {
        shard: u16::from_le_bytes([h[12], h[13]]),
        base_seq: u64::from_le_bytes(h[16..24].try_into().expect("8 bytes")),
        created_us: u64::from_le_bytes(h[24..32].try_into().expect("8 bytes")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_record() -> Vec<u8> {
        // A plausible 36-byte record: size, machine=7 in the header,
        // pid=4242 at body offset 0.
        let mut r = vec![0u8; 36];
        r[0..4].copy_from_slice(&36u32.to_le_bytes());
        r[4..6].copy_from_slice(&7u16.to_le_bytes());
        r[20..24].copy_from_slice(&10u32.to_le_bytes());
        r[24..28].copy_from_slice(&4242u32.to_le_bytes());
        r
    }

    #[test]
    fn frame_round_trips() {
        let raw = raw_record();
        let env = Envelope {
            seq: 99,
            ts_us: 1_000_001,
            shard: 3,
            proc: proc_id_of(&raw),
        };
        let mut buf = Vec::new();
        let n = encode_frame(&mut buf, &env, &raw);
        assert_eq!(n, buf.len());
        assert_eq!(n, FRAME_OVERHEAD + raw.len());
        let (got_env, got_raw, next) = decode_frame(&buf, 0).unwrap();
        assert_eq!(got_env, env);
        assert_eq!(
            got_env.proc,
            ProcId {
                machine: 7,
                pid: 4242
            }
        );
        assert_eq!(got_raw, &raw[..]);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let raw = raw_record();
        let env = Envelope {
            seq: 1,
            ts_us: 2,
            shard: 0,
            proc: proc_id_of(&raw),
        };
        let mut buf = Vec::new();
        encode_frame(&mut buf, &env, &raw);
        // Truncated.
        assert!(decode_frame(&buf[..buf.len() - 1], 0).is_none());
        // Bit flip in the payload.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x80;
        assert!(decode_frame(&flipped, 0).is_none());
        // Absurd length field.
        let mut long = buf.clone();
        long[0..4].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(decode_frame(&long, 0).is_none());
    }

    #[test]
    fn seg_header_round_trips() {
        let h = encode_seg_header(5, 1234, 42);
        let got = decode_seg_header(&h).unwrap();
        assert_eq!(
            got,
            SegHeader {
                shard: 5,
                base_seq: 1234,
                created_us: 42
            }
        );
        assert!(decode_seg_header(&h[..10]).is_none());
        let mut bad = h;
        bad[0] = b'X';
        assert!(decode_seg_header(&bad).is_none());
    }

    #[test]
    fn proc_id_tolerates_short_records() {
        assert_eq!(proc_id_of(&[]), ProcId { machine: 0, pid: 0 });
        assert_eq!(proc_id_of(&[0; 10]), ProcId { machine: 0, pid: 0 });
    }
}
