//! The store handle and the group-commit segment writer.
//!
//! A [`LogStore`] owns one store directory on one [`Backend`] and
//! hands out per-shard [`SegmentWriter`]s. All writers share a single
//! arrival-sequence counter and a single monotonic clock, so records
//! accepted concurrently by different filter shards interleave into
//! one global order that readers can merge deterministically.
//!
//! ## Group commit
//!
//! `append` encodes the frame into an in-memory batch; nothing
//! reaches the backend until the batch crosses
//! [`StoreConfig::batch_bytes`], the segment rotates, or the caller
//! invokes [`SegmentWriter::flush`] (the filter pipeline flushes on
//! idle, on connection close, and at shutdown — mirroring the text
//! sink's batching discipline). `flush` also replaces the segment's
//! index sidecar, so a reader opening after any flush sees an index
//! that exactly covers the durable bytes. [`SegmentWriter::sync`]
//! additionally asks the backend to make the segment durable.
//!
//! ## Recovery
//!
//! [`LogStore::open`] resumes an existing store: the sequence counter
//! restarts past the largest stored seq, and each shard's writer
//! validates its newest segment frame by frame, truncating a torn
//! tail (a partially appended frame) back to the last valid frame
//! before appending anything new. Everything before the tear
//! survives; everything after the reopen lands on a clean boundary.

use crate::backend::Backend;
use crate::format::{decode_seg_header, encode_frame, encode_seg_header, proc_id_of, Envelope};
use crate::index::SegmentIndex;
use crate::reader::StoreReader;
use dpm_telemetry::{Counter, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tunables for a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Rotate a segment once it reaches this many bytes.
    pub segment_bytes: usize,
    /// Group-commit threshold: flush the in-memory batch when it
    /// holds at least this many bytes (0 commits every record).
    pub batch_bytes: usize,
    /// Sparse-index period: one offset entry per this many records.
    pub index_every: u32,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            segment_bytes: 256 * 1024,
            batch_bytes: 8 * 1024,
            index_every: 64,
        }
    }
}

/// The file name of shard `shard`'s segment number `no` under `dir`.
///
/// Segment numbering is per shard and dense from zero. Discovery goes
/// through a directory listing ([`crate::reader::list_segments`]);
/// the dense numbering is what lets listings be classified into
/// sealed and in-progress segments (see [`seg_ids_of`]).
pub fn segment_name(dir: &str, shard: u16, no: u32) -> String {
    format!("{dir}/s{shard:04}-{no:08}.seg")
}

/// The index sidecar name for a segment file name.
pub fn index_name(seg_name: &str) -> String {
    format!("{}.idx", seg_name.trim_end_matches(".seg"))
}

/// The seal-manifest file name under a store directory. The manifest
/// holds one line per sealed segment, appended by
/// [`seal_manifest_hook`]; a live consumer reads it to learn about
/// seals without re-reading segment bytes.
pub fn seals_name(dir: &str) -> String {
    format!("{}/SEALS", dir.trim_end_matches('/'))
}

/// Describes one sealed (rotated-away-from) segment, handed to the
/// store's [`SealHook`] at the moment of rotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealInfo {
    /// The sealed segment's file name.
    pub name: String,
    /// Shard whose writer rotated.
    pub shard: u16,
    /// The sealed segment's number.
    pub seg_no: u32,
    /// Valid frames the sealed segment holds.
    pub frames: u64,
    /// Durable bytes of the sealed segment (header + frames).
    pub bytes: u64,
    /// Seq of the segment's last frame (`None` if it sealed empty).
    pub last_seq: Option<u64>,
}

/// Callback invoked by a shard writer right after it seals a segment
/// (flushes it for the last time and moves to the next segment
/// number). Runs on the appending thread, so it must be cheap.
pub type SealHook = Arc<dyn Fn(&SealInfo) + Send + Sync>;

/// Returns a [`SealHook`] that appends one human-readable line per
/// sealed segment to the store's `SEALS` manifest file — the seal
/// notification a filter installs so live consumers (the controller's
/// `watch`) learn about rotation by reading one small file.
pub fn seal_manifest_hook(backend: Arc<dyn Backend>, dir: &str) -> SealHook {
    let manifest = seals_name(dir);
    Arc::new(move |info: &SealInfo| {
        let base = info.name.rsplit('/').next().unwrap_or(&info.name);
        let last = info.last_seq.map_or(-1, |s| s as i64);
        let line = format!(
            "sealed {} shard={} frames={} bytes={} last_seq={}\n",
            base, info.shard, info.frames, info.bytes, last
        );
        backend.append(&manifest, line.as_bytes());
    })
}

/// A handle on one store directory.
pub struct LogStore {
    backend: Arc<dyn Backend>,
    dir: String,
    cfg: StoreConfig,
    /// Next arrival seq, shared by every shard writer.
    seq: Arc<AtomicU64>,
    /// Monotonic clock: stored ts = `ts_base + origin.elapsed()`.
    origin: Instant,
    ts_base: u64,
    /// Invoked by every shard writer when it seals a segment.
    seal_hook: Option<SealHook>,
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStore")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .field("next_seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl LogStore {
    /// Opens (or creates) the store at `dir` on `backend`.
    ///
    /// When segments already exist, the arrival-sequence counter and
    /// the monotonic clock resume past everything stored, so new
    /// appends extend the global order instead of colliding with it.
    pub fn open(backend: Arc<dyn Backend>, dir: &str, cfg: StoreConfig) -> LogStore {
        // Survey existing data for the seq/ts high-water marks. The
        // reader tolerates torn tails, so this is safe pre-recovery.
        let reader = StoreReader::load(backend.as_ref(), dir);
        let (mut max_seq, mut max_ts) = (None::<u64>, 0u64);
        for f in reader.scan() {
            max_seq = Some(max_seq.map_or(f.seq, |m: u64| m.max(f.seq)));
            max_ts = max_ts.max(f.ts_us);
        }
        LogStore {
            backend,
            dir: dir.to_owned(),
            cfg,
            seq: Arc::new(AtomicU64::new(max_seq.map_or(0, |m| m + 1))),
            // The process-wide telemetry epoch, not a private Instant:
            // every store stamps `ts_us` on the same real-time axis, so
            // downstream stages can subtract a frame's `ts_us` from
            // `dpm_telemetry::now_us()` to measure pipeline staleness.
            // On reopen, `ts_base` only lifts stamps enough to clear
            // the stored high-water mark; once the epoch clock passes
            // it, stamps are back on the shared axis exactly.
            origin: dpm_telemetry::epoch(),
            ts_base: if max_seq.is_some() {
                (max_ts + 1).saturating_sub(dpm_telemetry::now_us())
            } else {
                0
            },
            seal_hook: None,
        }
    }

    /// Installs the hook every subsequently-created shard writer
    /// invokes when it seals a segment (see [`SealHook`]).
    pub fn set_seal_hook(&mut self, hook: SealHook) {
        self.seal_hook = Some(hook);
    }

    /// The store directory.
    pub fn dir(&self) -> &str {
        &self.dir
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// The next arrival sequence number (what the next accepted
    /// record will be stamped with).
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Creates the group-commit writer for one shard, recovering the
    /// shard's newest segment first (see the module docs).
    pub fn writer(&self, shard: u16) -> SegmentWriter {
        SegmentWriter::open(
            Arc::clone(&self.backend),
            self.dir.clone(),
            shard,
            self.cfg,
            Arc::clone(&self.seq),
            self.origin,
            self.ts_base,
            self.seal_hook.clone(),
        )
    }

    /// A read snapshot over everything flushed so far.
    pub fn reader(&self) -> StoreReader {
        StoreReader::load(self.backend.as_ref(), &self.dir)
    }
}

/// The group-commit writer for one shard's segment stream.
pub struct SegmentWriter {
    backend: Arc<dyn Backend>,
    dir: String,
    shard: u16,
    cfg: StoreConfig,
    seq: Arc<AtomicU64>,
    origin: Instant,
    ts_base: u64,
    /// Current segment number.
    seg_no: u32,
    /// Bytes of the current segment already handed to the backend.
    durable: usize,
    /// Pending group-commit batch (frames, and the segment header
    /// when the segment is brand new).
    batch: Vec<u8>,
    /// Index of the current segment (covers durable + batch).
    index: SegmentIndex,
    /// Whether the next append must open a fresh segment.
    need_header: bool,
    /// Records appended through this writer (all segments).
    appended: u64,
    /// Last timestamp issued, to keep per-shard stamps monotonic.
    last_ts: u64,
    /// Seq of the last frame appended to the current segment.
    seg_last_seq: Option<u64>,
    /// Store timestamp of the current segment's first frame, for the
    /// append→seal staleness readout.
    seg_first_ts: Option<u64>,
    /// Invoked after sealing a segment in [`SegmentWriter::roll`].
    seal_hook: Option<SealHook>,
    /// Per-shard self-telemetry handles (registered once at open).
    tm: WriterTelemetry,
}

/// Cached global-registry handles for one shard writer.
struct WriterTelemetry {
    /// Size of each committed group-commit batch, bytes.
    flush_bytes: Arc<Histogram>,
    /// Torn tails truncated back before a flush retry.
    torn_heals: Arc<Counter>,
    /// Flushes that exhausted every retry and kept the batch.
    flush_failures: Arc<Counter>,
    /// Segments sealed by rotation.
    seals: Arc<Counter>,
    /// Age of a segment at seal time: seal − first append, µs.
    seal_age_us: Arc<Histogram>,
}

impl WriterTelemetry {
    fn register(shard: u16) -> WriterTelemetry {
        let r = dpm_telemetry::registry();
        let label = format!("s{shard}");
        WriterTelemetry {
            flush_bytes: r.histogram("store", "flush_batch_bytes", &label),
            torn_heals: r.counter("store", "torn_heals", &label),
            flush_failures: r.counter("store", "flush_failures", &label),
            seals: r.counter("store", "seals", &label),
            seal_age_us: r.histogram("e2e", "append_to_seal_us", &label),
        }
    }
}

impl std::fmt::Debug for SegmentWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentWriter")
            .field("dir", &self.dir)
            .field("shard", &self.shard)
            .field("seg_no", &self.seg_no)
            .field("durable", &self.durable)
            .field("pending", &self.batch.len())
            .finish()
    }
}

impl SegmentWriter {
    #[allow(clippy::too_many_arguments)]
    fn open(
        backend: Arc<dyn Backend>,
        dir: String,
        shard: u16,
        cfg: StoreConfig,
        seq: Arc<AtomicU64>,
        origin: Instant,
        ts_base: u64,
        seal_hook: Option<SealHook>,
    ) -> SegmentWriter {
        let mut w = SegmentWriter {
            backend,
            dir,
            shard,
            cfg,
            seq,
            origin,
            ts_base,
            seg_no: 0,
            durable: 0,
            batch: Vec::new(),
            index: SegmentIndex::new(cfg.index_every),
            need_header: true,
            appended: 0,
            last_ts: 0,
            seg_last_seq: None,
            seg_first_ts: None,
            seal_hook,
            tm: WriterTelemetry::register(shard),
        };
        w.recover();
        w
    }

    /// Resumes this shard's newest segment: truncate-to-last-valid-
    /// frame, then rebuild its in-memory index.
    fn recover(&mut self) {
        let prefix = format!("{}/s{:04}-", self.dir, self.shard);
        let mut segs: Vec<String> = self
            .backend
            .list(&prefix)
            .into_iter()
            .filter(|n| n.ends_with(".seg"))
            .collect();
        segs.sort();
        let Some(last) = segs.last() else { return };
        let Some(no) = seg_no_of(last) else { return };
        let bytes = self.backend.read(last).unwrap_or_default();
        if decode_seg_header(&bytes).is_none() {
            // The header itself was torn: reuse the file from scratch.
            self.backend.write(last, &[]);
            self.seg_no = no;
            self.need_header = true;
            return;
        }
        let index = SegmentIndex::rebuild(&bytes, self.cfg.index_every);
        let valid_len = index.data_len as usize;
        if valid_len < bytes.len() {
            // Torn write: drop the partial frame at the tail.
            self.backend.write(last, &bytes[..valid_len]);
        }
        self.backend.write(&index_name(last), &index.encode());
        // Recover the segment's last seq for future seal notices.
        let mut off = index
            .sparse
            .last()
            .map_or(crate::format::SEG_HEADER_LEN, |e| e.off as usize);
        while let Some((env, _, next)) = crate::format::decode_frame(&bytes[..valid_len], off) {
            self.seg_last_seq = Some(env.seq);
            off = next;
        }
        self.seg_no = no;
        self.durable = valid_len;
        self.index = index;
        self.need_header = false;
    }

    /// The shard this writer serves.
    pub fn shard(&self) -> u16 {
        self.shard
    }

    /// Records appended through this writer so far.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Bytes waiting in the group-commit batch.
    pub fn pending_bytes(&self) -> usize {
        self.batch.len()
    }

    fn now_us(&mut self) -> u64 {
        let ts = self.ts_base + self.origin.elapsed().as_micros() as u64;
        self.last_ts = self.last_ts.max(ts);
        self.last_ts
    }

    /// Appends one raw meter record; returns its arrival seq.
    ///
    /// The record lands in the in-memory batch; call
    /// [`SegmentWriter::flush`] (or let the batch threshold trip) to
    /// make it readable, and [`SegmentWriter::sync`] to make it
    /// durable.
    pub fn append(&mut self, raw: &[u8]) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.now_us();
        if self.need_header {
            self.batch
                .extend_from_slice(&encode_seg_header(self.shard, seq, ts_us));
            self.need_header = false;
        }
        let off = (self.durable + self.batch.len()) as u32;
        let env = Envelope {
            seq,
            ts_us,
            shard: self.shard,
            proc: proc_id_of(raw),
        };
        encode_frame(&mut self.batch, &env, raw);
        self.index.push(seq, ts_us, env.proc, off);
        self.appended += 1;
        self.seg_last_seq = Some(seq);
        self.seg_first_ts.get_or_insert(ts_us);
        if self.durable + self.batch.len() >= self.cfg.segment_bytes {
            self.roll();
        } else if self.batch.len() >= self.cfg.batch_bytes {
            self.flush();
        }
        seq
    }

    /// Commits the pending batch to the backend and replaces the
    /// segment's index sidecar. Batches always end on a frame
    /// boundary, so a reader never observes half a frame from a
    /// flush.
    ///
    /// Appends go through the fallible [`Backend::try_append`] with
    /// bounded retries. A failed attempt may have appended a prefix of
    /// the batch (a torn write); before each retry the writer reads
    /// the segment back and truncates it to the last durable length,
    /// so a batch lands exactly once — no loss, no duplication — as
    /// long as one retry eventually succeeds. If every retry fails the
    /// batch is kept in memory for the next flush.
    pub fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let name = segment_name(&self.dir, self.shard, self.seg_no);
        const TRIES: u32 = 8;
        let mut appended = false;
        for attempt in 0..TRIES {
            if attempt > 0 {
                // Heal a possible torn tail from the failed attempt.
                if let Some(cur) = self.backend.read(&name) {
                    if cur.len() > self.durable {
                        self.backend.write(&name, &cur[..self.durable]);
                        self.tm.torn_heals.inc();
                        dpm_telemetry::note(
                            "store",
                            &format!("s{}", self.shard),
                            format!("healed torn tail of {name} back to {} bytes", self.durable),
                        );
                    }
                }
            }
            if self.backend.try_append(&name, &self.batch).is_ok() {
                appended = true;
                break;
            }
        }
        if !appended {
            // Persistent failure: keep the batch buffered; a later
            // flush (or Drop) retries. Heal any torn tail now so
            // readers never see half a frame.
            if let Some(cur) = self.backend.read(&name) {
                if cur.len() > self.durable {
                    self.backend.write(&name, &cur[..self.durable]);
                }
            }
            self.tm.flush_failures.inc();
            dpm_telemetry::note(
                "store",
                &format!("s{}", self.shard),
                format!("flush of {name} failed after {TRIES} tries; batch kept"),
            );
            return;
        }
        self.tm.flush_bytes.record(self.batch.len() as u64);
        self.durable += self.batch.len();
        self.batch.clear();
        self.index.data_len = self.durable as u64;
        self.backend.write(&index_name(&name), &self.index.encode());
    }

    /// [`SegmentWriter::flush`], then asks the backend to make the
    /// current segment durable (fsync where that exists).
    pub fn sync(&mut self) {
        self.flush();
        self.backend
            .sync(&segment_name(&self.dir, self.shard, self.seg_no));
    }

    /// Seals the current segment and opens the next one, notifying
    /// the store's seal hook (if any) with the sealed segment's
    /// listing facts.
    fn roll(&mut self) {
        self.flush();
        self.tm.seals.inc();
        if let Some(first_ts) = self.seg_first_ts {
            // Seal latency on the shared store-timestamp axis: how old
            // the segment's first record is when the segment seals.
            let seal_ts = self.now_us();
            self.tm.seal_age_us.record(seal_ts.saturating_sub(first_ts));
        }
        dpm_telemetry::note(
            "store",
            &format!("s{}", self.shard),
            format!(
                "sealed segment {} ({} frames, {} bytes)",
                self.seg_no, self.index.n_records, self.durable
            ),
        );
        if let Some(hook) = self.seal_hook.clone() {
            hook(&SealInfo {
                name: segment_name(&self.dir, self.shard, self.seg_no),
                shard: self.shard,
                seg_no: self.seg_no,
                frames: self.index.n_records,
                bytes: self.durable as u64,
                last_seq: self.seg_last_seq,
            });
        }
        self.seg_no += 1;
        self.durable = 0;
        self.index = SegmentIndex::new(self.cfg.index_every);
        self.need_header = true;
        self.seg_last_seq = None;
        self.seg_first_ts = None;
    }
}

impl Drop for SegmentWriter {
    /// A dropped writer never loses whole accepted records: the
    /// remaining batch is committed on the way out.
    fn drop(&mut self) {
        self.flush();
    }
}

/// Parses the `(shard, segment number)` out of a segment file name of
/// the form produced by [`segment_name`]. Remote consumers use this to
/// classify which fetched segments are sealed (all but the
/// highest-numbered per shard).
pub fn seg_ids_of(name: &str) -> Option<(u16, u32)> {
    let stem = name.rsplit('/').next()?.strip_suffix(".seg")?;
    let (shard, no) = stem.rsplit_once('-')?;
    Some((shard.strip_prefix('s')?.parse().ok()?, no.parse().ok()?))
}

/// Parses the segment number out of a segment file name.
fn seg_no_of(name: &str) -> Option<u32> {
    seg_ids_of(name).map(|(_, no)| no)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::format::ProcId;
    use dpm_meter::HEADER_LEN;

    /// A minimal well-formed "record": header with machine, trace
    /// type, and a pid at body offset 0.
    fn raw(machine: u16, pid: u32, fill: usize) -> Vec<u8> {
        let mut r = vec![0u8; HEADER_LEN + 4 + fill];
        let size = r.len() as u32;
        r[0..4].copy_from_slice(&size.to_le_bytes());
        r[4..6].copy_from_slice(&machine.to_le_bytes());
        r[20..24].copy_from_slice(&7u32.to_le_bytes());
        r[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&pid.to_le_bytes());
        r
    }

    #[test]
    fn append_flush_read_back() {
        let backend = Arc::new(MemBackend::new());
        let store = LogStore::open(backend, "/usr/tmp/log.f1", StoreConfig::default());
        let mut w = store.writer(0);
        let s0 = w.append(&raw(1, 100, 0));
        let s1 = w.append(&raw(1, 101, 0));
        assert_eq!((s0, s1), (0, 1));
        // Nothing readable before the group commit…
        assert_eq!(store.reader().scan().count(), 0);
        assert!(w.pending_bytes() > 0);
        w.flush();
        assert_eq!(w.pending_bytes(), 0);
        let reader = store.reader();
        let frames: Vec<_> = reader.scan().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 0);
        assert_eq!(
            frames[0].proc,
            ProcId {
                machine: 1,
                pid: 100
            }
        );
        assert_eq!(frames[0].raw, &raw(1, 100, 0)[..]);
        assert!(frames[0].ts_us <= frames[1].ts_us);
    }

    #[test]
    fn batch_threshold_trips_commit() {
        let backend = Arc::new(MemBackend::new());
        let cfg = StoreConfig {
            batch_bytes: 128,
            ..StoreConfig::default()
        };
        let store = LogStore::open(backend, "d", cfg);
        let mut w = store.writer(0);
        for i in 0..10 {
            w.append(&raw(0, i, 8));
        }
        // 10 × ~68-byte frames with a 128-byte threshold: several
        // commits happened without an explicit flush.
        assert!(store.reader().scan().count() >= 8);
    }

    #[test]
    fn rotation_by_size_produces_multiple_segments() {
        let backend = Arc::new(MemBackend::new());
        let cfg = StoreConfig {
            segment_bytes: 512,
            batch_bytes: 64,
            index_every: 4,
        };
        let store = LogStore::open(Arc::clone(&backend) as Arc<dyn Backend>, "d", cfg);
        let mut w = store.writer(0);
        for i in 0..40 {
            w.append(&raw(2, i, 16));
        }
        w.flush();
        let segs = backend
            .list("d/s0000-")
            .into_iter()
            .filter(|n| n.ends_with(".seg"))
            .count();
        assert!(segs >= 2, "expected rotation, got {segs} segment(s)");
        // Every record survives across the rotation, in seq order.
        let reader = store.reader();
        let seqs: Vec<u64> = reader.scan().map(|f| f.seq).collect();
        assert_eq!(seqs, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn reopen_resumes_seq_and_appends_cleanly() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let cfg = StoreConfig::default();
        {
            let store = LogStore::open(Arc::clone(&backend), "d", cfg);
            let mut w = store.writer(0);
            for i in 0..5 {
                w.append(&raw(0, i, 0));
            }
            w.flush();
        }
        let store = LogStore::open(Arc::clone(&backend), "d", cfg);
        assert_eq!(store.next_seq(), 5);
        let mut w = store.writer(0);
        w.append(&raw(0, 99, 0));
        w.flush();
        let reader = store.reader();
        let seqs: Vec<u64> = reader.scan().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        // Timestamps never run backwards across the reopen.
        let ts: Vec<u64> = reader.scan().map(|f| f.ts_us).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn drop_commits_the_tail() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let store = LogStore::open(Arc::clone(&backend), "d", StoreConfig::default());
        {
            let mut w = store.writer(0);
            w.append(&raw(0, 1, 0));
        } // dropped without flush
        assert_eq!(store.reader().scan().count(), 1);
    }

    #[test]
    fn shards_share_one_seq_space() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let store = LogStore::open(Arc::clone(&backend), "d", StoreConfig::default());
        let mut a = store.writer(0);
        let mut b = store.writer(1);
        let mut seqs = vec![
            a.append(&raw(0, 1, 0)),
            b.append(&raw(0, 2, 0)),
            a.append(&raw(0, 3, 0)),
            b.append(&raw(0, 4, 0)),
        ];
        a.flush();
        b.flush();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2, 3], "seqs are unique and dense");
        let reader = store.reader();
        let merged: Vec<u64> = reader.scan().map(|f| f.seq).collect();
        assert_eq!(merged, vec![0, 1, 2, 3], "scan merges shards by seq");
        let shards: Vec<u16> = reader.scan().map(|f| f.shard).collect();
        assert_eq!(shards, vec![0, 1, 0, 1]);
    }

    /// A backend whose `try_append` fails (leaving a torn prefix) on a
    /// scripted set of attempts.
    struct TornBackend {
        inner: MemBackend,
        fail_next: std::sync::Mutex<u32>,
    }

    impl Backend for TornBackend {
        fn append(&self, name: &str, data: &[u8]) {
            self.inner.append(name, data);
        }
        fn write(&self, name: &str, data: &[u8]) {
            self.inner.write(name, data);
        }
        fn read(&self, name: &str) -> Option<Vec<u8>> {
            self.inner.read(name)
        }
        fn list(&self, prefix: &str) -> Vec<String> {
            self.inner.list(prefix)
        }
        fn try_append(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
            let mut left = self.fail_next.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                // Torn write: half the batch lands, then the error.
                self.inner.append(name, &data[..data.len() / 2]);
                return Err(std::io::Error::other("injected"));
            }
            self.inner.append(name, data);
            Ok(())
        }
    }

    #[test]
    fn flush_heals_torn_writes_without_loss_or_duplication() {
        let backend = Arc::new(TornBackend {
            inner: MemBackend::new(),
            fail_next: std::sync::Mutex::new(3),
        });
        let store = LogStore::open(
            Arc::clone(&backend) as Arc<dyn Backend>,
            "d",
            StoreConfig::default(),
        );
        let mut w = store.writer(0);
        for i in 0..10 {
            w.append(&raw(0, i, 0));
        }
        w.flush();
        // Two torn attempts healed, third retry succeeded: exactly one
        // copy of every frame, in order.
        let seqs: Vec<u64> = store.reader().scan().map(|f| f.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn flush_keeps_the_batch_on_persistent_failure() {
        let backend = Arc::new(TornBackend {
            inner: MemBackend::new(),
            fail_next: std::sync::Mutex::new(u32::MAX),
        });
        let store = LogStore::open(
            Arc::clone(&backend) as Arc<dyn Backend>,
            "d",
            StoreConfig::default(),
        );
        let mut w = store.writer(0);
        w.append(&raw(0, 1, 0));
        w.flush(); // every attempt fails; the batch stays buffered
        assert_eq!(store.reader().scan().count(), 0, "no torn tail visible");
        *backend.fail_next.lock().unwrap() = 0;
        w.flush(); // backend healthy again: the batch lands once
        assert_eq!(store.reader().scan().count(), 1);
    }

    #[test]
    fn segment_names_are_probeable() {
        assert_eq!(segment_name("d", 0, 0), "d/s0000-00000000.seg");
        assert_eq!(
            segment_name("/usr/tmp/l", 3, 12),
            "/usr/tmp/l/s0003-00000012.seg"
        );
        assert_eq!(index_name("d/s0000-00000000.seg"), "d/s0000-00000000.idx");
        assert_eq!(seg_no_of("d/s0003-00000012.seg"), Some(12));
        assert_eq!(seg_no_of("d/other.txt"), None);
        assert_eq!(seg_ids_of("d/s0003-00000012.seg"), Some((3, 12)));
        assert_eq!(seg_ids_of("d/x0003-00000012.seg"), None);
    }

    #[test]
    fn seal_hook_fires_per_rotation_with_listing_facts() {
        use std::sync::Mutex;
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let mut store = LogStore::open(
            Arc::clone(&backend),
            "d",
            StoreConfig {
                segment_bytes: 512,
                batch_bytes: 64,
                index_every: 4,
            },
        );
        let seals: Arc<Mutex<Vec<SealInfo>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seals);
        store.set_seal_hook(Arc::new(move |info| {
            sink.lock().unwrap().push(info.clone())
        }));
        let mut w = store.writer(0);
        for i in 0..40 {
            w.append(&raw(2, i, 16));
        }
        w.flush();
        let seals = seals.lock().unwrap();
        assert!(!seals.is_empty(), "rotation happened");
        // Seal infos are dense from segment 0 and cover real frames.
        for (i, s) in seals.iter().enumerate() {
            assert_eq!(s.seg_no, i as u32);
            assert_eq!(s.shard, 0);
            assert_eq!(s.name, segment_name("d", 0, i as u32));
            assert!(s.frames > 0);
            assert!(s.bytes > 0);
            assert!(s.last_seq.is_some());
        }
        // Every sealed segment's bytes really are on the backend in
        // full: the hook fired after the final flush of the segment.
        for s in seals.iter() {
            assert_eq!(backend.read(&s.name).unwrap().len() as u64, s.bytes);
        }
    }

    #[test]
    fn seal_manifest_hook_appends_readable_lines() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let mut store = LogStore::open(
            Arc::clone(&backend),
            "d",
            StoreConfig {
                segment_bytes: 512,
                batch_bytes: 64,
                index_every: 4,
            },
        );
        store.set_seal_hook(seal_manifest_hook(Arc::clone(&backend), "d"));
        let mut w = store.writer(0);
        for i in 0..40 {
            w.append(&raw(2, i, 16));
        }
        w.flush();
        let manifest = backend.read(&seals_name("d")).expect("SEALS written");
        let text = String::from_utf8(manifest).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty());
        assert!(
            lines[0].starts_with("sealed s0000-00000000.seg shard=0 frames="),
            "unexpected manifest line: {}",
            lines[0]
        );
        // One line per sealed segment: the in-progress segment (the
        // highest-numbered one) has no line.
        let reader = store.reader();
        assert_eq!(lines.len(), reader.sealed_segments().len());
    }
}
