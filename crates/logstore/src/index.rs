//! Per-segment sidecar indexes.
//!
//! Each segment `<name>.seg` gets a sidecar `<name>.idx` holding:
//!
//! * a **sparse offset index** — one `(seq, ts, offset)` entry every
//!   `index_every` records, so `range_by_time` and seeks by ordinal
//!   start near their target instead of at the segment head;
//! * **postings** — for every `(machine, pid)` seen in the segment,
//!   the byte offsets of that process's frames, so `by_proc` reads
//!   exactly the frames it needs.
//!
//! The sidecar is advisory: it records `data_len`, the segment byte
//! length it covers, and a reader that finds the segment longer,
//! shorter, or the sidecar missing/corrupt simply rebuilds the index
//! by scanning the segment. The writer replaces the sidecar at every
//! group-commit flush, so in the steady state the two always agree.
//!
//! Wire form (little-endian): magic `DPMIDX01`, `u32` version, `u32`
//! index_every, `u64` record count, `u64` data_len, sparse entries
//! (`u32` count, then `u64 seq, u64 ts, u32 off` each), postings
//! (`u32` count, then `u16 machine, u16 pad, u32 pid, u32 n,
//! n × u32 off` each).

use crate::format::{decode_frame, ProcId, SEG_HEADER_LEN};
use std::collections::BTreeMap;

/// Magic bytes opening every index sidecar.
pub const IDX_MAGIC: &[u8; 8] = b"DPMIDX01";

/// Sidecar format version.
pub const IDX_VERSION: u32 = 1;

/// One sparse-index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseEntry {
    /// Seq of the frame at `off`.
    pub seq: u64,
    /// Timestamp of the frame at `off`.
    pub ts_us: u64,
    /// Byte offset of the frame within the segment.
    pub off: u32,
}

/// The in-memory index of one segment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentIndex {
    /// Sparse-entry period (records per entry).
    pub index_every: u32,
    /// Total frames covered.
    pub n_records: u64,
    /// Segment byte length covered by this index.
    pub data_len: u64,
    /// Sparse offset entries, ascending.
    pub sparse: Vec<SparseEntry>,
    /// Frame offsets per process, ascending.
    pub postings: BTreeMap<ProcId, Vec<u32>>,
}

impl SegmentIndex {
    /// An empty index with the given sparse period.
    pub fn new(index_every: u32) -> SegmentIndex {
        SegmentIndex {
            index_every: index_every.max(1),
            ..SegmentIndex::default()
        }
    }

    /// Accounts one frame at byte offset `off`.
    pub fn push(&mut self, seq: u64, ts_us: u64, proc: ProcId, off: u32) {
        if self.n_records.is_multiple_of(self.index_every as u64) {
            self.sparse.push(SparseEntry { seq, ts_us, off });
        }
        self.postings.entry(proc).or_default().push(off);
        self.n_records += 1;
    }

    /// The byte offset to start scanning from for timestamps
    /// `>= ts_us` (frames within a segment are timestamp-ordered: one
    /// shard, one monotonic clock).
    pub fn seek_ts(&self, ts_us: u64) -> u32 {
        // Last sparse entry at or before the target.
        match self.sparse.partition_point(|e| e.ts_us <= ts_us) {
            0 => SEG_HEADER_LEN as u32,
            n => self.sparse[n - 1].off,
        }
    }

    /// Serializes the sidecar.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 20 * self.sparse.len());
        out.extend_from_slice(IDX_MAGIC);
        out.extend_from_slice(&IDX_VERSION.to_le_bytes());
        out.extend_from_slice(&self.index_every.to_le_bytes());
        out.extend_from_slice(&self.n_records.to_le_bytes());
        out.extend_from_slice(&self.data_len.to_le_bytes());
        out.extend_from_slice(&(self.sparse.len() as u32).to_le_bytes());
        for e in &self.sparse {
            out.extend_from_slice(&e.seq.to_le_bytes());
            out.extend_from_slice(&e.ts_us.to_le_bytes());
            out.extend_from_slice(&e.off.to_le_bytes());
        }
        out.extend_from_slice(&(self.postings.len() as u32).to_le_bytes());
        for (proc, offs) in &self.postings {
            out.extend_from_slice(&proc.machine.to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes());
            out.extend_from_slice(&proc.pid.to_le_bytes());
            out.extend_from_slice(&(offs.len() as u32).to_le_bytes());
            for off in offs {
                out.extend_from_slice(&off.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a sidecar; `None` on any structural problem.
    pub fn decode(bytes: &[u8]) -> Option<SegmentIndex> {
        let mut r = Cursor { bytes, pos: 0 };
        if r.take(8)? != IDX_MAGIC {
            return None;
        }
        if r.u32()? != IDX_VERSION {
            return None;
        }
        let mut idx = SegmentIndex::new(r.u32()?);
        idx.n_records = r.u64()?;
        idx.data_len = r.u64()?;
        let n_sparse = r.u32()? as usize;
        idx.sparse.reserve(n_sparse.min(1 << 20));
        for _ in 0..n_sparse {
            idx.sparse.push(SparseEntry {
                seq: r.u64()?,
                ts_us: r.u64()?,
                off: r.u32()?,
            });
        }
        let n_postings = r.u32()? as usize;
        for _ in 0..n_postings {
            let machine = r.u16()?;
            let _pad = r.u16()?;
            let pid = r.u32()?;
            let n = r.u32()? as usize;
            let mut offs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                offs.push(r.u32()?);
            }
            idx.postings.insert(ProcId { machine, pid }, offs);
        }
        if r.pos != bytes.len() {
            return None;
        }
        Some(idx)
    }

    /// Rebuilds the index by scanning `segment` (stopping at the
    /// first invalid frame — a torn tail indexes as absent).
    pub fn rebuild(segment: &[u8], index_every: u32) -> SegmentIndex {
        let mut idx = SegmentIndex::new(index_every);
        let mut off = SEG_HEADER_LEN;
        while let Some((env, _raw, next)) = decode_frame(segment, off) {
            idx.push(env.seq, env.ts_us, env.proc, off as u32);
            off = next;
        }
        idx.data_len = off as u64;
        idx
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_frame, encode_seg_header, Envelope};

    fn sample_index() -> SegmentIndex {
        let mut idx = SegmentIndex::new(2);
        idx.push(0, 10, ProcId { machine: 1, pid: 7 }, 32);
        idx.push(1, 20, ProcId { machine: 1, pid: 8 }, 96);
        idx.push(2, 30, ProcId { machine: 1, pid: 7 }, 160);
        idx.data_len = 224;
        idx
    }

    #[test]
    fn encode_decode_round_trips() {
        let idx = sample_index();
        let wire = idx.encode();
        assert_eq!(SegmentIndex::decode(&wire).unwrap(), idx);
        // Truncation and corruption are rejected, not mis-read.
        assert!(SegmentIndex::decode(&wire[..wire.len() - 1]).is_none());
        let mut bad = wire.clone();
        bad[0] = b'x';
        assert!(SegmentIndex::decode(&bad).is_none());
        assert!(SegmentIndex::decode(b"").is_none());
    }

    #[test]
    fn sparse_period_and_seek() {
        let idx = sample_index();
        // Period 2: entries for records 0 and 2.
        assert_eq!(idx.sparse.len(), 2);
        assert_eq!(idx.seek_ts(5), SEG_HEADER_LEN as u32);
        assert_eq!(idx.seek_ts(10), 32);
        assert_eq!(idx.seek_ts(25), 32);
        assert_eq!(idx.seek_ts(30), 160);
        assert_eq!(idx.seek_ts(1000), 160);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut seg: Vec<u8> = encode_seg_header(0, 0, 0).to_vec();
        let mut want = SegmentIndex::new(2);
        for i in 0..5u64 {
            let raw = vec![i as u8; 30];
            let proc = ProcId {
                machine: (i % 2) as u16,
                pid: 100 + i as u32,
            };
            let off = seg.len() as u32;
            want.push(i, i * 10, proc, off);
            encode_frame(
                &mut seg,
                &Envelope {
                    seq: i,
                    ts_us: i * 10,
                    shard: 0,
                    proc,
                },
                &raw,
            );
        }
        want.data_len = seg.len() as u64;
        let rebuilt = SegmentIndex::rebuild(&seg, 2);
        assert_eq!(rebuilt, want);
        // A torn tail stops the rebuild cleanly.
        let torn = &seg[..seg.len() - 3];
        let partial = SegmentIndex::rebuild(torn, 2);
        assert_eq!(partial.n_records, 4);
        assert!(partial.data_len < torn.len() as u64 + 1);
    }
}
