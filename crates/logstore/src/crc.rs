//! CRC-32 (IEEE 802.3) used to seal every stored frame.
//!
//! The store cannot take an external checksum crate (the build image
//! is offline), and the classic table-driven CRC-32 is a dozen lines;
//! the table is built at compile time by a `const fn`.

/// The 256-entry lookup table for the reflected polynomial
/// `0xEDB88320`.
const TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (IEEE, reflected, init/xorout `0xFFFF_FFFF`) —
/// the same function `cksum`-style tools and zlib compute.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let good = crc32(data);
        let mut corrupt = data.to_vec();
        for i in 0..corrupt.len() {
            corrupt[i] ^= 0x01;
            assert_ne!(crc32(&corrupt), good, "flip at byte {i} undetected");
            corrupt[i] ^= 0x01;
        }
    }
}
