//! Read-side of the store: loading segments and querying frames.
//!
//! A [`StoreReader`] is a point-in-time snapshot: it loads every
//! segment under a store directory (or is handed raw segment bytes by
//! a remote fetcher) and answers three queries, all yielding borrowed
//! [`Frame`]s zero-copy:
//!
//! * [`StoreReader::scan`] — every frame, merged across shards into
//!   global arrival (sequence) order;
//! * [`StoreReader::range_by_time`] — frames whose store timestamp
//!   falls in a window, seeking via the sparse index instead of
//!   scanning each segment from its head;
//! * [`StoreReader::by_proc`] — one process's frames via the
//!   per-segment postings, touching only the bytes that match.
//!
//! The reader trusts nothing: a sidecar index is used only when it
//! decodes cleanly *and* covers exactly the bytes the segment holds;
//! otherwise the index is rebuilt by scanning, and a torn tail (a
//! partially appended frame) is simply treated as absent. A snapshot
//! taken mid-write therefore sees every whole flushed frame and
//! nothing else.

use crate::backend::Backend;
use crate::format::{decode_frame, decode_seg_header, ProcId, SEG_HEADER_LEN};
use crate::index::SegmentIndex;
use crate::writer::{index_name, seg_ids_of};
use std::collections::HashMap;

/// Sparse period used when an index must be rebuilt by scanning
/// (matches [`crate::writer::StoreConfig`]'s default).
const REBUILD_INDEX_EVERY: u32 = 64;

/// Lists the segment file names under a store directory, sorted. This
/// is the one discovery path — [`StoreReader::load`], the live tail
/// ([`crate::tail::StoreTail::poll`]), and remote fetchers all
/// enumerate a store through it, so none of them needs to probe dense
/// segment names.
pub fn list_segments(backend: &dyn Backend, dir: &str) -> Vec<String> {
    let mut names: Vec<String> = backend
        .list(&format!("{}/", dir.trim_end_matches('/')))
        .into_iter()
        .filter(|n| n.ends_with(".seg"))
        .collect();
    names.sort();
    names
}

/// One stored record, borrowed from a reader's segment bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Arrival ordinal, global across shards.
    pub seq: u64,
    /// Monotonic store timestamp, microseconds.
    pub ts_us: u64,
    /// The filter shard that accepted the record.
    pub shard: u16,
    /// The record's `(machine, pid)` index key.
    pub proc: ProcId,
    /// The raw meter wire record, verbatim as metered.
    pub raw: &'a [u8],
}

/// Listing metadata for one loaded segment, as returned by
/// [`StoreReader::segments_info`] / [`StoreReader::sealed_segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Segment file name (absent when loaded from raw bytes).
    pub name: Option<String>,
    /// Shard id from the segment header.
    pub shard: u16,
    /// Segment number parsed from the name, when available.
    pub seg_no: Option<u32>,
    /// Valid frames in the segment.
    pub n_records: u64,
    /// Valid data bytes (header + whole frames; excludes a torn tail).
    pub data_len: u64,
    /// Seq of the segment's last valid frame (`None` when empty).
    pub last_seq: Option<u64>,
    /// Whether the segment is sealed (rotated away from, immutable).
    pub sealed: bool,
}

/// One loaded segment: its bytes and a trusted index over them.
#[derive(Debug)]
struct Segment {
    /// The segment file name, when loaded from a backend (absent for
    /// raw bytes handed to [`StoreReader::from_segment_bytes`]).
    name: Option<String>,
    /// Shard id from the segment header.
    shard: u16,
    bytes: Vec<u8>,
    index: SegmentIndex,
}

impl Segment {
    /// Wraps segment bytes, adopting `sidecar` when it is coherent
    /// with the bytes and rebuilding the index by scan otherwise.
    fn new(
        name: Option<String>,
        bytes: Vec<u8>,
        sidecar: Option<Vec<u8>>,
        index_every: u32,
    ) -> Option<Segment> {
        let header = decode_seg_header(&bytes)?;
        let index = sidecar
            .and_then(|raw| SegmentIndex::decode(&raw))
            .filter(|idx| idx.data_len == bytes.len() as u64)
            .unwrap_or_else(|| SegmentIndex::rebuild(&bytes, index_every));
        Some(Segment {
            name,
            shard: header.shard,
            bytes,
            index,
        })
    }

    /// The `(seq, ts_us)` of the segment's last valid frame, scanning
    /// forward from the last sparse index entry rather than the head.
    fn last_frame(&self) -> Option<(u64, u64)> {
        let mut off = self
            .index
            .sparse
            .last()
            .map_or(SEG_HEADER_LEN, |e| e.off as usize);
        let mut last = None;
        while let Some((frame, next)) = self.frame_at(off) {
            last = Some((frame.seq, frame.ts_us));
            off = next;
        }
        last
    }

    /// Decodes the frame at `off`; `None` at (or past) the torn tail.
    fn frame_at(&self, off: usize) -> Option<(Frame<'_>, usize)> {
        if off as u64 >= self.index.data_len {
            return None;
        }
        let (env, raw, next) = decode_frame(&self.bytes, off)?;
        let frame = Frame {
            seq: env.seq,
            ts_us: env.ts_us,
            shard: env.shard,
            proc: env.proc,
            raw,
        };
        Some((frame, next))
    }
}

/// A point-in-time read snapshot of one store.
#[derive(Debug, Default)]
pub struct StoreReader {
    segments: Vec<Segment>,
}

impl StoreReader {
    /// Loads every segment under `dir` on `backend`. Sidecar indexes
    /// are adopted when coherent and rebuilt when missing, corrupt,
    /// or stale; segments without a valid header are skipped.
    pub fn load(backend: &dyn Backend, dir: &str) -> StoreReader {
        let mut segments = Vec::new();
        for name in list_segments(backend, dir) {
            let Some(bytes) = backend.read(&name) else {
                continue;
            };
            let sidecar = backend.read(&index_name(&name));
            if let Some(seg) = Segment::new(Some(name), bytes, sidecar, REBUILD_INDEX_EVERY) {
                segments.push(seg);
            }
        }
        StoreReader { segments }
    }

    /// Builds a reader straight from segment bytes — the path a remote
    /// fetcher (the controller's `getlog`) uses after pulling segment
    /// files over RPC. Indexes are rebuilt by scan; byte vectors that
    /// are not segments are ignored.
    pub fn from_segment_bytes(segments: Vec<Vec<u8>>) -> StoreReader {
        StoreReader {
            segments: segments
                .into_iter()
                .filter_map(|bytes| Segment::new(None, bytes, None, REBUILD_INDEX_EVERY))
                .collect(),
        }
    }

    /// Builds a reader from named segment bytes, as fetched remotely.
    /// Like [`StoreReader::from_segment_bytes`] but the names make
    /// sealed-segment classification ([`StoreReader::segments_info`])
    /// possible.
    pub fn from_named_segment_bytes(segments: Vec<(String, Vec<u8>)>) -> StoreReader {
        StoreReader {
            segments: segments
                .into_iter()
                .filter_map(|(name, bytes)| {
                    Segment::new(Some(name), bytes, None, REBUILD_INDEX_EVERY)
                })
                .collect(),
        }
    }

    /// Number of segments loaded.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total frames across all loaded segments.
    pub fn n_records(&self) -> u64 {
        self.segments.iter().map(|s| s.index.n_records).sum()
    }

    /// Describes every loaded segment: name, shard, record count, and
    /// whether it is *sealed*. The writer rotates by size and never
    /// touches a segment again after opening its successor, so within
    /// one shard every segment except the highest-numbered one is
    /// sealed (immutable); the highest-numbered segment is the one
    /// still being appended to. Segments loaded without names (raw
    /// bytes) cannot be classified and report `sealed = false`.
    pub fn segments_info(&self) -> Vec<SegmentInfo> {
        let mut max_no: HashMap<u16, u32> = HashMap::new();
        for seg in &self.segments {
            if let Some((shard, no)) = seg.name.as_deref().and_then(seg_ids_of) {
                let e = max_no.entry(shard).or_insert(no);
                *e = (*e).max(no);
            }
        }
        self.segments
            .iter()
            .map(|seg| {
                let ids = seg.name.as_deref().and_then(seg_ids_of);
                let sealed = ids.is_some_and(|(shard, no)| no < max_no[&shard]);
                let last = seg.last_frame();
                SegmentInfo {
                    name: seg.name.clone(),
                    shard: seg.shard,
                    seg_no: ids.map(|(_, no)| no),
                    n_records: seg.index.n_records,
                    data_len: seg.index.data_len,
                    last_seq: last.map(|(seq, _)| seq),
                    sealed,
                }
            })
            .collect()
    }

    /// The sealed (immutable) segments — see
    /// [`StoreReader::segments_info`] for the classification rule.
    pub fn sealed_segments(&self) -> Vec<SegmentInfo> {
        self.segments_info()
            .into_iter()
            .filter(|s| s.sealed)
            .collect()
    }

    /// The `(seq, ts_us)` of the newest valid frame in the whole
    /// snapshot — the high-water mark a live consumer has to catch up
    /// to. `None` for an empty store.
    pub fn last_valid_frame(&self) -> Option<(u64, u64)> {
        self.segments
            .iter()
            .filter_map(|s| s.last_frame())
            .max_by_key(|&(seq, _)| seq)
    }

    /// Every frame, merged across segments (and so across shards)
    /// into ascending sequence order.
    pub fn scan(&self) -> Scan<'_> {
        let cursors = self
            .segments
            .iter()
            .map(|seg| Cursor {
                seg,
                head: seg.frame_at(SEG_HEADER_LEN),
            })
            .collect();
        Scan { cursors }
    }

    /// Frames whose store timestamp lies in `[lo_us, hi_us]`, in
    /// ascending sequence order. Each segment is entered via its
    /// sparse index, so the scan starts near `lo_us` instead of at
    /// the segment head.
    pub fn range_by_time(&self, lo_us: u64, hi_us: u64) -> Vec<Frame<'_>> {
        let mut out = Vec::new();
        for seg in &self.segments {
            let mut off = seg.index.seek_ts(lo_us) as usize;
            while let Some((frame, next)) = seg.frame_at(off) {
                if frame.ts_us > hi_us {
                    // Frames within a segment are timestamp-ordered.
                    break;
                }
                if frame.ts_us >= lo_us {
                    out.push(frame);
                }
                off = next;
            }
        }
        out.sort_by_key(|f| f.seq);
        out
    }

    /// Every frame of one process, in ascending sequence order, via
    /// the per-segment postings — only the matching frames' bytes are
    /// decoded.
    pub fn by_proc(&self, proc: ProcId) -> Vec<Frame<'_>> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if let Some(offs) = seg.index.postings.get(&proc) {
                for &off in offs {
                    if let Some((frame, _)) = seg.frame_at(off as usize) {
                        out.push(frame);
                    }
                }
            }
        }
        out.sort_by_key(|f| f.seq);
        out
    }
}

/// One segment's scan position inside a [`Scan`].
struct Cursor<'a> {
    seg: &'a Segment,
    /// The decoded frame at the cursor, plus the offset one past it.
    head: Option<(Frame<'a>, usize)>,
}

/// The merged-by-sequence iterator returned by [`StoreReader::scan`].
pub struct Scan<'a> {
    cursors: Vec<Cursor<'a>>,
}

impl<'a> Iterator for Scan<'a> {
    type Item = Frame<'a>;

    fn next(&mut self) -> Option<Frame<'a>> {
        // K-way merge: take the cursor with the smallest head seq.
        // Frames within a segment are seq-ascending (one appender per
        // shard), so advancing only the winner keeps global order.
        let (i, _) = self
            .cursors
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.head.map(|(f, _)| (i, f.seq)))
            .min_by_key(|&(_, seq)| seq)?;
        let (frame, next) = self.cursors[i].head.take().expect("head checked");
        self.cursors[i].head = self.cursors[i].seg.frame_at(next);
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_frame, encode_seg_header, Envelope};

    /// Builds a segment holding `frames` as `(seq, ts, machine, pid)`.
    fn segment(shard: u16, frames: &[(u64, u64, u16, u32)]) -> Vec<u8> {
        let mut seg = encode_seg_header(shard, frames.first().map_or(0, |f| f.0), 0).to_vec();
        for &(seq, ts_us, machine, pid) in frames {
            let raw = vec![seq as u8; 24];
            encode_frame(
                &mut seg,
                &Envelope {
                    seq,
                    ts_us,
                    shard,
                    proc: ProcId { machine, pid },
                },
                &raw,
            );
        }
        seg
    }

    #[test]
    fn scan_merges_segments_by_seq() {
        let a = segment(0, &[(0, 10, 1, 5), (2, 30, 1, 5), (4, 50, 1, 6)]);
        let b = segment(1, &[(1, 20, 2, 9), (3, 40, 2, 9)]);
        let r = StoreReader::from_segment_bytes(vec![b, a]);
        assert_eq!(r.n_segments(), 2);
        assert_eq!(r.n_records(), 5);
        let seqs: Vec<u64> = r.scan().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        let shards: Vec<u16> = r.scan().map(|f| f.shard).collect();
        assert_eq!(shards, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn range_by_time_is_inclusive_and_seq_ordered() {
        let a = segment(0, &[(0, 10, 1, 5), (2, 30, 1, 5), (4, 50, 1, 6)]);
        let b = segment(1, &[(1, 20, 2, 9), (3, 40, 2, 9)]);
        let r = StoreReader::from_segment_bytes(vec![a, b]);
        let got: Vec<(u64, u64)> = r
            .range_by_time(20, 40)
            .into_iter()
            .map(|f| (f.seq, f.ts_us))
            .collect();
        assert_eq!(got, vec![(1, 20), (2, 30), (3, 40)]);
        assert!(r.range_by_time(60, 100).is_empty());
        assert_eq!(r.range_by_time(0, u64::MAX).len(), 5);
    }

    #[test]
    fn by_proc_returns_only_that_process() {
        let a = segment(0, &[(0, 10, 1, 5), (2, 30, 1, 5), (4, 50, 1, 6)]);
        let b = segment(1, &[(1, 20, 2, 9), (3, 40, 2, 9)]);
        let r = StoreReader::from_segment_bytes(vec![a, b]);
        let got: Vec<u64> = r
            .by_proc(ProcId { machine: 1, pid: 5 })
            .into_iter()
            .map(|f| f.seq)
            .collect();
        assert_eq!(got, vec![0, 2]);
        assert!(r.by_proc(ProcId { machine: 9, pid: 9 }).is_empty());
    }

    #[test]
    fn torn_tail_and_junk_segments_are_tolerated() {
        let a = segment(0, &[(0, 10, 1, 5), (1, 20, 1, 5)]);
        let torn = a[..a.len() - 3].to_vec();
        let r = StoreReader::from_segment_bytes(vec![torn, b"not a segment".to_vec(), Vec::new()]);
        assert_eq!(r.n_segments(), 1);
        let seqs: Vec<u64> = r.scan().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![0]);
    }

    #[test]
    fn listing_classifies_sealed_and_in_progress_segments() {
        use crate::backend::MemBackend;
        use crate::writer::{LogStore, StoreConfig};
        use std::sync::Arc;
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let store = LogStore::open(
            Arc::clone(&backend),
            "d",
            StoreConfig {
                segment_bytes: 512,
                batch_bytes: 64,
                index_every: 4,
            },
        );
        let mut w = store.writer(0);
        let mut raw = vec![0u8; 60];
        raw[0..4].copy_from_slice(&60u32.to_le_bytes());
        raw[20..24].copy_from_slice(&7u32.to_le_bytes());
        let mut last = 0;
        for _ in 0..40 {
            last = w.append(&raw);
        }
        w.flush();
        let r = store.reader();
        let infos = r.segments_info();
        assert!(infos.len() >= 2, "rotation produced several segments");
        // Exactly one in-progress segment, and it is the last one.
        let sealed: Vec<_> = infos.iter().filter(|s| s.sealed).collect();
        assert_eq!(sealed.len(), infos.len() - 1);
        assert!(!infos.last().unwrap().sealed);
        // Counts are consistent with the full reader view.
        assert_eq!(infos.iter().map(|s| s.n_records).sum::<u64>(), 40);
        assert_eq!(r.sealed_segments().len(), sealed.len());
        assert_eq!(r.last_valid_frame().map(|(seq, _)| seq), Some(last));
        // Nameless segments cannot be classified.
        let bytes = backend.read(infos[0].name.as_deref().unwrap()).unwrap();
        let anon = StoreReader::from_segment_bytes(vec![bytes]);
        assert!(!anon.segments_info()[0].sealed);
        assert!(anon.segments_info()[0].seg_no.is_none());
    }

    #[test]
    fn stale_sidecar_is_rebuilt() {
        use crate::backend::MemBackend;
        let seg = segment(0, &[(0, 10, 1, 5), (1, 20, 1, 6)]);
        let backend = MemBackend::new();
        backend.write("d/s0000-00000000.seg", &seg);
        // A sidecar that covers only a prefix of the segment (e.g.
        // written at the last flush before a crash-free append path
        // was interrupted) must not hide the newer frames.
        let stale = SegmentIndex::rebuild(&seg[..SEG_HEADER_LEN + 56], 64);
        backend.write("d/s0000-00000000.idx", &stale.encode());
        let r = StoreReader::load(&backend, "d");
        assert_eq!(r.n_records(), 2);
        // And garbage sidecars fall back to a scan too.
        backend.write("d/s0000-00000000.idx", b"garbage");
        assert_eq!(StoreReader::load(&backend, "d").n_records(), 2);
    }
}
