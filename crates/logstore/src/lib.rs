//! `dpm-logstore` — a segmented, indexed, append-only binary store for
//! accepted meter records.
//!
//! The paper's filters append trace records to flat per-filter text
//! files in `/usr/tmp` (§3.4) and the analysis stage re-parses that
//! text on every pass. That is fine for a 1984 lab; it is not fine for
//! a monitor meant to keep up with record volume from many metered
//! machines. This crate gives accepted records a fast, durable,
//! *queryable* place to land:
//!
//! * **Frames** ([`format`](mod@format)) — each accepted record is stored as a
//!   length-prefixed, CRC-framed binary frame holding the raw wire
//!   record plus a small envelope (arrival sequence number, shard id,
//!   monotonic timestamp, and the record's `(machine, pid)` key).
//!   Selection happens before the store; *reduction* (`#` discards)
//!   is deferred to read time, so the stored bytes are always the
//!   full record the meter produced.
//! * **Segments** ([`writer`]) — frames are appended to segment files
//!   that rotate by size. Every segment starts with a fixed-size
//!   header, and each carries a sidecar index keyed by record
//!   ordinal, timestamp, and `(machine, pid)` so readers can seek
//!   instead of scan.
//! * **Group commit** — the writer batches appends in memory and
//!   makes them durable on [`SegmentWriter::flush`] /
//!   [`SegmentWriter::sync`]; a torn write at the tail of a segment
//!   is healed on reopen by truncating to the last valid frame.
//! * **Queries** ([`reader`]) — [`StoreReader::scan`] yields borrowed
//!   [`Frame`]s zero-copy in arrival (sequence) order across all
//!   shards; [`StoreReader::range_by_time`] seeks via the sparse
//!   index; [`StoreReader::by_proc`] jumps straight to one process's
//!   records via the per-segment postings.
//!
//! Storage itself is abstracted behind [`Backend`] so the same store
//! runs over the simulation's per-machine [`SimFs`]-style flat file
//! system, over a real directory ([`DirBackend`]), or fully in memory
//! ([`MemBackend`]) for tests and benchmarks.
//!
//! [`SimFs`]: Backend

#![warn(missing_docs)]

pub mod backend;
pub mod crc;
pub mod format;
pub mod index;
pub mod reader;
pub mod tail;
pub mod writer;

pub use backend::{Backend, DirBackend, MemBackend};
pub use format::{ProcId, ENVELOPE_LEN, FRAME_OVERHEAD, SEG_HEADER_LEN, SEG_MAGIC};
pub use reader::{list_segments, Frame, Scan, SegmentInfo, StoreReader};
pub use tail::{OwnedFrame, StoreTail};
pub use writer::{
    seal_manifest_hook, seals_name, seg_ids_of, segment_name, LogStore, SealHook, SealInfo,
    SegmentWriter, StoreConfig,
};
