//! Live tailing of a store that is still being written.
//!
//! A [`StoreReader`](crate::StoreReader) is a point-in-time snapshot;
//! re-loading one per poll would re-read and re-decode every segment
//! from its head. A [`StoreTail`] instead remembers, per segment file,
//! how many bytes it has already consumed, and each offer decodes only
//! the *newly appended* whole frames — a torn frame at the tail (a
//! flush in progress) is left alone and picked up whole on the next
//! offer. Combined with the writer's flush discipline (batches land
//! byte-identically even across torn-write healing, because a healed
//! retry re-appends the same batch bytes), consumed offsets stay valid
//! across every failure the writer itself can heal.
//!
//! The intended polling protocol, used by the controller's `watch`:
//!
//! 1. list segment files (one `list` — no dense name probing);
//! 2. classify: per shard, every segment but the highest-numbered one
//!    is **sealed** (the writer never touches it again), so fetch it
//!    once and drop it from future polls; the in-progress segment is
//!    re-fetched each poll;
//! 3. offer each fetched segment's bytes to the tail and ingest the
//!    returned [`OwnedFrame`]s.

use crate::backend::Backend;
use crate::format::{decode_frame, decode_seg_header, ProcId, SEG_HEADER_LEN};
use crate::reader::{list_segments, Frame};
use dpm_telemetry::Counter;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Bytes offered again that the tail had already consumed — the
/// re-fetch cost of polling in-progress segments whole.
fn reparse_counter() -> &'static Counter {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| dpm_telemetry::registry().counter("tail", "reparse_bytes", ""))
}

/// One stored record that owns its bytes — the live-streaming
/// counterpart of the borrowed [`Frame`], for handing records across
/// fetch boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedFrame {
    /// Arrival ordinal, global across shards.
    pub seq: u64,
    /// Monotonic store timestamp, microseconds.
    pub ts_us: u64,
    /// The filter shard that accepted the record.
    pub shard: u16,
    /// The record's `(machine, pid)` index key.
    pub proc: ProcId,
    /// The raw meter wire record, verbatim as metered.
    pub raw: Vec<u8>,
}

impl OwnedFrame {
    /// Copies a borrowed [`Frame`] into an owning one.
    pub fn of(f: &Frame<'_>) -> OwnedFrame {
        OwnedFrame {
            seq: f.seq,
            ts_us: f.ts_us,
            shard: f.shard,
            proc: f.proc,
            raw: f.raw.to_vec(),
        }
    }
}

/// Incremental byte-offset cursors over a store's segment files.
#[derive(Debug, Clone, Default)]
pub struct StoreTail {
    /// Consumed byte offset per segment file name.
    offsets: HashMap<String, usize>,
}

impl StoreTail {
    /// A tail that has consumed nothing.
    pub fn new() -> StoreTail {
        StoreTail::default()
    }

    /// Decodes the frames appended to segment `name` since the last
    /// offer, advancing the cursor past every whole valid frame. A
    /// partial or invalid frame at the tail stops the cursor *before*
    /// it, so the frame is consumed whole once the writer completes
    /// it. Bytes that do not start with a valid segment header are
    /// ignored entirely (the header may itself still be in flight).
    pub fn offer_segment(&mut self, name: &str, bytes: &[u8]) -> Vec<OwnedFrame> {
        let off = self.offsets.entry(name.to_owned()).or_insert(0);
        reparse_counter().add((*off).min(bytes.len()) as u64);
        if *off == 0 {
            if decode_seg_header(bytes).is_none() {
                return Vec::new();
            }
            *off = SEG_HEADER_LEN;
        }
        let mut out = Vec::new();
        while let Some((env, raw, next)) = decode_frame(bytes, *off) {
            out.push(OwnedFrame {
                seq: env.seq,
                ts_us: env.ts_us,
                shard: env.shard,
                proc: env.proc,
                raw: raw.to_vec(),
            });
            *off = next;
        }
        out
    }

    /// Lists the store at `dir` and offers every segment's current
    /// bytes, returning all newly appeared frames sorted by seq — the
    /// local-backend convenience form of the polling protocol (a
    /// remote consumer fetches bytes itself and calls
    /// [`StoreTail::offer_segment`]).
    pub fn poll(&mut self, backend: &dyn Backend, dir: &str) -> Vec<OwnedFrame> {
        let mut out = Vec::new();
        for name in list_segments(backend, dir) {
            if let Some(bytes) = backend.read(&name) {
                out.extend(self.offer_segment(&name, &bytes));
            }
        }
        out.sort_by_key(|f| f.seq);
        out
    }

    /// Bytes consumed so far of segment `name` (0 if never offered).
    pub fn consumed(&self, name: &str) -> usize {
        self.offsets.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::writer::{LogStore, StoreConfig};
    use dpm_meter::HEADER_LEN;
    use std::sync::Arc;

    fn raw(machine: u16, pid: u32, fill: usize) -> Vec<u8> {
        let mut r = vec![0u8; HEADER_LEN + 4 + fill];
        let size = r.len() as u32;
        r[0..4].copy_from_slice(&size.to_le_bytes());
        r[4..6].copy_from_slice(&machine.to_le_bytes());
        r[20..24].copy_from_slice(&7u32.to_le_bytes());
        r[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&pid.to_le_bytes());
        r
    }

    #[test]
    fn poll_sees_only_new_frames() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let store = LogStore::open(Arc::clone(&backend), "d", StoreConfig::default());
        let mut w = store.writer(0);
        let mut tail = StoreTail::new();

        w.append(&raw(1, 100, 0));
        w.flush();
        let first = tail.poll(backend.as_ref(), "d");
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].seq, 0);
        assert_eq!(first[0].proc.pid, 100);

        // Nothing new → nothing returned.
        assert!(tail.poll(backend.as_ref(), "d").is_empty());

        w.append(&raw(1, 101, 0));
        w.append(&raw(1, 102, 0));
        w.flush();
        let more = tail.poll(backend.as_ref(), "d");
        assert_eq!(
            more.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![1, 2],
            "only the newly flushed frames appear"
        );
    }

    #[test]
    fn torn_tail_is_deferred_not_lost() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let store = LogStore::open(Arc::clone(&backend), "d", StoreConfig::default());
        let mut w = store.writer(0);
        w.append(&raw(1, 100, 0));
        w.append(&raw(1, 101, 0));
        w.flush();
        let name = crate::writer::segment_name("d", 0, 0);
        let full = backend.read(&name).expect("segment");

        let mut tail = StoreTail::new();
        // Offer the bytes with the last frame torn mid-way.
        let torn = &full[..full.len() - 5];
        let got = tail.offer_segment(&name, torn);
        assert_eq!(got.len(), 1, "whole frame consumed, torn one deferred");
        // Offer the completed bytes: only the deferred frame appears.
        let got = tail.offer_segment(&name, &full);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1);
        assert_eq!(tail.consumed(&name), full.len());
    }

    #[test]
    fn tail_crosses_segment_rotation() {
        let backend: Arc<dyn Backend> = Arc::new(MemBackend::new());
        let cfg = StoreConfig {
            segment_bytes: 512,
            batch_bytes: 64,
            index_every: 4,
        };
        let store = LogStore::open(Arc::clone(&backend), "d", cfg);
        let mut w = store.writer(0);
        let mut tail = StoreTail::new();
        let mut seen = Vec::new();
        for i in 0..40 {
            w.append(&raw(2, i, 16));
            if i % 7 == 0 {
                w.flush();
                seen.extend(tail.poll(backend.as_ref(), "d").into_iter().map(|f| f.seq));
            }
        }
        w.flush();
        seen.extend(tail.poll(backend.as_ref(), "d").into_iter().map(|f| f.seq));
        assert_eq!(
            seen,
            (0..40).collect::<Vec<u64>>(),
            "every frame exactly once across rotations"
        );
    }

    #[test]
    fn header_in_flight_is_tolerated() {
        let mut tail = StoreTail::new();
        assert!(tail.offer_segment("d/x.seg", b"DP").is_empty());
        assert_eq!(tail.consumed("d/x.seg"), 0, "cursor did not advance");
    }
}
