//! Storage backends: where segment files live.
//!
//! The store names files with flat `/`-separated strings (exactly the
//! convention of the simulation's per-machine file system), and needs
//! only append/read/replace/list — no seeks, no partial reads. That
//! keeps one store implementation working over three very different
//! substrates: the in-memory [`MemBackend`] for tests and benchmarks,
//! the [`DirBackend`] over a real directory, and the filter crate's
//! adapter over a simulated machine's file system.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

/// Byte storage for segment and index files.
///
/// Implementations must make each `append`/`write` call atomic with
/// respect to concurrent readers (the provided backends do; the
/// group-commit writer never splits a frame across calls, so readers
/// at worst miss the newest whole frames).
pub trait Backend: Send + Sync {
    /// Appends to a file, creating it if absent.
    fn append(&self, name: &str, data: &[u8]);
    /// Fallible append, for backends that can report I/O faults (a
    /// chaos harness injecting torn writes or transient errors). The
    /// default delegates to the infallible [`Backend::append`], so
    /// existing backends need no change. A failed `try_append` may
    /// have appended a *prefix* of `data` (a torn write); callers are
    /// expected to heal by reading the file back and truncating to the
    /// last known-durable length before retrying.
    ///
    /// # Errors
    ///
    /// Implementations return any [`std::io::Error`] the substrate
    /// produced; the default implementation never fails.
    fn try_append(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
        self.append(name, data);
        Ok(())
    }
    /// Writes (creates or replaces) a file — used to truncate a torn
    /// segment tail on recovery and to replace index sidecars.
    fn write(&self, name: &str, data: &[u8]);
    /// Reads a whole file; `None` if absent.
    fn read(&self, name: &str) -> Option<Vec<u8>>;
    /// Names of all files starting with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Forces the file durable (fsync where that means something).
    fn sync(&self, _name: &str) {}
}

/// An in-memory backend: a flat map behind a lock. Cloning shares the
/// same storage, so a writer and a reader can be wired up in a test
/// without touching disk.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    files: Arc<RwLock<BTreeMap<String, Vec<u8>>>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl Backend for MemBackend {
    fn append(&self, name: &str, data: &[u8]) {
        self.files
            .write()
            .expect("mem backend lock")
            .entry(name.to_owned())
            .or_default()
            .extend_from_slice(data);
    }

    fn write(&self, name: &str, data: &[u8]) {
        self.files
            .write()
            .expect("mem backend lock")
            .insert(name.to_owned(), data.to_vec());
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        self.files
            .read()
            .expect("mem backend lock")
            .get(name)
            .cloned()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .expect("mem backend lock")
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

/// A backend over a real directory, for host-side tools and
/// crash-recovery tests that want actual files. Store names map to
/// paths under the root; parent directories are created on demand.
#[derive(Debug, Clone)]
pub struct DirBackend {
    root: PathBuf,
}

impl DirBackend {
    /// A backend rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> DirBackend {
        let root = root.into();
        let _ = fs::create_dir_all(&root);
        DirBackend { root }
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name.trim_start_matches('/'))
    }
}

impl Backend for DirBackend {
    fn append(&self, name: &str, data: &[u8]) {
        let path = self.path_of(name);
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = f.write_all(data);
        }
    }

    fn write(&self, name: &str, data: &[u8]) {
        let path = self.path_of(name);
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let _ = fs::write(&path, data);
    }

    fn read(&self, name: &str) -> Option<Vec<u8>> {
        fs::read(self.path_of(name)).ok()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        // Names are `dir/file`; list the parent directory and filter
        // by the full-name prefix.
        let (dir_part, _) = prefix.rsplit_once('/').unwrap_or(("", prefix));
        let dir = self.path_of(dir_part);
        let mut out = Vec::new();
        if let Ok(entries) = fs::read_dir(&dir) {
            for e in entries.flatten() {
                if let Some(fname) = e.file_name().to_str() {
                    let full = if dir_part.is_empty() {
                        fname.to_owned()
                    } else {
                        format!("{dir_part}/{fname}")
                    };
                    if full.starts_with(prefix.trim_start_matches('/')) || full.starts_with(prefix)
                    {
                        out.push(full);
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn sync(&self, name: &str) {
        if let Ok(f) = fs::File::open(self.path_of(name)) {
            let _ = f.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trips_and_lists() {
        let b = MemBackend::new();
        b.append("d/a.seg", b"one");
        b.append("d/a.seg", b"two");
        b.write("d/b.seg", b"xyz");
        assert_eq!(b.read("d/a.seg").unwrap(), b"onetwo");
        assert_eq!(b.read("d/b.seg").unwrap(), b"xyz");
        assert_eq!(b.read("d/c.seg"), None);
        assert_eq!(
            b.list("d/"),
            vec!["d/a.seg".to_owned(), "d/b.seg".to_owned()]
        );
        // Clones share storage.
        let c = b.clone();
        c.write("d/a.seg", b"replaced");
        assert_eq!(b.read("d/a.seg").unwrap(), b"replaced");
    }

    #[test]
    fn dir_backend_round_trips_and_lists() {
        let tmp = std::env::temp_dir().join(format!("dpm-logstore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        let b = DirBackend::new(&tmp);
        b.append("store/s0-0.seg", b"abc");
        b.append("store/s0-0.seg", b"def");
        b.write("store/s0-0.idx", b"i");
        assert_eq!(b.read("store/s0-0.seg").unwrap(), b"abcdef");
        assert_eq!(
            b.list("store/s0-"),
            vec!["store/s0-0.idx".to_owned(), "store/s0-0.seg".to_owned()]
        );
        b.sync("store/s0-0.seg");
        let _ = fs::remove_dir_all(&tmp);
    }
}
