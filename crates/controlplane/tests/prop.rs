//! The control plane's central property: a [`JobTable`] reconstructed
//! from a control-log store (`from_store`, the standby's path) is
//! exactly the table built by applying the same events incrementally
//! (the owner's path) — for *arbitrary* event interleavings, including
//! stale, duplicate, and unknown-job events.

use dpm_controlplane::{ControlEvent, ControlLog, JobTable};
use dpm_logstore::MemBackend;
use proptest::prelude::*;
use std::sync::Arc;

const DIR: &str = "/usr/tmp/control.prop";

const JOBS: [&str; 3] = ["alpha", "beta", "gamma"];
const MACHINES: [&str; 3] = ["red", "green", "blue"];
const OWNERS: [&str; 3] = ["red:5000", "green:5001", "blue:5002"];
const STATES: [&str; 5] = ["new", "acquired", "running", "stopped", "killed"];

/// One arbitrary control event drawn from small pools, so streams
/// routinely hit the same job/proc from several angles (duplicates,
/// unknown references, deposed-owner renewals).
fn arb_event() -> impl Strategy<Value = ControlEvent> {
    let job = 0usize..JOBS.len();
    prop_oneof![
        (job.clone(), 0usize..2).prop_map(|(j, f)| ControlEvent::JobCreated {
            job: JOBS[j].into(),
            filter: format!("f{f}"),
        }),
        (0usize..2, 0usize..MACHINES.len(), 1u32..5, 4000u16..4004).prop_map(
            |(f, m, pid, port)| ControlEvent::FilterCreated {
                name: format!("f{f}"),
                machine: MACHINES[m].into(),
                pid,
                port,
                logfile: format!("/usr/tmp/log.f{f}"),
                mode: "store".into(),
                shards: 1 + (pid % 3),
                role: "leaf".into(),
                upstream: String::new(),
                desc_text: "send 1\nreceive 2\n".into(),
            }
        ),
        (job.clone(), 0usize..MACHINES.len(), 10u32..14).prop_map(|(j, m, pid)| {
            ControlEvent::ProcAdded {
                job: JOBS[j].into(),
                name: format!("p{pid}"),
                machine: MACHINES[m].into(),
                pid,
                state: "new".into(),
            }
        }),
        (job.clone(), 0u32..16).prop_map(|(j, flags)| ControlEvent::FlagsSet {
            job: JOBS[j].into(),
            flags,
        }),
        (
            job.clone(),
            0usize..MACHINES.len(),
            10u32..14,
            0usize..STATES.len()
        )
            .prop_map(|(j, m, pid, s)| ControlEvent::ProcStateChanged {
                job: JOBS[j].into(),
                machine: MACHINES[m].into(),
                pid,
                state: STATES[s].into(),
            }),
        job.clone().prop_map(|j| ControlEvent::JobRemoved {
            job: JOBS[j].into()
        }),
        (job.clone(), 0usize..OWNERS.len(), 0u64..1000).prop_map(|(j, o, at)| {
            ControlEvent::LeaseAcquired {
                job: JOBS[j].into(),
                owner: OWNERS[o].into(),
                at_us: at,
                expires_us: at + 2_000,
            }
        }),
        (job, 0usize..OWNERS.len(), 0u64..1000).prop_map(|(j, o, at)| {
            ControlEvent::LeaseRenewed {
                job: JOBS[j].into(),
                owner: OWNERS[o].into(),
                at_us: at,
                expires_us: at + 2_000,
            }
        }),
    ]
}

proptest! {
    /// `from_store` == incremental fold, for any interleaving.
    #[test]
    fn from_store_equals_incremental_fold(
        events in proptest::collection::vec(arb_event(), 0..60),
    ) {
        let backend = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(backend.clone(), DIR);
        let mut incremental = JobTable::new();
        for ev in &events {
            log.append(ev);
            incremental.apply(ev);
        }
        let replayed = JobTable::from_store(&log.reader());
        prop_assert_eq!(&replayed, &incremental);
        prop_assert_eq!(replayed.events, events.len() as u64);
    }

    /// The wire codec is lossless for any event the pools produce.
    #[test]
    fn codec_round_trips(ev in arb_event()) {
        let wire = ev.encode();
        prop_assert_eq!(ControlEvent::decode(&wire).unwrap(), ev);
    }

    /// Replay order is indifferent to *how* the log was written —
    /// re-opening the log mid-stream (a controller restart) changes
    /// segments and writer state but not the reconstructed table.
    #[test]
    fn reopening_the_log_midstream_changes_nothing(
        events in proptest::collection::vec(arb_event(), 1..40),
        split in 0usize..40,
    ) {
        let split = split.min(events.len());

        let solid = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(solid.clone(), DIR);
        for ev in &events {
            log.append(ev);
        }
        let want = JobTable::from_store(&log.reader());

        let reopened = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(reopened.clone(), DIR);
        for ev in &events[..split] {
            log.append(ev);
        }
        drop(log);
        let mut log = ControlLog::open(reopened.clone(), DIR);
        for ev in &events[split..] {
            log.append(ev);
        }
        prop_assert_eq!(JobTable::from_store(&log.reader()), want);
    }
}
