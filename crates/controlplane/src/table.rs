//! The replayable job table: folds a control-event stream back into
//! the full controller state.

use std::collections::BTreeMap;

use dpm_logstore::StoreReader;

use crate::event::ControlEvent;
use crate::log::ControlLog;

/// Ownership of one job: who holds it and until when (simulated
/// time). Renewed through the control log; a lapsed lease is the
/// takeover signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Owner id, `machine:control_port`.
    pub owner: String,
    /// When (µs, simulated) this lease was acquired or last renewed.
    pub at_us: u64,
    /// When (µs, simulated) it lapses unless renewed.
    pub expires_us: u64,
}

impl Lease {
    /// True once the lease has lapsed at simulated time `now_us`.
    pub fn expired(&self, now_us: u64) -> bool {
        now_us >= self.expires_us
    }
}

/// One process of a job, as the control log knows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcRecord {
    /// Display name.
    pub name: String,
    /// Machine it runs on.
    pub machine: String,
    /// Its pid there.
    pub pid: u32,
    /// Last recorded state keyword (`new`, `acquired`, `running`,
    /// `stopped`, `killed`).
    pub state: String,
}

/// One job reconstructed from the control log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Job name.
    pub name: String,
    /// The filter collecting its trace.
    pub filter: String,
    /// Accumulated meter-flag bits.
    pub flags: u32,
    /// Its processes, in addition order.
    pub procs: Vec<ProcRecord>,
    /// Current lease, once one was acquired.
    pub lease: Option<Lease>,
    /// Every lease change applied, in log order — the material for
    /// [`JobTable::check_lease_chain`].
    pub lease_history: Vec<Lease>,
    /// True once `JobRemoved` was applied: the single terminal state.
    pub removed: bool,
}

impl JobRecord {
    fn proc_mut(&mut self, machine: &str, pid: u32) -> Option<&mut ProcRecord> {
        self.procs
            .iter_mut()
            .find(|p| p.machine == machine && p.pid == pid)
    }
}

/// One filter reconstructed from the control log — everything a
/// successor controller needs to re-bind to the live filter process
/// and render its store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterRecord {
    /// Controller-local filter name.
    pub name: String,
    /// Machine it runs on.
    pub machine: String,
    /// Its pid there.
    pub pid: u32,
    /// Port metered processes connect to.
    pub port: u16,
    /// Log path (empty for edges).
    pub logfile: String,
    /// Sink mode keyword (`text` / `store`).
    pub mode: String,
    /// Shard count.
    pub shards: u32,
    /// Role keyword (`leaf` / `edge` / `aggregate`).
    pub role: String,
    /// Upstream `host:port`, empty when none.
    pub upstream: String,
    /// The descriptions text it filters with.
    pub desc_text: String,
}

/// The folded state of a control-event stream.
///
/// Built either incrementally ([`apply`](JobTable::apply), as the
/// owning controller does alongside its own in-memory state) or in one
/// shot from a store ([`from_store`](JobTable::from_store), as a
/// standby does at takeover). The two constructions are equivalent by
/// definition — both are folds of the same stream — and the property
/// test in `tests/prop.rs` holds them to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobTable {
    /// Jobs by name.
    pub jobs: BTreeMap<String, JobRecord>,
    /// Job names in creation order.
    pub order: Vec<String>,
    /// Filters in creation order.
    pub filters: Vec<FilterRecord>,
    /// Events applied so far.
    pub events: u64,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Folds one event into the table.
    ///
    /// Every arm tolerates out-of-order or stale input the same way
    /// replay must: an event naming an unknown job or process is
    /// dropped, a duplicate `JobCreated` is dropped, and a
    /// `LeaseRenewed` from anyone but the current owner is dropped
    /// (that last one is the safety property — a deposed controller's
    /// renewals are no-ops once a successor's `LeaseAcquired` is in
    /// the log).
    pub fn apply(&mut self, ev: &ControlEvent) {
        self.events += 1;
        match ev {
            ControlEvent::JobCreated { job, filter } => {
                if !self.jobs.contains_key(job) {
                    self.jobs.insert(
                        job.clone(),
                        JobRecord {
                            name: job.clone(),
                            filter: filter.clone(),
                            flags: 0,
                            procs: Vec::new(),
                            lease: None,
                            lease_history: Vec::new(),
                            removed: false,
                        },
                    );
                    self.order.push(job.clone());
                }
            }
            ControlEvent::FilterCreated {
                name,
                machine,
                pid,
                port,
                logfile,
                mode,
                shards,
                role,
                upstream,
                desc_text,
            } => {
                let rec = FilterRecord {
                    name: name.clone(),
                    machine: machine.clone(),
                    pid: *pid,
                    port: *port,
                    logfile: logfile.clone(),
                    mode: mode.clone(),
                    shards: *shards,
                    role: role.clone(),
                    upstream: upstream.clone(),
                    desc_text: desc_text.clone(),
                };
                match self.filters.iter_mut().find(|f| f.name == *name) {
                    Some(existing) => *existing = rec,
                    None => self.filters.push(rec),
                }
            }
            ControlEvent::ProcAdded {
                job,
                name,
                machine,
                pid,
                state,
            } => {
                if let Some(j) = self.jobs.get_mut(job) {
                    if j.proc_mut(machine, *pid).is_none() {
                        j.procs.push(ProcRecord {
                            name: name.clone(),
                            machine: machine.clone(),
                            pid: *pid,
                            state: state.clone(),
                        });
                    }
                }
            }
            ControlEvent::FlagsSet { job, flags } => {
                if let Some(j) = self.jobs.get_mut(job) {
                    j.flags = *flags;
                }
            }
            ControlEvent::ProcStateChanged {
                job,
                machine,
                pid,
                state,
            } => {
                if let Some(j) = self.jobs.get_mut(job) {
                    if let Some(p) = j.proc_mut(machine, *pid) {
                        p.state = state.clone();
                    }
                }
            }
            ControlEvent::JobRemoved { job } => {
                if let Some(j) = self.jobs.get_mut(job) {
                    j.removed = true;
                }
            }
            ControlEvent::LeaseAcquired {
                job,
                owner,
                at_us,
                expires_us,
            } => {
                if let Some(j) = self.jobs.get_mut(job) {
                    let lease = Lease {
                        owner: owner.clone(),
                        at_us: *at_us,
                        expires_us: *expires_us,
                    };
                    j.lease = Some(lease.clone());
                    j.lease_history.push(lease);
                }
            }
            ControlEvent::LeaseRenewed {
                job,
                owner,
                at_us,
                expires_us,
            } => {
                if let Some(j) = self.jobs.get_mut(job) {
                    let current = matches!(&j.lease, Some(l) if l.owner == *owner);
                    if current {
                        let lease = Lease {
                            owner: owner.clone(),
                            at_us: *at_us,
                            expires_us: *expires_us,
                        };
                        j.lease = Some(lease.clone());
                        j.lease_history.push(lease);
                    }
                }
            }
        }
    }

    /// Folds a whole event sequence.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a ControlEvent>>(&mut self, evs: I) {
        for ev in evs {
            self.apply(ev);
        }
    }

    /// Reconstructs the table from a control-log store — the standby's
    /// first step at takeover.
    pub fn from_store(reader: &StoreReader) -> JobTable {
        let mut t = JobTable::new();
        for (_seq, ev) in ControlLog::replay(reader) {
            t.apply(&ev);
        }
        t
    }

    /// Jobs that are live (created, not yet removed), in creation
    /// order.
    pub fn live_jobs(&self) -> Vec<&JobRecord> {
        self.order
            .iter()
            .filter_map(|n| self.jobs.get(n))
            .filter(|j| !j.removed)
            .collect()
    }

    /// The filter record named `name`, if the log recorded one.
    pub fn filter(&self, name: &str) -> Option<&FilterRecord> {
        self.filters.iter().find(|f| f.name == name)
    }

    /// Verifies that every job's ownership history is a linear chain:
    /// the owner only ever changes to a successor whose acquisition
    /// time is at or past the previous lease's expiry — i.e. no two
    /// controllers ever held the same job at once.
    ///
    /// # Errors
    ///
    /// Names the job and the offending pair of leases.
    pub fn check_lease_chain(&self) -> Result<(), String> {
        for j in self.jobs.values() {
            for w in j.lease_history.windows(2) {
                let (prev, next) = (&w[0], &w[1]);
                if next.owner != prev.owner && next.at_us < prev.expires_us {
                    return Err(format!(
                        "job '{}': owner '{}' acquired at {}us before '{}' lease expired at {}us",
                        j.name, next.owner, next.at_us, prev.owner, prev.expires_us
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_logstore::MemBackend;
    use std::sync::Arc;

    fn ev_job(job: &str) -> ControlEvent {
        ControlEvent::JobCreated {
            job: job.into(),
            filter: "f1".into(),
        }
    }

    fn ev_proc(job: &str, machine: &str, pid: u32) -> ControlEvent {
        ControlEvent::ProcAdded {
            job: job.into(),
            name: format!("p{pid}"),
            machine: machine.into(),
            pid,
            state: "new".into(),
        }
    }

    fn ev_lease(job: &str, owner: &str, at_us: u64, expires_us: u64) -> ControlEvent {
        ControlEvent::LeaseAcquired {
            job: job.into(),
            owner: owner.into(),
            at_us,
            expires_us,
        }
    }

    #[test]
    fn fold_builds_expected_state() {
        let mut t = JobTable::new();
        t.apply_all(&[
            ev_job("foo"),
            ev_proc("foo", "red", 10),
            ControlEvent::FlagsSet {
                job: "foo".into(),
                flags: 0b11,
            },
            ControlEvent::ProcStateChanged {
                job: "foo".into(),
                machine: "red".into(),
                pid: 10,
                state: "running".into(),
            },
            ev_job("bar"),
            ControlEvent::JobRemoved { job: "bar".into() },
        ]);
        assert_eq!(t.order, vec!["foo", "bar"]);
        let foo = &t.jobs["foo"];
        assert_eq!(foo.flags, 0b11);
        assert_eq!(foo.procs[0].state, "running");
        assert!(t.jobs["bar"].removed);
        assert_eq!(t.live_jobs().len(), 1);
        assert_eq!(t.events, 6);
    }

    #[test]
    fn stale_and_unknown_events_are_dropped() {
        let mut t = JobTable::new();
        // Unknown job / proc: no-ops, no panic.
        t.apply(&ev_proc("ghost", "red", 1));
        t.apply(&ControlEvent::ProcStateChanged {
            job: "ghost".into(),
            machine: "red".into(),
            pid: 1,
            state: "killed".into(),
        });
        assert!(t.jobs.is_empty());
        // Duplicate create keeps the first binding.
        t.apply(&ev_job("foo"));
        t.apply(&ControlEvent::JobCreated {
            job: "foo".into(),
            filter: "other".into(),
        });
        assert_eq!(t.jobs["foo"].filter, "f1");
        assert_eq!(t.order.len(), 1);
        // Duplicate proc add (an AcquireMany retry) keeps one entry.
        t.apply(&ev_proc("foo", "red", 10));
        t.apply(&ev_proc("foo", "red", 10));
        assert_eq!(t.jobs["foo"].procs.len(), 1);
    }

    #[test]
    fn deposed_owner_renewals_are_noops() {
        let mut t = JobTable::new();
        t.apply(&ev_job("foo"));
        t.apply(&ev_lease("foo", "red:5000", 0, 100));
        // Standby takes over after expiry.
        t.apply(&ev_lease("foo", "green:5001", 150, 250));
        // The dead owner's buffered renewal lands late: dropped.
        t.apply(&ControlEvent::LeaseRenewed {
            job: "foo".into(),
            owner: "red:5000".into(),
            at_us: 160,
            expires_us: 260,
        });
        let lease = t.jobs["foo"].lease.as_ref().unwrap();
        assert_eq!(lease.owner, "green:5001");
        assert_eq!(lease.expires_us, 250);
        assert!(t.check_lease_chain().is_ok());
    }

    #[test]
    fn lease_chain_rejects_overlapping_owners() {
        let mut t = JobTable::new();
        t.apply(&ev_job("foo"));
        t.apply(&ev_lease("foo", "red:5000", 0, 1000));
        // A second controller grabbing the job before expiry is the
        // split-brain the chain check exists to name.
        t.apply(&ev_lease("foo", "green:5001", 500, 1500));
        let err = t.check_lease_chain().unwrap_err();
        assert!(err.contains("before"), "{err}");
        assert!(err.contains("red:5000"), "{err}");
    }

    #[test]
    fn renewal_by_owner_extends_lease() {
        let mut t = JobTable::new();
        t.apply(&ev_job("foo"));
        t.apply(&ev_lease("foo", "red:5000", 0, 1000));
        t.apply(&ControlEvent::LeaseRenewed {
            job: "foo".into(),
            owner: "red:5000".into(),
            at_us: 600,
            expires_us: 1600,
        });
        let lease = t.jobs["foo"].lease.as_ref().unwrap();
        assert_eq!(lease.expires_us, 1600);
        assert!(!lease.expired(1599));
        assert!(lease.expired(1600));
        assert!(t.check_lease_chain().is_ok());
    }

    #[test]
    fn from_store_matches_incremental_fold() {
        let backend = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(backend.clone(), "/usr/tmp/control");
        let events = vec![
            ev_job("foo"),
            ControlEvent::FilterCreated {
                name: "f1".into(),
                machine: "green".into(),
                pid: 44,
                port: 4000,
                logfile: "/usr/tmp/log.f1".into(),
                mode: "store".into(),
                shards: 2,
                role: "leaf".into(),
                upstream: String::new(),
                desc_text: "send 1\n".into(),
            },
            ev_proc("foo", "red", 10),
            ev_lease("foo", "red:5000", 0, 2_000_000),
            ControlEvent::JobRemoved { job: "foo".into() },
        ];
        let mut incremental = JobTable::new();
        for ev in &events {
            log.append(ev);
            incremental.apply(ev);
        }
        let replayed = JobTable::from_store(&log.reader());
        assert_eq!(replayed, incremental);
        assert_eq!(replayed.filter("f1").unwrap().pid, 44);
    }
}
