//! The control-event record and its wire codec.
//!
//! One [`ControlEvent`] is one state mutation of a measurement
//! session. Events are encoded to a compact little-endian binary form
//! and appended to a [`dpm_logstore`] store as ordinary frames; the
//! magic tag and version word up front let a reader skip any frame
//! that is not a control event (or is from a future format) instead of
//! misparsing it.

use std::fmt;

/// First word of every encoded control event ("CTL1" little-endian) —
/// distinguishes control frames from meter records sharing a reader.
pub const CONTROL_MAGIC: u32 = 0x314C_5443;

/// Encoding version this build writes and understands.
pub const CONTROL_EVENT_VERSION: u32 = 1;

/// Longest string any event field may carry (the descriptions text is
/// the big one); a decoder finding more is reading garbage.
const MAX_STR: usize = 64 * 1024;

/// One mutation of controller state, as recorded in the control log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlEvent {
    /// `newjob`: a job was accepted and bound to a filter.
    JobCreated {
        /// Job name.
        job: String,
        /// The filter collecting its trace.
        filter: String,
    },
    /// `filter`: a filter process was created. Carries everything a
    /// successor controller needs to rebuild its `FilterInfo` —
    /// including the descriptions text, so store frames render without
    /// re-fetching any file.
    FilterCreated {
        /// Controller-local filter name.
        name: String,
        /// Machine it runs on.
        machine: String,
        /// Its pid on that machine.
        pid: u32,
        /// The port metered processes connect to.
        port: u16,
        /// Log path (empty for edges).
        logfile: String,
        /// Sink mode as its argument keyword (`text` / `store`).
        mode: String,
        /// Shard count.
        shards: u32,
        /// Role keyword (`leaf` / `edge` / `aggregate`).
        role: String,
        /// `host:port` of its upstream, empty when none.
        upstream: String,
        /// The descriptions file text it filters with.
        desc_text: String,
    },
    /// `addprocess`/`acquire`: a process joined a job.
    ProcAdded {
        /// The job it joined.
        job: String,
        /// Display name.
        name: String,
        /// Machine it runs on.
        machine: String,
        /// Its pid.
        pid: u32,
        /// Initial state keyword (`new` / `acquired`).
        state: String,
    },
    /// `setflags`: the job's accumulated flag set changed.
    FlagsSet {
        /// The job.
        job: String,
        /// The new full flag bits.
        flags: u32,
    },
    /// A process changed state (start/stop/termination/resync).
    ProcStateChanged {
        /// The job.
        job: String,
        /// Machine of the process.
        machine: String,
        /// Its pid.
        pid: u32,
        /// New state keyword (`running` / `stopped` / `killed`).
        state: String,
    },
    /// `removejob`: the job reached its terminal state.
    JobRemoved {
        /// The job.
        job: String,
    },
    /// A controller claimed ownership of a job.
    LeaseAcquired {
        /// The job.
        job: String,
        /// Owner id (`machine:control_port`).
        owner: String,
        /// Simulated time of the claim, microseconds.
        at_us: u64,
        /// Simulated time the lease lapses, microseconds.
        expires_us: u64,
    },
    /// The current owner extended its lease.
    LeaseRenewed {
        /// The job.
        job: String,
        /// Owner id (must match the current lease's).
        owner: String,
        /// Simulated time of the renewal, microseconds.
        at_us: u64,
        /// New expiry, microseconds.
        expires_us: u64,
    },
}

impl fmt::Display for ControlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlEvent::JobCreated { job, filter } => {
                write!(f, "job-created {job} filter={filter}")
            }
            ControlEvent::FilterCreated {
                name,
                machine,
                pid,
                port,
                ..
            } => write!(
                f,
                "filter-created {name} machine={machine} pid={pid} port={port}"
            ),
            ControlEvent::ProcAdded {
                job,
                name,
                machine,
                pid,
                state,
            } => write!(
                f,
                "proc-added {job}/{name} machine={machine} pid={pid} state={state}"
            ),
            ControlEvent::FlagsSet { job, flags } => {
                write!(f, "flags-set {job} flags={flags:#x}")
            }
            ControlEvent::ProcStateChanged {
                job,
                machine,
                pid,
                state,
            } => write!(
                f,
                "proc-state {job} machine={machine} pid={pid} state={state}"
            ),
            ControlEvent::JobRemoved { job } => write!(f, "job-removed {job}"),
            ControlEvent::LeaseAcquired {
                job,
                owner,
                at_us,
                expires_us,
            } => write!(
                f,
                "lease-acquired {job} owner={owner} at={at_us} expires={expires_us}"
            ),
            ControlEvent::LeaseRenewed {
                job,
                owner,
                at_us,
                expires_us,
            } => write!(
                f,
                "lease-renewed {job} owner={owner} at={at_us} expires={expires_us}"
            ),
        }
    }
}

/// Event type codes on the wire.
mod code {
    pub const JOB_CREATED: u8 = 1;
    pub const FILTER_CREATED: u8 = 2;
    pub const PROC_ADDED: u8 = 3;
    pub const FLAGS_SET: u8 = 4;
    pub const PROC_STATE_CHANGED: u8 = 5;
    pub const JOB_REMOVED: u8 = 6;
    pub const LEASE_ACQUIRED: u8 = 7;
    pub const LEASE_RENEWED: u8 = 8;
}

struct W {
    buf: Vec<u8>,
}

impl W {
    fn new(code: u8) -> W {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&CONTROL_MAGIC.to_le_bytes());
        buf.extend_from_slice(&CONTROL_EVENT_VERSION.to_le_bytes());
        buf.push(code);
        W { buf }
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl R<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| "truncated control event".to_owned())?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        if n > MAX_STR {
            return Err(format!("absurd string length {n}"));
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| "control event string is not UTF-8".to_owned())
    }
}

impl ControlEvent {
    /// Encodes to the control log's record form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = match self {
            ControlEvent::JobCreated { .. } => W::new(code::JOB_CREATED),
            ControlEvent::FilterCreated { .. } => W::new(code::FILTER_CREATED),
            ControlEvent::ProcAdded { .. } => W::new(code::PROC_ADDED),
            ControlEvent::FlagsSet { .. } => W::new(code::FLAGS_SET),
            ControlEvent::ProcStateChanged { .. } => W::new(code::PROC_STATE_CHANGED),
            ControlEvent::JobRemoved { .. } => W::new(code::JOB_REMOVED),
            ControlEvent::LeaseAcquired { .. } => W::new(code::LEASE_ACQUIRED),
            ControlEvent::LeaseRenewed { .. } => W::new(code::LEASE_RENEWED),
        };
        match self {
            ControlEvent::JobCreated { job, filter } => {
                w.str(job);
                w.str(filter);
            }
            ControlEvent::FilterCreated {
                name,
                machine,
                pid,
                port,
                logfile,
                mode,
                shards,
                role,
                upstream,
                desc_text,
            } => {
                w.str(name);
                w.str(machine);
                w.u32(*pid);
                w.u16(*port);
                w.str(logfile);
                w.str(mode);
                w.u32(*shards);
                w.str(role);
                w.str(upstream);
                w.str(desc_text);
            }
            ControlEvent::ProcAdded {
                job,
                name,
                machine,
                pid,
                state,
            } => {
                w.str(job);
                w.str(name);
                w.str(machine);
                w.u32(*pid);
                w.str(state);
            }
            ControlEvent::FlagsSet { job, flags } => {
                w.str(job);
                w.u32(*flags);
            }
            ControlEvent::ProcStateChanged {
                job,
                machine,
                pid,
                state,
            } => {
                w.str(job);
                w.str(machine);
                w.u32(*pid);
                w.str(state);
            }
            ControlEvent::JobRemoved { job } => {
                w.str(job);
            }
            ControlEvent::LeaseAcquired {
                job,
                owner,
                at_us,
                expires_us,
            }
            | ControlEvent::LeaseRenewed {
                job,
                owner,
                at_us,
                expires_us,
            } => {
                w.str(job);
                w.str(owner);
                w.u64(*at_us);
                w.u64(*expires_us);
            }
        }
        w.buf
    }

    /// Decodes one control-event record.
    ///
    /// # Errors
    ///
    /// A description of the malformation: wrong magic (not a control
    /// event at all), an unknown version or type code, or truncation.
    pub fn decode(buf: &[u8]) -> Result<ControlEvent, String> {
        let mut r = R { buf, pos: 0 };
        let magic = r.u32()?;
        if magic != CONTROL_MAGIC {
            return Err(format!("not a control event (magic {magic:#x})"));
        }
        let version = r.u32()?;
        if version != CONTROL_EVENT_VERSION {
            return Err(format!("unknown control event version {version}"));
        }
        let code = r.u8()?;
        Ok(match code {
            code::JOB_CREATED => ControlEvent::JobCreated {
                job: r.str()?,
                filter: r.str()?,
            },
            code::FILTER_CREATED => ControlEvent::FilterCreated {
                name: r.str()?,
                machine: r.str()?,
                pid: r.u32()?,
                port: r.u16()?,
                logfile: r.str()?,
                mode: r.str()?,
                shards: r.u32()?,
                role: r.str()?,
                upstream: r.str()?,
                desc_text: r.str()?,
            },
            code::PROC_ADDED => ControlEvent::ProcAdded {
                job: r.str()?,
                name: r.str()?,
                machine: r.str()?,
                pid: r.u32()?,
                state: r.str()?,
            },
            code::FLAGS_SET => ControlEvent::FlagsSet {
                job: r.str()?,
                flags: r.u32()?,
            },
            code::PROC_STATE_CHANGED => ControlEvent::ProcStateChanged {
                job: r.str()?,
                machine: r.str()?,
                pid: r.u32()?,
                state: r.str()?,
            },
            code::JOB_REMOVED => ControlEvent::JobRemoved { job: r.str()? },
            code::LEASE_ACQUIRED => ControlEvent::LeaseAcquired {
                job: r.str()?,
                owner: r.str()?,
                at_us: r.u64()?,
                expires_us: r.u64()?,
            },
            code::LEASE_RENEWED => ControlEvent::LeaseRenewed {
                job: r.str()?,
                owner: r.str()?,
                at_us: r.u64()?,
                expires_us: r.u64()?,
            },
            other => return Err(format!("unknown control event type {other}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ControlEvent> {
        vec![
            ControlEvent::JobCreated {
                job: "foo".into(),
                filter: "f1".into(),
            },
            ControlEvent::FilterCreated {
                name: "f1".into(),
                machine: "green".into(),
                pid: 2120,
                port: 4000,
                logfile: "/usr/tmp/log.f1".into(),
                mode: "store".into(),
                shards: 2,
                role: "leaf".into(),
                upstream: String::new(),
                desc_text: "send 1 ...\n".into(),
            },
            ControlEvent::ProcAdded {
                job: "foo".into(),
                name: "A".into(),
                machine: "red".into(),
                pid: 2121,
                state: "new".into(),
            },
            ControlEvent::FlagsSet {
                job: "foo".into(),
                flags: 0b1011,
            },
            ControlEvent::ProcStateChanged {
                job: "foo".into(),
                machine: "red".into(),
                pid: 2121,
                state: "killed".into(),
            },
            ControlEvent::JobRemoved { job: "foo".into() },
            ControlEvent::LeaseAcquired {
                job: "foo".into(),
                owner: "yellow:5000".into(),
                at_us: 17,
                expires_us: 2_000_017,
            },
            ControlEvent::LeaseRenewed {
                job: "foo".into(),
                owner: "yellow:5000".into(),
                at_us: 1_000_017,
                expires_us: 3_000_017,
            },
        ]
    }

    #[test]
    fn every_event_round_trips() {
        for ev in samples() {
            let wire = ev.encode();
            assert_eq!(ControlEvent::decode(&wire).unwrap(), ev, "{ev}");
            // The tag layout is stable: magic then version.
            assert_eq!(&wire[0..4], &CONTROL_MAGIC.to_le_bytes());
            assert_eq!(&wire[4..8], &CONTROL_EVENT_VERSION.to_le_bytes());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        // A meter record (or anything else) is named as a non-event,
        // not misparsed.
        let err = ControlEvent::decode(&[9u8; 32]).unwrap_err();
        assert!(err.contains("not a control event"), "{err}");
        // Unknown version.
        let mut wire = samples()[0].encode();
        wire[4..8].copy_from_slice(&9u32.to_le_bytes());
        let err = ControlEvent::decode(&wire).unwrap_err();
        assert!(err.contains("version 9"), "{err}");
        // Unknown type code.
        let mut wire = samples()[0].encode();
        wire[8] = 99;
        let err = ControlEvent::decode(&wire).unwrap_err();
        assert!(err.contains("type 99"), "{err}");
        // Truncation.
        let wire = samples()[1].encode();
        assert!(ControlEvent::decode(&wire[..wire.len() - 3]).is_err());
        // Absurd string length.
        let mut wire = samples()[5].encode();
        wire[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = ControlEvent::decode(&wire).unwrap_err();
        assert!(err.contains("absurd"), "{err}");
    }

    #[test]
    fn display_is_one_line_per_event() {
        for ev in samples() {
            let line = ev.to_string();
            assert!(!line.contains('\n'), "{line}");
            assert!(!line.is_empty());
        }
    }
}
