//! The durable control log: an append-only stream of
//! [`ControlEvent`] records in a dedicated [`dpm_logstore`] store.

use std::sync::Arc;

use dpm_logstore::{Backend, LogStore, SegmentWriter, StoreConfig, StoreReader};

use crate::event::ControlEvent;

/// All control events go to one shard — the stream is tiny next to a
/// meter trace and total order is the point.
pub const CONTROL_SHARD: u16 = 0;

/// Append handle on a control-log store.
///
/// Every [`append`](ControlLog::append) flushes, so a standby reading
/// the same store never trails the owner by more than the record in
/// flight — the price is one backend write per event, which control
/// traffic (tens of events per job) easily affords.
pub struct ControlLog {
    store: LogStore,
    writer: SegmentWriter,
}

impl ControlLog {
    /// Opens (or re-opens) the control log at `dir` on `backend`.
    /// Re-opening an existing log resumes appending after the last
    /// durable record, exactly like any other store.
    pub fn open(backend: Arc<dyn Backend>, dir: &str) -> ControlLog {
        let store = LogStore::open(backend, dir, StoreConfig::default());
        let writer = store.writer(CONTROL_SHARD);
        ControlLog { store, writer }
    }

    /// Appends one event and flushes it to the backend. Returns the
    /// store sequence number assigned to the record.
    pub fn append(&mut self, ev: &ControlEvent) -> u64 {
        let seq = self.writer.append(&ev.encode());
        self.writer.flush();
        dpm_telemetry::registry()
            .counter("controlplane", "events_appended", "")
            .inc();
        seq
    }

    /// A reader over everything durable so far, including this
    /// handle's own appends.
    pub fn reader(&self) -> StoreReader {
        self.store.reader()
    }

    /// Decodes the control events in `reader`'s store in sequence
    /// order, paired with their store sequence numbers. Frames that
    /// are not control events (wrong magic, future version, torn) are
    /// skipped, so the log shares a reader with anything else.
    pub fn replay(reader: &StoreReader) -> Vec<(u64, ControlEvent)> {
        let mut out = Vec::new();
        for f in reader.scan() {
            if let Ok(ev) = ControlEvent::decode(f.raw) {
                out.push((f.seq, ev));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_logstore::MemBackend;

    #[test]
    fn append_is_immediately_durable() {
        let backend = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(backend.clone(), "/usr/tmp/control");
        let ev = ControlEvent::JobCreated {
            job: "foo".into(),
            filter: "f1".into(),
        };
        log.append(&ev);
        // No explicit flush/sync/drop: a second handle on the same
        // backend already sees the record.
        let reader = StoreReader::load(backend.as_ref(), "/usr/tmp/control");
        let got = ControlLog::replay(&reader);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, ev);
    }

    #[test]
    fn reopen_resumes_sequence() {
        let backend = Arc::new(MemBackend::new());
        let first_seq;
        {
            let mut log = ControlLog::open(backend.clone(), "/usr/tmp/control");
            first_seq = log.append(&ControlEvent::JobRemoved { job: "a".into() });
        }
        let mut log = ControlLog::open(backend.clone(), "/usr/tmp/control");
        let second_seq = log.append(&ControlEvent::JobRemoved { job: "b".into() });
        assert!(second_seq > first_seq);
        let got = ControlLog::replay(&log.reader());
        assert_eq!(got.len(), 2);
        assert!(got[0].0 < got[1].0, "replay is in sequence order");
    }

    #[test]
    fn replay_skips_foreign_frames() {
        let backend = Arc::new(MemBackend::new());
        let mut log = ControlLog::open(backend.clone(), "/usr/tmp/control");
        // A raw meter-style record interleaved in the same store.
        log.writer.append(b"not a control event");
        log.writer.flush();
        log.append(&ControlEvent::JobRemoved { job: "x".into() });
        let got = ControlLog::replay(&log.reader());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, ControlEvent::JobRemoved { job: "x".into() });
    }
}
