//! `dpm-controlplane`: replicated, highly-available controller state.
//!
//! The paper's monitor hinges on a single controlling process owning a
//! job's lifecycle — if it dies, metered processes are orphaned and
//! the session's measurements are stranded. This crate removes that
//! single point of failure by treating the controller's own state the
//! way the monitor treats everything else: as a durable, replayable
//! stream of records.
//!
//! Three pieces:
//!
//! * **The control log** ([`ControlLog`]) — every mutation a
//!   controller performs (job created, filter created, process added,
//!   flags set, state changed, job removed) is appended as a
//!   CRC-framed [`ControlEvent`] record to a dedicated
//!   [`dpm_logstore`] store, flushed per append so a reader never
//!   trails the writer by more than the record in flight.
//! * **The replayable table** ([`JobTable`]) — folds a control-event
//!   stream back into the full job table. `JobTable::from_store`
//!   reconstructs exactly the state an in-memory table built by
//!   applying the same events holds, so *any* controller with access
//!   to the store can adopt the session.
//! * **Leases** ([`Lease`]) — each job carries an owner id and an
//!   expiry in simulated time, renewed through the control log. A
//!   standby watches the log; once a job's lease lapses it appends its
//!   own `LeaseAcquired` record and takes over deterministically.
//!   Ownership history forms a linear chain: a new owner's acquisition
//!   time never precedes the previous lease's expiry
//!   (see [`JobTable::check_lease_chain`]).
//!
//! ```
//! use dpm_controlplane::{ControlEvent, ControlLog, JobTable, DEFAULT_LEASE_MS};
//! use dpm_logstore::{MemBackend, StoreReader};
//! use std::sync::Arc;
//!
//! let backend = Arc::new(MemBackend::new());
//! let mut log = ControlLog::open(backend.clone(), "/usr/tmp/control");
//! log.append(&ControlEvent::JobCreated {
//!     job: "foo".into(),
//!     filter: "f1".into(),
//! });
//! log.append(&ControlEvent::LeaseAcquired {
//!     job: "foo".into(),
//!     owner: "yellow:5000".into(),
//!     at_us: 0,
//!     expires_us: DEFAULT_LEASE_MS * 1_000,
//! });
//! let reader = StoreReader::load(backend.as_ref(), "/usr/tmp/control");
//! let table = JobTable::from_store(&reader);
//! assert_eq!(table.jobs["foo"].lease.as_ref().unwrap().owner, "yellow:5000");
//! ```

#![warn(missing_docs)]

mod event;
mod log;
mod table;

pub use event::{ControlEvent, CONTROL_EVENT_VERSION, CONTROL_MAGIC};
pub use log::{ControlLog, CONTROL_SHARD};
pub use table::{FilterRecord, JobRecord, JobTable, Lease, ProcRecord};

/// Default lease period, in virtual milliseconds. Long next to RPC
/// latencies (so an owner that is merely slow keeps its jobs) yet
/// short enough that a standby adopts an orphaned job promptly.
pub const DEFAULT_LEASE_MS: u64 = 2_000;
