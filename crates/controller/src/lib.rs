//! The control process of the distributed programs monitor.
//!
//! "The controller provides the mechanisms for establishing the
//! communication paths between all of the components of the
//! measurement system. The controller is a command interpreter …
//! Executing this request may require interacting with other
//! components of the measurement system and establishing communication
//! paths between the various components." (§3.3)
//!
//! The user's commands (§4.3) are `help`, `filter`, `newjob`,
//! `addprocess`, `acquire`, `setflags`, `startjob`, `stopjob`,
//! `removejob`, `removeprocess`, `jobs`, `getlog`, `source`, `sink`,
//! and `die`, all implemented by [`Controller::exec`]. Process states
//! follow the Fig. 4.2 machine in [`ProcState`].

#![warn(missing_docs)]

pub mod job;
pub mod session;

pub use job::{Job, ManagedProc, ProcAction, ProcState};
pub use session::{Controller, FilterInfo};
