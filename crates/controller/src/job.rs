//! Jobs and the controller's process state machine.
//!
//! "In our measurement model, a computation is a collection of
//! processes working towards a common goal. The controller uses the
//! term *job* to designate a computation." (§4.2)
//!
//! The five process states and their transitions are exactly Fig. 4.2:
//!
//! ```text
//!        start              stop
//! new ──────────► running ◄──────► stopped
//!  │                 │                │
//!  │ stop            │ completes      │ remove
//!  └─────► stopped   ▼                ▼
//!                  killed ◄────────────
//! ```
//!
//! A process cannot move directly from `new` to `killed` ("this
//! restriction is enforced as a precautionary measure"), cannot be
//! restarted once killed, and an *acquired* process "cannot be stopped
//! or killed, it can only be metered".

use dpm_meter::MeterFlags;
use dpm_simos::Pid;
use std::fmt;

/// The controller's view of one process's state (Fig. 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Created, suspended prior to its first instruction.
    New,
    /// A previously existing process being metered; the only state
    /// such a process can ever be in.
    Acquired,
    /// Executing.
    Running,
    /// Suspended by the user.
    Stopped,
    /// Terminated (completed, or removed by the user).
    Killed,
}

impl fmt::Display for ProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProcState::New => "new",
            ProcState::Acquired => "acquired",
            ProcState::Running => "running",
            ProcState::Stopped => "stopped",
            ProcState::Killed => "killed",
        })
    }
}

/// An action the user can attempt on a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcAction {
    /// `startjob`: begin or resume execution.
    Start,
    /// `stopjob`: halt execution.
    Stop,
    /// Process completion reported by a meterdaemon.
    Complete,
    /// `removejob`/`removeprocess`: forced termination.
    Remove,
}

impl ProcState {
    /// The successor state for an action, or `None` when Fig. 4.2 has
    /// no such edge (the action must be ignored or refused).
    pub fn next(self, action: ProcAction) -> Option<ProcState> {
        use ProcAction::*;
        use ProcState::*;
        match (self, action) {
            (New, Start) | (Stopped, Start) => Some(Running),
            (New, Stop) | (Running, Stop) => Some(Stopped),
            (Running, Complete) => Some(Killed),
            // Removing a stopped process kills it; removing a new one
            // is forbidden (the precautionary rule), as is removing a
            // running one.
            (Stopped, Remove) => Some(Killed),
            // An acquired process is only ever released, never state-
            // changed; completion of an acquired process is not
            // tracked.
            _ => None,
        }
    }

    /// Whether a job containing a process in this state may be
    /// removed: "a job can only be removed if all of its processes are
    /// in one of the states killed, stopped, or acquired" (§4.3).
    pub fn removable(self) -> bool {
        matches!(
            self,
            ProcState::Killed | ProcState::Stopped | ProcState::Acquired
        )
    }

    /// Whether the process counts as *active* for the `die` warning
    /// ("if there are still active processes (new, stopped, running,
    /// or acquired), the user is warned", §4.3).
    pub fn active(self) -> bool {
        self != ProcState::Killed
    }
}

/// One process tracked by the controller.
#[derive(Debug, Clone)]
pub struct ManagedProc {
    /// Display name (the executable file's base name, or the pid for
    /// acquired processes).
    pub name: String,
    /// The machine it runs on (literal host name).
    pub machine: String,
    /// Its pid on that machine.
    pub pid: Pid,
    /// Controller-tracked state.
    pub state: ProcState,
}

/// A job: a named computation.
#[derive(Debug, Clone)]
pub struct Job {
    /// The job's name.
    pub name: String,
    /// The filter collecting this job's trace.
    pub filter: String,
    /// The job's accumulated meter flags. "If two setflags commands
    /// are executed, the set of active flags is the union of the two
    /// groups of flags." (§4.3)
    pub flags: MeterFlags,
    /// The job's processes, in creation order.
    pub procs: Vec<ManagedProc>,
}

impl Job {
    /// Creates an empty job bound to a filter.
    pub fn new(name: impl Into<String>, filter: impl Into<String>) -> Job {
        Job {
            name: name.into(),
            filter: filter.into(),
            flags: MeterFlags::NONE,
            procs: Vec::new(),
        }
    }

    /// Finds a process by display name.
    pub fn proc_by_name(&mut self, name: &str) -> Option<&mut ManagedProc> {
        self.procs.iter_mut().find(|p| p.name == name)
    }

    /// Finds a process by (machine, pid).
    pub fn proc_by_pid(&mut self, machine: &str, pid: Pid) -> Option<&mut ManagedProc> {
        self.procs
            .iter_mut()
            .find(|p| p.machine == machine && p.pid == pid)
    }

    /// Whether every process permits removal of the job.
    pub fn removable(&self) -> bool {
        self.procs.iter().all(|p| p.state.removable())
    }

    /// Whether any process is still active.
    pub fn has_active(&self) -> bool {
        self.procs.iter().any(|p| p.state.active())
    }

    /// Applies a `setflags` argument list (`send`, `-send`, `all`,
    /// `-all`, …) to the job's accumulated flags, returning the new
    /// set.
    ///
    /// # Errors
    ///
    /// Returns the offending token when it is not a flag name.
    pub fn apply_flag_args<'a>(
        &mut self,
        args: impl IntoIterator<Item = &'a str>,
    ) -> Result<MeterFlags, String> {
        let mut flags = self.flags;
        for tok in args {
            if let Some(reset) = tok.strip_prefix('-') {
                let f: MeterFlags = reset.parse().map_err(|_| tok.to_owned())?;
                flags = flags - f;
            } else {
                let f: MeterFlags = tok.parse().map_err(|_| tok.to_owned())?;
                flags |= f;
            }
        }
        self.flags = flags;
        Ok(flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProcAction::*;
    use ProcState::*;

    #[test]
    fn figure_4_2_legal_transitions() {
        assert_eq!(New.next(Start), Some(Running));
        assert_eq!(New.next(Stop), Some(Stopped));
        assert_eq!(Stopped.next(Start), Some(Running));
        assert_eq!(Running.next(Stop), Some(Stopped));
        assert_eq!(Running.next(Complete), Some(Killed));
        assert_eq!(Stopped.next(Remove), Some(Killed));
    }

    #[test]
    fn figure_4_2_forbidden_transitions() {
        // No direct new → killed (the precautionary measure).
        assert_eq!(New.next(Remove), None);
        // A killed process cannot be restarted.
        assert_eq!(Killed.next(Start), None);
        assert_eq!(Killed.next(Stop), None);
        // Acquired processes can only be metered.
        for a in [Start, Stop, Complete, Remove] {
            assert_eq!(Acquired.next(a), None);
        }
        // A running process is not removable.
        assert_eq!(Running.next(Remove), None);
    }

    #[test]
    fn removability_rule() {
        assert!(Killed.removable());
        assert!(Stopped.removable());
        assert!(Acquired.removable());
        assert!(!New.removable());
        assert!(!Running.removable());
    }

    #[test]
    fn job_flag_union_and_reset() {
        let mut j = Job::new("foo", "f1");
        let f = j.apply_flag_args(["send", "receive", "fork"]).unwrap();
        assert!(f.contains(MeterFlags::SEND));
        // Union with a second setflags.
        let f = j.apply_flag_args(["accept"]).unwrap();
        assert!(f.contains(MeterFlags::SEND) && f.contains(MeterFlags::ACCEPT));
        // Explicit reset.
        let f = j.apply_flag_args(["-send"]).unwrap();
        assert!(!f.contains(MeterFlags::SEND));
        assert!(f.contains(MeterFlags::RECEIVE));
        // all / -all shorthands.
        let f = j.apply_flag_args(["all"]).unwrap();
        assert_eq!(f, MeterFlags::ALL);
        let f = j.apply_flag_args(["-all"]).unwrap();
        assert!(f.is_empty());
        // Bad token reported.
        assert_eq!(j.apply_flag_args(["sned"]).unwrap_err(), "sned");
    }

    #[test]
    fn job_process_lookup_and_removability() {
        let mut j = Job::new("foo", "f1");
        j.procs.push(ManagedProc {
            name: "A".into(),
            machine: "red".into(),
            pid: Pid(2120),
            state: ProcState::New,
        });
        assert!(j.proc_by_name("A").is_some());
        assert!(j.proc_by_name("B").is_none());
        assert!(j.proc_by_pid("red", Pid(2120)).is_some());
        assert!(j.proc_by_pid("blue", Pid(2120)).is_none());
        assert!(!j.removable());
        assert!(j.has_active());
        j.procs[0].state = ProcState::Killed;
        assert!(j.removable());
        assert!(!j.has_active());
    }
}
